#!/usr/bin/env python
"""Generate ``docs/METRICS.md`` from the live metric registry.

The counter/gauge/histogram *names* come from the code itself: this tool
imports every instrumented module, walks the process-wide
``repro.obs.metrics.MetricRegistry``, and renders one table row per
registered instrument.  The human descriptions live in the
``DESCRIPTIONS`` map below, and the tool fails loudly on drift in either
direction:

* an instrument registered in code but missing from ``DESCRIPTIONS`` is an
  error (new metrics must be documented before CI passes);
* a ``DESCRIPTIONS`` entry whose instrument no longer exists is an error
  (renamed/removed metrics can't leave stale doc rows behind).

Dynamically named families (``fallback.served.<tier>``,
``batch.bucket_seconds.<n>``, ...) are declared in ``DYNAMIC_FAMILIES``;
members registered at runtime match by prefix and are documented as one
family row.

Usage::

    python tools/gen_metrics_doc.py            # rewrite docs/METRICS.md
    python tools/gen_metrics_doc.py --check    # exit 1 if the file is stale
"""

from __future__ import annotations

import argparse
import importlib
import os
import re
import sys
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT = os.path.join(REPO_ROOT, "docs", "METRICS.md")

#: Every module that registers instruments at import time.  Modules that
#: only create dynamic instruments at runtime still belong here so their
#: static ones register.
INSTRUMENTED_MODULES = [
    "repro.analysis.awe",
    "repro.analysis.batch",
    "repro.analysis.cache",
    "repro.analysis.mna",
    "repro.analysis.simulator",
    "repro.core.estimator",
    "repro.data.generate",
    "repro.design.eco",
    "repro.design.sta",
    "repro.features.pipeline",
    "repro.nn.trainer",
    "repro.parallel.pool",
    "repro.robustness.fallback",
    "repro.serve.admission",
    "repro.serve.batching",
    "repro.serve.client",
    "repro.serve.engine",
    "repro.serve.lifecycle",
    "repro.serve.server",
]

#: name -> (kind, description).  Kind is cross-checked against the
#: registry, so a counter silently turned histogram also fails the build.
DESCRIPTIONS: Dict[str, Tuple[str, str]] = {
    # -- analysis: golden simulator + caches + batch engine ------------
    "simulator.nets_analyzed": (
        "counter", "Nets put through golden transient analysis "
        "(scalar `GoldenTimer.analyze` or `golden_analyze_many`)."),
    "simulator.eigendecompositions": (
        "counter", "Dense symmetric eigendecompositions performed, "
        "scalar and batched combined (each net counts once)."),
    "simulator.cap_floor_retries": (
        "counter", "Ill-conditioned solves retried with an escalated "
        "minimum-capacitance floor."),
    "simulator.crossing_searches": (
        "counter", "Threshold-crossing searches requested "
        "(one per probed (node, level) pair)."),
    "simulator.matrix_size": (
        "histogram", "Node count of each eigendecomposed system."),
    "simulator.cache_hits": (
        "counter", "Eigensolve memo-cache hits (`SolveCache`)."),
    "simulator.cache_misses": (
        "counter", "Eigensolve memo-cache misses."),
    "simulator.cache_evictions": (
        "counter", "LRU evictions from the eigensolve cache."),
    "simulator.cache_persist_hits": (
        "counter", "Eigensolves warm-started from the on-disk cache tier "
        "(`REPRO_SOLVE_CACHE_DIR`)."),
    "simulator.cache_persist_misses": (
        "counter", "Disk-tier lookups that found no usable `.npz` file "
        "(missing, corrupted, or schema-mismatched)."),
    "awe.cache_hits": (
        "counter", "AWE step-response cache hits (`AWEStepCache`)."),
    "awe.cache_misses": (
        "counter", "AWE step-response cache misses."),
    "batch.groups": (
        "counter", "Same-size groups pushed through a stacked LAPACK "
        "call by the batch engine."),
    "batch.occupancy": (
        "histogram", "Nets per stacked group (batch fill level)."),
    "batch.padding_waste": (
        "counter", "Dead padded slots created by `bucket=\"pow2\"` "
        "grouping (always 0 in the default exact mode)."),
    "batch.scalar_fallbacks": (
        "counter", "Batch members replayed through the scalar path "
        "(ill-conditioned at the base cap floor, or a LAPACK failure "
        "poisoning the stack)."),
    "batch.nets_solved": (
        "counter", "Nets eigendecomposed inside stacked groups "
        "(excludes cache hits and scalar fallbacks)."),
    "batch.awe_primed": (
        "counter", "Nets whose AWE step response was bulk-computed into "
        "the cache by `prime_awe`."),
    "mna.assemblies": (
        "counter", "Conductance-matrix assemblies."),
    "mna.reductions": (
        "counter", "Source-row reductions (`reduce_source`)."),
    "mna.inversions": (
        "counter", "Reduced-system inversions for transfer-resistance "
        "matrices."),
    "mna.solve_size": (
        "histogram", "Reduced-system size per MNA assembly."),
    # -- data / features / training / estimator ------------------------
    "dataset.nets_labeled": (
        "counter", "Nets successfully golden-labeled into samples."),
    "dataset.nets_skipped": (
        "counter", "Nets dropped from a dataset build with a typed "
        "failure (see `WireTimingDataset.skipped`)."),
    "features.samples_built": (
        "counter", "`NetSample` objects constructed."),
    "trainer.epochs_run": ("counter", "Training epochs completed."),
    "trainer.batches_run": ("counter", "Training batches processed."),
    "estimator.predictions": (
        "counter", "Per-net estimator predictions served."),
    "estimator.label_prior_fallbacks": (
        "counter", "Predictions answered by the label-prior fallback "
        "(untrained or deserialized-without-weights estimator)."),
    # -- parallel ------------------------------------------------------
    "parallel.tasks": (
        "counter", "Tasks submitted through `parallel_map`."),
    "parallel.worker_crashes": (
        "counter", "Worker-process crashes absorbed by `parallel_map`."),
    "parallel.serial_retries": (
        "counter", "Crashed tasks replayed serially in the parent."),
    "parallel.jobs": (
        "gauge", "Worker count of the most recent `parallel_map` call."),
    # -- STA / robustness ----------------------------------------------
    "sta.stages_timed": ("counter", "Gate stages timed during STA."),
    "sta.paths_timed": ("counter", "Timing paths analyzed during STA."),
    # -- incremental / ECO timing --------------------------------------
    "incremental.edits_applied": (
        "counter", "Netlist edits replayed through `ECOTimingEngine`."),
    "incremental.paths_retimed": (
        "counter", "Paths re-timed because an edit dirtied their cone "
        "or rewrote their stage list."),
    "incremental.paths_reused": (
        "counter", "Paths left untouched by an edit replay (their "
        "timings carried over verbatim)."),
    "incremental.stages_reused": (
        "counter", "Stage timings served from the warm memo while "
        "re-timing dirty paths."),
    "incremental.stale_entries_dropped": (
        "counter", "Stage-memo entries invalidated by edits."),
    "incremental.solves_invalidated": (
        "counter", "Primed `SolveCache` eigensolves dropped because an "
        "edit rewrote a net's RC network."),
    "incremental.cone_size": (
        "histogram", "Paths re-timed per edit (the dirty fanout cone)."),
    "fallback.degraded_nets": (
        "counter", "Nets served by a lower tier after the preferred "
        "wire-timing tier failed."),
    # -- serving -------------------------------------------------------
    "serve.requests": ("counter", "Timing requests processed."),
    "serve.nets_served": ("counter", "Nets successfully answered."),
    "serve.net_errors": ("counter", "Nets that failed all tiers."),
    "serve.deadline_cancelled_nets": (
        "counter", "Nets skipped because their request's deadline "
        "expired mid-batch."),
    "serve.request_seconds": (
        "histogram", "Wall seconds per served request."),
    "serve.cache_hits": ("counter", "Prediction-cache hits."),
    "serve.cache_misses": ("counter", "Prediction-cache misses."),
    "serve.admitted": ("counter", "Requests admitted past admission "
                                  "control."),
    "serve.rejected_overload": (
        "counter", "Requests rejected by backpressure (queue full)."),
    "serve.deadline_expired": (
        "counter", "Requests expired in queue before service."),
    "serve.shed_requests": (
        "counter", "Requests served in a degraded shed level."),
    "serve.queue_depth": ("gauge", "Current admission-queue depth."),
    "serve.queue_wait_s": (
        "histogram", "Seconds requests spent queued before service."),
    "serve.batches": ("counter", "Batch windows executed."),
    "serve.batch_nets": ("histogram", "Nets per executed batch window."),
    "serve.batch_requests": (
        "histogram", "Requests per executed batch window."),
    "serve.http_requests": ("counter", "HTTP requests received."),
    "serve.worker_crashes": ("counter", "Serving-worker crashes."),
    "serve.worker_restarts": ("counter", "Serving-worker restarts."),
    "serve.last_resort_retries": (
        "counter", "Requests replayed in-process after repeated worker "
        "deaths."),
    "serve.client_retries": ("counter", "Client-side retries."),
    "serve.client_hedges": ("counter", "Client-side hedged requests."),
    # -- lint: the --concurrency tier ----------------------------------
    "lint.concurrency.modules": (
        "counter", "Modules swept by the CONC pack "
        "(`repro lint --concurrency`)."),
    "lint.concurrency.findings": (
        "counter", "Concurrency findings emitted (post-suppression): "
        "LOCK001/LOCK002/GUARD001/ESCAPE001."),
    "lint.concurrency.lock_edges": (
        "counter", "Lock-order graph edges discovered per run."),
    # -- lint: the --perf / --arch packs -------------------------------
    "lint.perf.findings": (
        "counter", "PERF-pack findings emitted (post-suppression): "
        "PERF001..PERF005."),
    "lint.perf.hot_findings": (
        "counter", "PERF findings on a measured hot path (error "
        "severity)."),
    "lint.arch.violations": (
        "counter", "ARCH001 layer-contract violations "
        "(`repro lint --arch`)."),
}

#: statically named instruments created lazily inside a code path (via
#: ``get_metrics().counter(...)`` at call time) rather than at module
#: import.  They are documented above but won't appear in the registry
#: when this tool imports the modules, so the staleness check skips them.
LAZY_REGISTERED = {
    "fallback.degraded_nets",
    "serve.http_requests",
    "serve.last_resort_retries",
    "lint.concurrency.modules",
    "lint.concurrency.findings",
    "lint.concurrency.lock_edges",
    "lint.perf.findings",
    "lint.perf.hot_findings",
    "lint.arch.violations",
}

#: prefix -> (kind, display name, description) for runtime-named metrics.
DYNAMIC_FAMILIES: Dict[str, Tuple[str, str, str]] = {
    "fallback.served.": (
        "counter", "fallback.served.<tier>",
        "Nets served by each wire-timing tier of a `FallbackChain`."),
    "fallback.failures.": (
        "counter", "fallback.failures.<tier>",
        "Typed failures per wire-timing tier."),
    "fallback.tier_seconds.": (
        "histogram", "fallback.tier_seconds.<tier>",
        "Wall seconds per tier invocation."),
    "batch.bucket_seconds.": (
        "histogram", "batch.bucket_seconds.<n>",
        "Wall seconds per stacked solve of the size-`n` group "
        "(batch engine and `prime_awe`)."),
    "serve.tier.": (
        "counter", "serve.tier.<name>",
        "Queries answered per serving-ladder tier (including `cache`)."),
}

HEADER = """\
# Metric reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: python tools/gen_metrics_doc.py
     CI checks freshness with: python tools/gen_metrics_doc.py --check -->

Every counter, gauge and histogram the pipeline can emit, generated from
the instruments the code actually registers (see
`src/repro/obs/metrics.py` for the instrument semantics and
[OBSERVABILITY.md](OBSERVABILITY.md) for the API and the per-module
instrumentation map).  Names are dotted by subsystem; all durations are
seconds.
"""


def _registered() -> Dict[str, Dict[str, object]]:
    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    from repro.obs import get_metrics

    registry = get_metrics()
    return {"counter": dict(registry._counters),
            "gauge": dict(registry._gauges),
            "histogram": dict(registry._histograms)}


def _check_coverage(registered: Dict[str, Dict[str, object]]) -> List[str]:
    problems: List[str] = []
    kind_of: Dict[str, str] = {}
    for kind, instruments in registered.items():
        for name in instruments:
            kind_of[name] = kind
    for name, kind in sorted(kind_of.items()):
        if name in DESCRIPTIONS:
            expected = DESCRIPTIONS[name][0]
            if expected != kind:
                problems.append(f"{name}: registered as {kind}, "
                                f"documented as {expected}")
        elif not any(name.startswith(prefix)
                     for prefix in DYNAMIC_FAMILIES):
            problems.append(f"{name}: registered {kind} has no entry in "
                            f"DESCRIPTIONS (document it in "
                            f"tools/gen_metrics_doc.py)")
    for name, (kind, _) in sorted(DESCRIPTIONS.items()):
        if name in LAZY_REGISTERED:
            continue
        if name not in registered.get(kind, {}):
            problems.append(f"{name}: documented {kind} is not registered "
                            f"by any instrumented module (stale entry?)")
    return problems


def render() -> str:
    registered = _registered()
    problems = _check_coverage(registered)
    if problems:
        for line in problems:
            print(f"error: {line}", file=sys.stderr)
        raise SystemExit(2)
    lines = [HEADER]
    for kind, title in (("counter", "Counters"), ("gauge", "Gauges"),
                        ("histogram", "Histograms")):
        static = [(name, description)
                  for name, (doc_kind, description)
                  in sorted(DESCRIPTIONS.items()) if doc_kind == kind]
        families = [(display, description)
                    for prefix, (fam_kind, display, description)
                    in sorted(DYNAMIC_FAMILIES.items())
                    if fam_kind == kind]
        lines.append(f"\n## {title}\n")
        lines.append("| name | meaning |")
        lines.append("|---|---|")
        for name, description in static:
            lines.append(f"| `{name}` | {description} |")
        for display, description in families:
            lines.append(f"| `{display}` | {description} |")
    lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Generate or check docs/METRICS.md")
    parser.add_argument("--check", action="store_true",
                        help="verify the committed file matches the "
                             "registry instead of rewriting it")
    args = parser.parse_args(argv)
    content = render()
    if args.check:
        try:
            with open(OUTPUT) as handle:
                on_disk = handle.read()
        except OSError:
            print(f"error: {OUTPUT} missing — run "
                  f"tools/gen_metrics_doc.py", file=sys.stderr)
            return 1
        if on_disk != content:
            print("docs/METRICS.md is stale — regenerate with "
                  "`python tools/gen_metrics_doc.py`", file=sys.stderr)
            return 1
        counters = content.count("| `")
        print(f"docs/METRICS.md is fresh ({counters} documented "
              f"instruments)")
        return 0
    with open(OUTPUT, "w") as handle:
        handle.write(content)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
