#!/usr/bin/env python
"""Compare the ``results`` blocks of two ``BENCH_<date>.json`` reports.

The bench's acceptance contract is that ``--jobs`` is a pure throughput
knob: dataset counts, training losses, evaluation metrics and STA tier
provenance must be identical whatever the worker count.  This tool diffs
the ``results`` blocks of two reports and exits 1 on any mismatch, so CI
can run the workload at two jobs settings and assert label equality.

Timing-dependent keys are excluded from the comparison — they measure the
machine, not the pipeline:

* ``evaluate.throughput_nets_per_s``
* ``sta.gate_seconds`` / ``sta.wire_seconds``

Serve-mode reports (``repro bench --serve``; ``workload.mode ==
"serve"``) are load measurements, so two reports are comparable only
when their *configuration* matches: same mode, identical workload
block, and the same resolved execution environment (multiprocessing
start method, job count).  A cross-config pair is rejected with exit 2
— comparing a fork/jobs=1 run against a spawn/jobs=4 run measures the
configuration, not the change under test.  Within a comparable serve
pair, only the deterministic census keys are diffed (request counts and
the zero-lost invariant); latency and throughput are reported FYI.

ECO-mode reports (``repro bench --eco``; ``workload.mode == "eco"``)
follow the serve rules: the pair must share its workload block and
execution environment (exit 2 otherwise), the deterministic census keys
(edit counts, retimed-path counts, the parity verdict) are diffed
exactly, and the replay-latency measurements are reported FYI.  A report
whose ``eco.parity_ok`` is false fails the comparison outright — an
incremental engine that disagrees with a cold full pass is broken no
matter how fast it replays edits.  Edit-replay latency is gated with the
same ``--max-timing-ratio`` machinery, e.g.
``--max-timing-ratio eco.edit_replay_mean_s=0.2`` for "replaying one
edit stays at least 5x faster than the full pass baseline recorded in
the first report".

Beyond equality, the tool can *gate timings* between two reports measured
on the same machine (e.g. the two pinned baselines committed at the repo
root).  ``--max-timing-ratio KEY=R`` asserts that the second report's
timing at ``KEY`` is at most ``R`` times the first report's — so
``--max-timing-ratio sta.wire_seconds=0.2`` encodes "the batched solver
keeps wire timing at least 5x faster than the old baseline", with the
band above the measured ratio absorbing run-to-run noise.  ``KEY`` is a
dotted path into the ``results`` block, or ``stages.<name>.<field>`` for
the per-stage wall/cpu measurements.  ``--timing-only`` skips the
results-equality diff (for cross-version comparisons where results
legitimately changed but the performance relationship must hold).

Usage::

    python tools/compare_bench_results.py BENCH_a.json BENCH_b.json
    python tools/compare_bench_results.py --timing-only \
        --max-timing-ratio sta.wire_seconds=0.2 \
        --max-timing-ratio stages.dataset.wall_s=0.65 \
        BENCH_old.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

#: results-block paths whose values are wall-clock measurements.
TIMING_KEYS = {
    ("evaluate", "throughput_nets_per_s"),
    ("sta", "gate_seconds"),
    ("sta", "wire_seconds"),
}

#: serve-mode results keys that are deterministic across runs of the same
#: workload; everything else in ``results.serve`` measures the machine.
SERVE_CENSUS_KEYS = {
    ("serve", "requests_sent"),
    ("serve", "lost_requests"),
    ("serve", "nets_requested"),
    ("serve", "single_shot_baseline_nets_per_s"),
}

#: eco-mode results keys that are deterministic across runs of the same
#: workload; the replay latencies in ``results.eco`` measure the machine.
ECO_CENSUS_KEYS = {
    ("eco", "design"),
    ("eco", "paths"),
    ("eco", "edits_applied"),
    ("eco", "paths_retimed"),
    ("eco", "stages_reused"),
    ("eco", "parity_ok"),
}

#: environment keys that define a serve/eco run's execution configuration.
ENV_CONFIG_KEYS = ("mp_start_method", "jobs")

#: modes whose reports are load measurements: comparable only when the
#: workload block and execution environment match exactly.
MEASUREMENT_MODES = ("serve", "eco")


def _mode(document: Dict[str, Any]) -> str:
    workload = document.get("workload")
    if isinstance(workload, dict):
        return str(workload.get("mode", "pipeline"))
    return "pipeline"


def _flatten(block: Dict[str, Any], prefix: tuple = ()) -> Dict[tuple, Any]:
    flat: Dict[tuple, Any] = {}
    for key, value in block.items():
        path = prefix + (key,)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def check_comparable(a: Dict[str, Any],
                     b: Dict[str, Any]) -> List[str]:
    """Config mismatches that make two *documents* incomparable.

    Pipeline reports stay comparable across jobs settings (that is the
    jobs-invariance contract); serve reports additionally pin the whole
    workload block and the execution environment.
    """
    problems: List[str] = []
    mode_a, mode_b = _mode(a), _mode(b)
    if mode_a != mode_b:
        problems.append(f"workload mode mismatch: {mode_a!r} vs {mode_b!r}")
        return problems
    if mode_a not in MEASUREMENT_MODES:
        return problems
    workload_a = a.get("workload") or {}
    workload_b = b.get("workload") or {}
    for key in sorted(set(workload_a) | set(workload_b)):
        if workload_a.get(key) != workload_b.get(key):
            problems.append(
                f"{mode_a} workload differs at {key!r}: "
                f"{workload_a.get(key)!r} vs {workload_b.get(key)!r}")
    env_a = a.get("environment") or {}
    env_b = b.get("environment") or {}
    for key in ENV_CONFIG_KEYS:
        if env_a.get(key) != env_b.get(key):
            problems.append(
                f"execution config differs at environment.{key}: "
                f"{env_a.get(key)!r} vs {env_b.get(key)!r}")
    return problems


def compare_results(a: Dict[str, Any], b: Dict[str, Any],
                    mode: str = "pipeline") -> List[str]:
    """Human-readable mismatch lines between two ``results`` blocks."""
    flat_a, flat_b = _flatten(a), _flatten(b)
    if mode == "serve":
        flat_a = {k: v for k, v in flat_a.items() if k in SERVE_CENSUS_KEYS}
        flat_b = {k: v for k, v in flat_b.items() if k in SERVE_CENSUS_KEYS}
    elif mode == "eco":
        flat_a = {k: v for k, v in flat_a.items() if k in ECO_CENSUS_KEYS}
        flat_b = {k: v for k, v in flat_b.items() if k in ECO_CENSUS_KEYS}
    else:
        flat_a = {k: v for k, v in flat_a.items() if k not in TIMING_KEYS}
        flat_b = {k: v for k, v in flat_b.items() if k not in TIMING_KEYS}
    lines = []
    for path in sorted(set(flat_a) | set(flat_b), key=".".join):
        dotted = ".".join(path)
        if path not in flat_a:
            lines.append(f"{dotted}: only in second report ({flat_b[path]!r})")
        elif path not in flat_b:
            lines.append(f"{dotted}: only in first report ({flat_a[path]!r})")
        elif flat_a[path] != flat_b[path]:
            lines.append(f"{dotted}: {flat_a[path]!r} != {flat_b[path]!r}")
    return lines


def _serve_fyi(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Side-by-side measurement lines for a comparable serve pair."""
    lines = []
    for key in ("throughput_nets_per_s", "speedup_vs_single_shot"):
        va = (a.get("serve") or {}).get(key)
        vb = (b.get("serve") or {}).get(key)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            lines.append(f"  {key}: {va:.1f} -> {vb:.1f}")
    return lines


def _eco_fyi(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Side-by-side measurement lines for a comparable eco pair."""
    lines = []
    for key in ("edit_replay_mean_s", "edit_replay_max_s",
                "speedup_vs_full"):
        va = (a.get("eco") or {}).get(key)
        vb = (b.get("eco") or {}).get(key)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            if key == "speedup_vs_full":
                lines.append(f"  {key}: {va:.1f}x -> {vb:.1f}x")
            else:
                lines.append(f"  {key}: {va * 1e3:.2f}ms -> {vb * 1e3:.2f}ms")
    return lines


def check_eco_parity(results: Dict[str, Any], label: str) -> List[str]:
    """Hard failures for an eco report whose parity check did not pass."""
    eco = results.get("eco")
    if not isinstance(eco, dict):
        return [f"{label}: eco-mode report has no results.eco block"]
    if eco.get("parity_ok") is not True:
        return [f"{label}: eco.parity_ok is {eco.get('parity_ok')!r} "
                f"(incremental replay disagrees with cold full pass)"]
    return []


def _lookup_timing(document: Dict[str, Any], dotted: str) -> Optional[float]:
    """Resolve a timing key: ``stages.<name>.<field>`` or a results path."""
    parts = dotted.split(".")
    if parts[0] == "stages" and len(parts) == 3:
        for stage in document.get("stages", []):
            if stage.get("name") == parts[1]:
                value = stage.get(parts[2])
                return float(value) if isinstance(value, (int, float)) \
                    else None
        return None
    node: Any = document.get("results", {})
    for part in parts:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def check_timing_ratios(a: Dict[str, Any], b: Dict[str, Any],
                        ratios: List[Tuple[str, float]]) -> List[str]:
    """Violations of ``b[key] <= limit * a[key]``, human-readable."""
    problems: List[str] = []
    for key, limit in ratios:
        base = _lookup_timing(a, key)
        current = _lookup_timing(b, key)
        if base is None or current is None:
            problems.append(f"{key}: missing from "
                            f"{'first' if base is None else 'second'} report")
            continue
        if base <= 0.0:
            problems.append(f"{key}: first report has non-positive "
                            f"baseline {base!r}")
            continue
        ratio = current / base
        if ratio > limit:
            problems.append(
                f"{key}: ratio {ratio:.3f} exceeds limit {limit:.3f} "
                f"({base:.6f}s -> {current:.6f}s)")
        else:
            print(f"timing gate ok: {key} ratio {ratio:.3f} "
                  f"<= {limit:.3f} ({base:.6f}s -> {current:.6f}s)")
    return problems


def _parse_ratio(raw: str) -> Tuple[str, float]:
    key, sep, value = raw.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=RATIO, got {raw!r}")
    try:
        limit = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad ratio in {raw!r}")
    if not limit > 0.0:
        raise argparse.ArgumentTypeError(f"ratio must be > 0 in {raw!r}")
    return key, limit


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_<date>.json reports.")
    parser.add_argument("reports", nargs=2, metavar="BENCH.json")
    parser.add_argument("--timing-only", action="store_true",
                        help="skip the results-equality diff; only apply "
                             "--max-timing-ratio gates")
    parser.add_argument("--max-timing-ratio", metavar="KEY=R",
                        type=_parse_ratio, action="append", default=[],
                        dest="ratios",
                        help="assert second[KEY] <= R * first[KEY]; "
                             "repeatable")
    args = parser.parse_args(argv)
    if args.timing_only and not args.ratios:
        parser.error("--timing-only requires at least one "
                     "--max-timing-ratio gate")
    documents: List[Dict[str, Any]] = []
    for path in args.reports:
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error reading {path}: {exc}", file=sys.stderr)
            return 2
        if "results" not in document:
            print(f"error: {path} has no 'results' block", file=sys.stderr)
            return 2
        documents.append(document)

    timing_problems = check_timing_ratios(documents[0], documents[1],
                                          args.ratios)
    if timing_problems:
        print(f"timing gates failed ({len(timing_problems)}):")
        for line in timing_problems:
            print(f"  {line}")
        return 1
    if args.timing_only:
        print(f"timing gates passed ({len(args.ratios)})")
        return 0

    config_problems = check_comparable(documents[0], documents[1])
    if config_problems:
        print("reports are not comparable:", file=sys.stderr)
        for line in config_problems:
            print(f"  {line}", file=sys.stderr)
        return 2
    mode = _mode(documents[0])
    if mode == "eco":
        parity_problems = (
            check_eco_parity(documents[0]["results"], "first report")
            + check_eco_parity(documents[1]["results"], "second report"))
        if parity_problems:
            print(f"eco parity failed ({len(parity_problems)}):")
            for line in parity_problems:
                print(f"  {line}")
            return 1
    mismatches = compare_results(documents[0]["results"],
                                 documents[1]["results"], mode=mode)
    if mismatches:
        print(f"results blocks differ ({len(mismatches)} mismatches):")
        for line in mismatches:
            print(f"  {line}")
        return 1
    if mode == "serve":
        print("serve census matches (zero-lost invariant + request counts)")
        for line in _serve_fyi(documents[0]["results"],
                               documents[1]["results"]):
            print(line)
    elif mode == "eco":
        print("eco census matches (edit counts + parity verdict)")
        for line in _eco_fyi(documents[0]["results"],
                             documents[1]["results"]):
            print(line)
    else:
        print("results blocks match (timing keys excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
