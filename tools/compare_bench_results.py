#!/usr/bin/env python
"""Compare the ``results`` blocks of two ``BENCH_<date>.json`` reports.

The bench's acceptance contract is that ``--jobs`` is a pure throughput
knob: dataset counts, training losses, evaluation metrics and STA tier
provenance must be identical whatever the worker count.  This tool diffs
the ``results`` blocks of two reports and exits 1 on any mismatch, so CI
can run the workload at two jobs settings and assert label equality.

Timing-dependent keys are excluded from the comparison — they measure the
machine, not the pipeline:

* ``evaluate.throughput_nets_per_s``
* ``sta.gate_seconds`` / ``sta.wire_seconds``

Usage::

    python tools/compare_bench_results.py BENCH_a.json BENCH_b.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

#: results-block paths whose values are wall-clock measurements.
TIMING_KEYS = {
    ("evaluate", "throughput_nets_per_s"),
    ("sta", "gate_seconds"),
    ("sta", "wire_seconds"),
}


def _flatten(block: Dict[str, Any], prefix: tuple = ()) -> Dict[tuple, Any]:
    flat: Dict[tuple, Any] = {}
    for key, value in block.items():
        path = prefix + (key,)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def compare_results(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Human-readable mismatch lines between two ``results`` blocks."""
    flat_a = {k: v for k, v in _flatten(a).items() if k not in TIMING_KEYS}
    flat_b = {k: v for k, v in _flatten(b).items() if k not in TIMING_KEYS}
    lines = []
    for path in sorted(set(flat_a) | set(flat_b), key=".".join):
        dotted = ".".join(path)
        if path not in flat_a:
            lines.append(f"{dotted}: only in second report ({flat_b[path]!r})")
        elif path not in flat_b:
            lines.append(f"{dotted}: only in first report ({flat_a[path]!r})")
        elif flat_a[path] != flat_b[path]:
            lines.append(f"{dotted}: {flat_a[path]!r} != {flat_b[path]!r}")
    return lines


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: compare_bench_results.py A.json B.json",
              file=sys.stderr)
        return 2
    reports = []
    for path in argv:
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error reading {path}: {exc}", file=sys.stderr)
            return 2
        if "results" not in document:
            print(f"error: {path} has no 'results' block", file=sys.stderr)
            return 2
        reports.append(document["results"])
    mismatches = compare_results(reports[0], reports[1])
    if mismatches:
        print(f"results blocks differ ({len(mismatches)} mismatches):")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print("results blocks match (timing keys excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
