#!/usr/bin/env python
"""Check internal markdown links across the repo's documentation.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and reference definitions (``[label]: target``),
resolves relative targets against the containing file, and fails (exit 1)
when a target file or an in-file ``#fragment`` anchor does not exist.
External links (``http(s)://``, ``mailto:``) are ignored — CI must not
depend on the network.

Usage::

    python tools/check_docs_links.py [root]

GitHub-style anchors are derived from headings: lowercase, spaces to
hyphens, punctuation dropped.  Fragment checks are best-effort (formatting
inside headings is stripped before slugging).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Set, Tuple

SKIP_DIRS = {".git", ".hypothesis", "__pycache__", ".pytest_cache",
             "node_modules", ".eggs", "build", "dist"}

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def markdown_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading: str) -> str:
    text = re.sub(r"[`*_]|\[|\]|\([^)]*\)", "", heading).strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", text)


def anchors_of(path: str) -> Set[str]:
    with open(path, encoding="utf-8") as handle:
        text = FENCE.sub("", handle.read())
    slugs: Set[str] = set()
    counts: dict = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def link_targets(path: str) -> Iterator[Tuple[int, str]]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Blank out fenced code (keeping newlines so line numbers survive).
    text = FENCE.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield line, match.group(1)


def check(root: str) -> List[str]:
    problems: List[str] = []
    for path in markdown_files(root):
        rel = os.path.relpath(path, root)
        for line, target in link_targets(path):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), base))
                if not os.path.exists(resolved):
                    problems.append(f"{rel}:{line}: broken link -> {target}")
                    continue
            else:
                resolved = path
            if fragment and resolved.lower().endswith(".md"):
                if github_slug(fragment) not in anchors_of(resolved):
                    problems.append(
                        f"{rel}:{line}: missing anchor -> {target}")
    return problems


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.getcwd()
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken internal doc link(s)", file=sys.stderr)
        return 1
    print("all internal doc links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
