#!/usr/bin/env python
"""Check internal markdown links across the repo's documentation.

Thin wrapper kept for existing CI callers: the actual checker now lives in
:mod:`repro.lint.docrules` as lint rule DOC001, so ``repro lint`` is the
single static-analysis entry point (see docs/LINTING.md).  Behaviour and
exit codes are unchanged: problems print to stderr and exit 1.

Usage::

    python tools/check_docs_links.py [root]
"""

from __future__ import annotations

import os
import sys
from typing import List

# Runnable without an installed package or PYTHONPATH: resolve src/ from
# this file's location.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.lint.docrules import check_markdown_tree  # noqa: E402


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.getcwd()
    problems = check_markdown_tree(root)
    for rel, line, message in problems:
        print(f"{rel}:{line}: {message}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken internal doc link(s)", file=sys.stderr)
        return 1
    print("all internal doc links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
