"""Setuptools shim.

Offline environments without the ``wheel`` package cannot perform PEP 660
editable installs; ``python setup.py develop`` (or ``pip install -e .``
with a new enough toolchain) both work through this shim.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
