"""Incremental timing optimization — the paper's motivating use case.

"The fast and accurate work can be integrated into incremental timing
optimization for routed designs" (abstract).  This example does exactly
that:

1. run STA on a routed design with the *golden* engine to find the
   critical path (slow, sign-off quality);
2. train a GNNTrans estimator and re-run STA with the learned wire model
   (fast) — confirming it reports nearly the same arrival times;
3. fix the critical path by up-sizing its weakest driver, using the
   *learned* model to evaluate the fix in the inner loop;
4. verify the improvement with one final golden run.

Run:  python examples/incremental_timing_optimization.py
"""

import time

from repro.core import PLAN_B, LearnedWireModel, WireTimingEstimator
from repro.data import generate_dataset, train_val_split
from repro.design import (Gate, GoldenWireModel, IncrementalSTAEngine,
                          STAEngine, generate_benchmark)
from repro.liberty import make_default_library

_PS = 1e-12


def critical_path(report):
    return max(report.paths, key=lambda p: p.arrival)


def upsize_weakest_driver(netlist, library, path_timing):
    """Replace the path's slowest stage driver with a stronger variant."""
    worst = max(path_timing.stages, key=lambda s: s.gate_delay + s.wire_delay)
    gate = netlist.gates[worst.gate]
    if gate.is_sequential:
        return None
    stronger_name = f"{gate.cell.function}_X{gate.cell.drive_strength * 2}"
    if stronger_name not in library:
        return None
    netlist.gates[worst.gate] = Gate(gate.name, library.cell(stronger_name))
    return worst.gate, gate.cell.name, stronger_name


def main() -> None:
    library = make_default_library()
    netlist = generate_benchmark("DES_PERT", library, scale=1200)
    print(f"Design under optimization: {netlist}")

    print("\n1) Sign-off STA with the golden wire engine...")
    start = time.perf_counter()
    golden_report = STAEngine(netlist, GoldenWireModel()).analyze_design()
    golden_seconds = time.perf_counter() - start
    worst = critical_path(golden_report)
    print(f"   critical path {worst.path_name}: "
          f"{worst.arrival / _PS:.1f} ps "
          f"(gate {worst.gate_delay_total / _PS:.1f} + "
          f"wire {worst.wire_delay_total / _PS:.1f}) "
          f"[{golden_seconds:.2f}s]")

    print("\n2) Training GNNTrans and swapping it in as the wire engine...")
    dataset = generate_dataset(train_names=["PCI_BRIDGE", "DMA", "B19"],
                               test_names=["WB_DMA"], scale=1200,
                               nets_per_design=40)
    train, val = train_val_split(dataset.train, 0.1, seed=0)
    estimator = WireTimingEstimator(PLAN_B)
    estimator.fit(train, val_samples=val, epochs=40)
    learned_model = LearnedWireModel(estimator, dataset.scaler)

    start = time.perf_counter()
    learned_report = STAEngine(netlist, learned_model).analyze_design()
    learned_seconds = time.perf_counter() - start
    learned_worst = critical_path(learned_report)
    error = abs(learned_worst.arrival - worst.arrival) / _PS
    print(f"   learned STA: critical arrival "
          f"{learned_worst.arrival / _PS:.1f} ps "
          f"(vs golden {worst.arrival / _PS:.1f} ps, "
          f"error {error:.2f} ps) [{learned_seconds:.2f}s]")

    print("\n3) Incremental fix loop (learned model + stage cache)...")
    engine = IncrementalSTAEngine(netlist, learned_model)
    for iteration in range(3):
        results = engine.analyze_paths()
        worst_now = max(results, key=lambda p: p.arrival)
        change = upsize_weakest_driver(netlist, library, worst_now)
        if change is None:
            print("   no further upsizing possible")
            break
        gate, old, new = change
        dropped = engine.invalidate_gate(gate)
        after = engine.analyze_paths()
        new_worst = max(after, key=lambda p: p.arrival)
        print(f"   iter {iteration + 1}: {gate} {old} -> {new}; "
              f"worst arrival {new_worst.arrival / _PS:.1f} ps "
              f"(invalidated {dropped} cached stages, "
              f"cache hit rate {engine.hit_rate:.0%})")

    print("\n4) Final sign-off verification with the golden engine...")
    final_report = STAEngine(netlist, GoldenWireModel()).analyze_design()
    final_worst = critical_path(final_report)
    gain = (worst.arrival - final_worst.arrival) / _PS
    print(f"   worst arrival {worst.arrival / _PS:.1f} ps -> "
          f"{final_worst.arrival / _PS:.1f} ps "
          f"(improved {gain:.1f} ps)")
    print(f"   inner-loop speedup vs golden: "
          f"{golden_seconds / max(learned_seconds, 1e-9):.1f}x per STA pass")


if __name__ == "__main__":
    main()
