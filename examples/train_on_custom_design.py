"""Train on your own design and compare GNNTrans against the DAC20 baseline.

Shows the full user-facing workflow on a custom (non-benchmark) design:
define a :class:`DesignSpec`, extract per-net samples with golden labels,
train both estimators, and inspect per-path predictions on one non-tree
net.

Run:  python examples/train_on_custom_design.py
"""

import numpy as np

from repro.baselines import DAC20Estimator
from repro.core import PLAN_B, WireTimingEstimator
from repro.data import design_net_samples, nontree_only, train_val_split
from repro.design import DesignSpec, generate_design
from repro.features import FeatureScaler
from repro.liberty import make_default_library


def main() -> None:
    library = make_default_library()

    print("1) Defining and generating a custom design...")
    spec = DesignSpec(
        name="my_accelerator",
        n_combinational=220,
        n_ffs=24,
        n_paths=30,
        nontree_frac=0.45,      # loop-heavy routing
        levels=6,
        seed=2024,
    )
    netlist = generate_design(spec, library)
    print(f"   {netlist} — {netlist.num_nontree_nets} non-tree nets")

    print("2) Extracting features + golden labels for every net...")
    samples = design_net_samples(netlist, rng=np.random.default_rng(0))
    train_raw, test_raw = samples[: int(0.8 * len(samples))], \
        samples[int(0.8 * len(samples)):]
    scaler = FeatureScaler().fit(train_raw)
    train, test = scaler.transform(train_raw), scaler.transform(test_raw)
    print(f"   {len(train)} train nets, {len(test)} held-out nets")

    print("3) Training GNNTrans...")
    gnn = WireTimingEstimator(PLAN_B)
    tr, val = train_val_split(train, 0.1, seed=0)
    gnn.fit(tr, val_samples=val, epochs=50)
    print(f"   held-out: {gnn.evaluate(test)}")

    print("4) Training the DAC20 baseline (loop breaking + boosted trees)...")
    dac = DAC20Estimator(feature_scaler=scaler).fit(train)
    print(f"   held-out: {dac.evaluate(test)}")

    nontree_test = nontree_only(test)
    if nontree_test:
        print("5) Non-tree subset (where loop breaking hurts):")
        print(f"   GNNTrans: {gnn.evaluate(nontree_test)}")
        print(f"   DAC20   : {dac.evaluate(nontree_test)}")

        sample = max(nontree_test, key=lambda s: s.num_paths)
        g_slew, g_delay = gnn.predict_sample(sample)
        d_slew, d_delay = dac.predict_sample(sample)
        print(f"\n6) Per-path wire delay on {sample.name} "
              f"({sample.num_paths} paths):")
        print(f"   {'sink':>6} {'golden':>8} {'GNNTrans':>9} {'DAC20':>8}  (ps)")
        for i, path in enumerate(sample.paths):
            print(f"   {path.sink:>6} {path.label_delay:8.3f} "
                  f"{g_delay[i]:9.3f} {d_delay[i]:8.3f}")


if __name__ == "__main__":
    main()
