"""Quickstart: train a GNNTrans wire-timing estimator in under a minute.

Generates a miniature version of the paper's benchmark dataset (golden
labels from the exact transient timer), trains GNNTrans, evaluates on an
unseen design, and saves the trained model.

Run:  python examples/quickstart.py
"""

import time

from repro.core import PLAN_B, WireTimingEstimator
from repro.data import generate_dataset, nontree_only, train_val_split


def main() -> None:
    print("1) Generating dataset (train: PCI_BRIDGE+DMA, test: WB_DMA)...")
    start = time.perf_counter()
    dataset = generate_dataset(
        train_names=["PCI_BRIDGE", "DMA"],
        test_names=["WB_DMA"],
        scale=1200,           # paper sizes / 1200 so this runs in seconds
        nets_per_design=40,
    )
    print(f"   {len(dataset.train)} train nets ({dataset.num_train_paths} "
          f"wire paths), {len(dataset.test)} test nets "
          f"[{time.perf_counter() - start:.1f}s]")

    print("2) Training GNNTrans (PlanB: L1=4 GNN + L2=2 transformer layers)...")
    train, val = train_val_split(dataset.train, val_fraction=0.1, seed=0)
    estimator = WireTimingEstimator(PLAN_B)
    start = time.perf_counter()
    history = estimator.fit(train, val_samples=val, epochs=40)
    print(f"   {len(history)} epochs, final loss "
          f"{history.final_train_loss:.4f} [{time.perf_counter() - start:.1f}s]")

    print("3) Evaluating on the unseen WB_DMA design...")
    print(f"   all nets : {estimator.evaluate(dataset.test)}")
    nontree = nontree_only(dataset.test)
    if nontree:
        print(f"   non-tree : {estimator.evaluate(nontree)}")

    rate = estimator.throughput(dataset.test)
    print(f"4) Inference throughput: {rate:.0f} nets/s "
          f"(~{200_000 / rate:.0f}s for a 200K-net design)")

    estimator.save("gnntrans_quickstart.npz")
    print("5) Saved trained model to gnntrans_quickstart.npz")


if __name__ == "__main__":
    main()
