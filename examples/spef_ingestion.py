"""SPEF ingestion flow: parasitic file in, wire timing out.

Mirrors the paper's data pipeline ("Synopsys StarRC extracts RC
parasitics"): a routed design's parasitics are written to an industry-
format SPEF file, then an independent consumer parses that file and runs
the golden timer — proving the estimator can be fed from standard
extraction output rather than in-memory objects.

Run:  python examples/spef_ingestion.py
"""

import os
import tempfile

import numpy as np

from repro.analysis import GoldenTimer
from repro.design import generate_benchmark
from repro.liberty import make_default_library
from repro.rcnet import load_spef, save_spef


def main() -> None:
    library = make_default_library()
    print("1) Routing the WB_DMA benchmark (scaled) and extracting parasitics...")
    netlist = generate_benchmark("WB_DMA", library, scale=1200)
    nets = [net.rcnet for net in netlist.nets.values()]
    print(f"   {len(nets)} nets, "
          f"{sum(n.num_nodes for n in nets)} RC nodes, "
          f"{sum(len(n.couplings) for n in nets)} coupling caps")

    spef_path = os.path.join(tempfile.gettempdir(), "wb_dma.spef")
    save_spef(spef_path, nets, design="WB_DMA")
    size_kb = os.path.getsize(spef_path) / 1024
    print(f"2) Wrote SPEF to {spef_path} ({size_kb:.0f} KiB)")

    print("3) Parsing the SPEF back (independent consumer)...")
    design = load_spef(spef_path)
    print(f"   design {design.design!r}: {len(design)} nets recovered")

    print("4) Golden wire timing from the parsed parasitics (first 5 nets):")
    timer = GoldenTimer(si_mode=False)
    for net in design.nets[:5]:
        result = timer.analyze(net, input_slew=20e-12)
        delays = ", ".join(f"{d / 1e-12:.2f}" for d in result.delays())
        kind = "tree" if net.is_tree() else "non-tree"
        print(f"   {net.name:<16} ({kind:>8}, {net.num_nodes:>2} nodes): "
              f"sink delays [{delays}] ps")

    # Consistency check: timing from the file matches timing from memory.
    original = {n.name: n for n in nets}
    worst = 0.0
    for net in design.nets:
        a = timer.analyze(net, 20e-12).delays()
        b = timer.analyze(original[net.name], 20e-12).delays()
        worst = max(worst, float(np.max(np.abs(np.sort(a) - np.sort(b)))))
    print(f"5) Max |file - memory| golden delay over all nets: "
          f"{worst / 1e-12:.4f} ps (should be ~0)")


if __name__ == "__main__":
    main()
