"""RC-graph tour: the paper's Figures 1(b), 3 and 5 as live data.

Builds the two-sink RC net of Fig. 3 by hand, walks through the graph
view (nodes = capacitances, edges = resistances, paths = source->sink
routes), prints the data representation of Fig. 5 (node feature matrix,
path feature matrix, weighted adjacency), and compares analytic wire
delays against the exact golden timer.

Run:  python examples/rc_graph_tour.py
"""

import numpy as np

from repro.analysis import (GoldenTimer, d2m_delays, elmore_delays,
                            path_elmore_delay)
from repro.features import (NODE_FEATURE_NAMES, PATH_FEATURE_NAMES,
                            NetContext, build_net_sample)
from repro.liberty import make_default_library
from repro.rcnet import FF, OHM, RCNetBuilder, extract_wire_paths, write_spef


def build_fig3_net():
    """Net A of Fig. 1(b)/Fig. 3: a trunk splitting to two sinks, with a
    resistive loop between the branches (non-tree) and one aggressor."""
    b = RCNetBuilder("netA")
    # Trunk from the driver.
    for i in range(4):
        b.add_node(f"netA:{i}", cap=1.0 * FF)
    b.add_edge("netA:0", "netA:1", 40.0 * OHM)
    b.add_edge("netA:1", "netA:2", 60.0 * OHM)
    b.add_edge("netA:2", "netA:3", 50.0 * OHM)
    # Branch to Sink1.
    for i in (4, 5, 6):
        b.add_node(f"netA:{i}", cap=1.5 * FF)
    b.add_edge("netA:3", "netA:4", 80.0 * OHM)
    b.add_edge("netA:4", "netA:5", 70.0 * OHM)
    b.add_edge("netA:5", "netA:6", 60.0 * OHM)
    # Branch to Sink2.
    for i in (7, 8, 9, 10):
        b.add_node(f"netA:{i}", cap=0.8 * FF)
    b.add_edge("netA:3", "netA:7", 90.0 * OHM)
    b.add_edge("netA:7", "netA:8", 50.0 * OHM)
    b.add_edge("netA:8", "netA:9", 40.0 * OHM)
    b.add_edge("netA:9", "netA:10", 70.0 * OHM)
    # The loop that makes this a non-tree net.
    b.add_edge("netA:5", "netA:9", 55.0 * OHM)
    # One switching aggressor coupling into the Sink1 branch.
    b.add_coupling("netA:5", "netB:12", 2.0 * FF, activity=0.8)
    b.set_source("netA:0")
    b.add_sink("netA:6")    # Sink1
    b.add_sink("netA:10")   # Sink2
    return b.build()


def main() -> None:
    net = build_fig3_net()
    print(f"== {net} ==")
    print(f"graph view: |V|={net.num_nodes} capacitances, "
          f"|E|={net.num_edges} resistances, "
          f"|P|={net.num_sinks} wire paths, tree={net.is_tree()}")

    print("\n-- Wire paths (Definition 1 / Section II-B) --")
    paths = extract_wire_paths(net)
    for path in paths:
        names = " -> ".join(net.nodes[i].name.split(":")[1] for i in path.nodes)
        print(f"  to sink {net.nodes[path.sink].name}: nodes [{names}], "
              f"{path.num_stages} stages, R_path={path.resistance:.0f} ohm")

    print("\n-- Analytic vs golden wire delay (ps) --")
    elmore = elmore_delays(net)
    d2m = d2m_delays(net)
    quiet = GoldenTimer(si_mode=False).analyze(net, input_slew=20e-12)
    noisy = GoldenTimer(si_mode=True).analyze(net, input_slew=20e-12)
    print(f"  {'sink':>8} {'Elmore':>8} {'D2M':>8} {'golden':>8} "
          f"{'golden+SI':>10}")
    for timing_q, timing_n, path in zip(quiet.sink_timings,
                                        noisy.sink_timings, paths):
        s = path.sink
        print(f"  {net.nodes[s].name:>8} {elmore[s] / 1e-12:8.3f} "
              f"{d2m[s] / 1e-12:8.3f} {timing_q.delay / 1e-12:8.3f} "
              f"{timing_n.delay / 1e-12:10.3f}")
    print("  (SI push-out comes from the aggressor on netA:5 — note it "
          "hits Sink1 harder than Sink2)")

    print("\n-- Fig. 5 data representation --")
    library = make_default_library()
    context = NetContext(input_slew=20e-12,
                         drive_cell=library.cell("INV_X4"),
                         load_cells=[library.cell("BUF_X1"),
                                     library.cell("NAND2_X2")])
    sample = build_net_sample(net, context)
    np.set_printoptions(precision=3, suppress=True, linewidth=100)
    print(f"node feature matrix X: {sample.node_features.shape} "
          f"(columns: {', '.join(NODE_FEATURE_NAMES)})")
    print(sample.node_features[:4], "...")
    print(f"\npath feature matrix H: ({sample.num_paths}, "
          f"{len(PATH_FEATURE_NAMES)}) "
          f"(columns: {', '.join(PATH_FEATURE_NAMES)})")
    print(np.vstack([p.features for p in sample.paths]))
    print(f"\nweighted adjacency A (resistances / 100 ohm), "
          f"{sample.adjacency.shape}:")
    print(sample.adjacency)
    print(f"\ngolden labels (ps): "
          f"slew={[round(p.label_slew, 2) for p in sample.paths]}, "
          f"delay={[round(p.label_delay, 3) for p in sample.paths]}")

    print("\n-- SPEF serialization of this net --")
    print(write_spef([net], design="fig3_example"))


if __name__ == "__main__":
    main()
