"""Design interchange: Verilog + SPEF + Liberty files in, timing report out.

The standard EDA file trio fully describes a routed design.  This example
exports a generated benchmark to the three formats, re-imports it from the
files alone, runs STA on the rebuilt design, and prints a sign-off-style
timing report — nothing in the flow depends on in-memory state.

Run:  python examples/design_interchange.py
"""

import os
import tempfile

from repro.design import (GoldenWireModel, STAEngine, TimingPath,
                          export_design, format_design_report,
                          format_path_report, generate_benchmark,
                          import_design)
from repro.liberty import load_liberty, make_default_library, save_liberty


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_interchange_")
    library = make_default_library()
    design = generate_benchmark("DES_PERT", library, scale=1200)
    print(f"1) Generated {design}")

    verilog_text, spef_text = export_design(design)
    paths = {
        "netlist.v": verilog_text,
        "parasitics.spef": spef_text,
    }
    for name, text in paths.items():
        with open(os.path.join(workdir, name), "w") as handle:
            handle.write(text)
    save_liberty(os.path.join(workdir, "cells.lib"), library)
    print(f"2) Exported design to {workdir}:")
    for name in list(paths) + ["cells.lib"]:
        size = os.path.getsize(os.path.join(workdir, name))
        print(f"   {name:<18} {size / 1024:7.1f} KiB")

    print("3) Re-importing from the files alone...")
    loaded_library = load_liberty(os.path.join(workdir, "cells.lib"))
    with open(os.path.join(workdir, "netlist.v")) as handle:
        verilog_in = handle.read()
    with open(os.path.join(workdir, "parasitics.spef")) as handle:
        spef_in = handle.read()
    rebuilt = import_design(verilog_in, spef_in, loaded_library)
    print(f"   rebuilt: {rebuilt} "
          f"({rebuilt.num_nontree_nets} non-tree nets)")

    # Timing paths are not part of the interchange formats; carry them over
    # so STA has something to walk (a real flow would read SDC instead).
    for path in design.paths:
        rebuilt.add_path(TimingPath(path.name, list(path.stages)))

    print("4) Running golden STA on the rebuilt design...\n")
    report = STAEngine(rebuilt, GoldenWireModel()).analyze_design()
    print(format_design_report(report, top=5, clock_period=1.5e-9))
    worst = max(report.paths, key=lambda p: p.arrival)
    print()
    print(format_path_report(worst, rebuilt, clock_period=1.5e-9))


if __name__ == "__main__":
    main()
