"""Cell library container and the synthetic library factory.

The factory stands in for the paper's TSMC16 library: a family of
combinational cells and a flip-flop at several drive strengths, each with
NLDM delay/slew tables generated from a first-order switch-resistor model
(``delay ~ 0.69 R_drive C_load`` plus slew dependence and a mild
nonlinearity, so bilinear interpolation is exercised rather than trivial).
Absolute values are synthetic; the *mechanism* — table interpolation — is
identical to sign-off gate timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .cell import Cell, TimingArc
from .table import TimingTable

# Default NLDM characterization grid.
_SLEW_AXIS = np.array([5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0]) * 1e-12
_LOAD_AXIS = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]) * 1e-15

# Per-function base output resistance (ohms, at drive strength 1) and the
# relative intrinsic delay of the topology.
_FUNCTION_ELECTRICAL = {
    "INV": (1600.0, 1.0),
    "BUF": (1600.0, 2.0),
    "NAND2": (2000.0, 1.3),
    "NOR2": (2400.0, 1.5),
    "AND2": (2000.0, 2.2),
    "OR2": (2400.0, 2.4),
    "AOI21": (2600.0, 1.8),
    "OAI21": (2600.0, 1.8),
    "XOR2": (2800.0, 2.8),
    "DFF": (2000.0, 4.0),
}

_FUNCTION_INPUTS = {
    "INV": 1, "BUF": 1, "NAND2": 2, "NOR2": 2, "AND2": 2, "OR2": 2,
    "AOI21": 3, "OAI21": 3, "XOR2": 2, "DFF": 2,
}


class Library:
    """A named collection of :class:`Cell` objects."""

    def __init__(self, name: str, cells: Sequence[Cell]) -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def cells_with_function(self, function: str) -> List[Cell]:
        """All drive-strength variants of one logic function."""
        return [c for c in self._cells.values() if c.function == function]

    @property
    def combinational(self) -> List[Cell]:
        return [c for c in self._cells.values() if not c.is_sequential]

    @property
    def sequential(self) -> List[Cell]:
        return [c for c in self._cells.values() if c.is_sequential]

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __repr__(self) -> str:
        return f"Library({self.name!r}, cells={len(self)})"


def _characterize(drive_resistance: float, intrinsic: float) -> TimingArc:
    """Fill NLDM tables from the switch-resistor model.

    delay  = intrinsic + ln(2)·R·C + 0.12·slew + nonlinear cross term
    slew   = 1 ps + 2.2·R·C·0.8 + 0.18·slew_in + cross term

    The cross term ``sqrt(R·C·slew)`` bends the surface so the tables are
    genuinely two-dimensional.
    """
    delay_values = np.empty((len(_SLEW_AXIS), len(_LOAD_AXIS)))
    slew_values = np.empty_like(delay_values)
    for i, s in enumerate(_SLEW_AXIS):
        for j, c in enumerate(_LOAD_AXIS):
            rc = drive_resistance * c
            cross = np.sqrt(rc * s)
            delay_values[i, j] = intrinsic + 0.693 * rc + 0.12 * s + 0.08 * cross
            slew_values[i, j] = 1e-12 + 1.76 * rc + 0.18 * s + 0.10 * cross
    return TimingArc(
        related_pin="A",
        delay=TimingTable(_SLEW_AXIS, _LOAD_AXIS, delay_values),
        output_slew=TimingTable(_SLEW_AXIS, _LOAD_AXIS, slew_values),
    )


def make_default_library(name: str = "repro16",
                         strengths: Sequence[int] = (1, 2, 4, 8)) -> Library:
    """Build the synthetic standard-cell library used across the repo.

    Every function in :data:`_FUNCTION_ELECTRICAL` is emitted at each drive
    strength (flip-flops only at strengths <= 2, as in typical libraries).
    Stronger cells have proportionally lower output resistance and larger
    input capacitance, so drive strength genuinely matters to wire timing —
    which is why it appears among the paper's path features.
    """
    cells: List[Cell] = []
    for function, (base_r, intrinsic_scale) in _FUNCTION_ELECTRICAL.items():
        function_strengths = [s for s in strengths if s <= 2] \
            if function == "DFF" else list(strengths)
        for strength in function_strengths:
            drive_resistance = base_r / strength
            intrinsic = 2e-12 * intrinsic_scale * (1.0 + 0.1 * np.log2(strength))
            arc = _characterize(drive_resistance, intrinsic)
            num_inputs = _FUNCTION_INPUTS[function]
            arcs = {}
            for pin_idx in range(num_inputs):
                pin = chr(ord("A") + pin_idx)
                arcs[pin] = TimingArc(pin, arc.delay, arc.output_slew)
            if function == "DFF":
                # Clock-to-Q arc.  Generated launch stages reference the
                # CK pin explicitly; sharing the data-pin tables keeps
                # their timing identical to what strict pin resolution
                # would otherwise fall back to.
                arcs["CK"] = TimingArc("CK", arc.delay, arc.output_slew)
            cells.append(Cell(
                name=f"{function}_X{strength}",
                function=function,
                drive_strength=strength,
                num_inputs=num_inputs,
                input_cap=0.6e-15 * strength,
                drive_resistance=drive_resistance,
                arcs=arcs,
            ))
    return Library(name, cells)
