"""Effective capacitance seen through a resistive wire.

Resistive shielding makes the load a driver "feels" smaller than the net's
total capacitance.  Sign-off timers reduce the RC load to a single
*effective capacitance* (ceff) before indexing the NLDM tables; we implement
the classic first-order shielding model:

    ceff = sum_j C_j * R_drive / (R_drive + R_path(source -> j))

Each capacitance is discounted by the voltage divider between the driver
resistance and the wire resistance in front of it.  For zero wire
resistance this reduces to the total capacitance, and it decreases
monotonically as the wire gets more resistive — the two limits the STA
engine's tests pin down.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rcnet.graph import RCNet
from ..rcnet.paths import shortest_path_tree
from ..analysis.mna import capacitance_vector
from ..robustness.errors import InputError


def effective_capacitance(net: RCNet, drive_resistance: float,
                          sink_loads: Optional[np.ndarray] = None) -> float:
    """Effective capacitance of ``net`` for a driver with ``drive_resistance``.

    Parameters
    ----------
    net:
        The RC net being driven.
    drive_resistance:
        Thevenin resistance of the driving cell, ohms.
    sink_loads:
        Optional receiver pin capacitances aligned with ``net.sinks``.

    Returns
    -------
    float
        Effective capacitance in farads, in ``(0, total_cap]``.
    """
    if drive_resistance <= 0.0:
        raise InputError("drive_resistance must be positive",
                         net=net.name, stage="ceff")
    caps = capacitance_vector(net, miller_factor=None, sink_loads=sink_loads)
    dist, _, _ = shortest_path_tree(net)  # resistance from source to each node
    weights = drive_resistance / (drive_resistance + np.asarray(dist))
    return float(np.sum(caps * weights))
