"""Liberty (.lib) file writer and parser for the NLDM subset we model.

Real flows exchange cell timing as Liberty files; this module serializes
a :class:`~repro.liberty.library.Library` to the standard syntax and reads
it back, covering:

* library-level units (``time_unit``, ``capacitive_load_unit``);
* ``lut_template`` declarations with ``index_1``/``index_2``;
* ``cell`` groups with function metadata, per-cell ``drive_strength`` /
  ``drive_resistance`` attributes, input ``pin`` groups with
  ``capacitance``, and output pins with ``timing()`` arcs holding
  ``cell_rise`` and ``rise_transition`` tables.

The dialect is deliberately conservative (quoted value rows, one template
per table shape) so third-party Liberty tooling can read the output.
Parsing is tolerant of whitespace/newlines but strict about structure —
malformed groups raise :class:`LibertyError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cell import FUNCTION_IDS, Cell, TimingArc
from .library import Library
from .table import TimingTable

_TIME_SCALE = 1e-9   # written in ns
_CAP_SCALE = 1e-15   # written in fF

# Boolean expressions for the `function` attribute, per logic function.
_FUNCTION_EXPR = {
    "INV": "(!A)",
    "BUF": "(A)",
    "NAND2": "(!(A&B))",
    "NOR2": "(!(A|B))",
    "AND2": "(A&B)",
    "OR2": "(A|B)",
    "AOI21": "(!((A&B)|C))",
    "OAI21": "(!((A|B)&C))",
    "XOR2": "(A^B)",
    "DFF": "IQ",
}


class LibertyError(ValueError):
    """Raised on malformed Liberty input."""


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def write_liberty(library: Library) -> str:
    """Serialize a library to Liberty text."""
    lines: List[str] = [
        f"library ({library.name}) {{",
        '  time_unit : "1ns";',
        '  capacitive_load_unit (1, ff);',
        '  voltage_unit : "1V";',
        '  current_unit : "1mA";',
        '  pulling_resistance_unit : "1kohm";',
        "",
    ]
    templates = _collect_templates(library)
    for name, (slew_axis, load_axis) in templates.items():
        lines.append(f"  lu_table_template ({name}) {{")
        lines.append("    variable_1 : input_net_transition;")
        lines.append("    variable_2 : total_output_net_capacitance;")
        lines.append(f'    index_1 ("{_axis(slew_axis, _TIME_SCALE)}");')
        lines.append(f'    index_2 ("{_axis(load_axis, _CAP_SCALE)}");')
        lines.append("  }")
        lines.append("")

    for cell in library:
        lines.extend(_write_cell(cell, templates))
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_liberty(path: str, library: Library) -> None:
    """Write ``library`` to ``path`` in Liberty format."""
    with open(path, "w") as handle:
        handle.write(write_liberty(library))


def _collect_templates(library: Library
                       ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """One ``lu_table_template`` per distinct (slew, load) axis pair."""
    templates: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for cell in library:
        for arc in cell.arcs.values():
            key = _template_key(arc.delay)
            templates.setdefault(key, (arc.delay.slew_axis,
                                       arc.delay.load_axis))
    return templates


def _template_key(table: TimingTable) -> str:
    return f"tmpl_{len(table.slew_axis)}x{len(table.load_axis)}"


def _axis(values: np.ndarray, scale: float) -> str:
    return ", ".join(f"{v / scale:.6g}" for v in values)


def _write_cell(cell: Cell, templates: Dict) -> List[str]:
    lines = [f"  cell ({cell.name}) {{"]
    lines.append(f"    /* function: {cell.function}, "
                 f"drive strength X{cell.drive_strength} */")
    lines.append(f"    drive_strength : {cell.drive_strength};")
    lines.append(f"    drive_resistance : {cell.drive_resistance:.6g};")
    if cell.is_sequential:
        lines.append('    ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; }')
    for pin_idx in range(cell.num_inputs):
        pin = chr(ord("A") + pin_idx)
        lines.append(f"    pin ({pin}) {{")
        lines.append("      direction : input;")
        lines.append(f"      capacitance : {cell.input_cap / _CAP_SCALE:.6g};")
        lines.append("    }")
    lines.append("    pin (Z) {")
    lines.append("      direction : output;")
    lines.append(f'      function : "{_FUNCTION_EXPR[cell.function]}";')
    for pin_name, arc in cell.arcs.items():
        template = _template_key(arc.delay)
        lines.append("      timing () {")
        lines.append(f'        related_pin : "{pin_name}";')
        lines.append(f"        cell_rise ({template}) {{")
        lines.extend(_value_rows(arc.delay.values, _TIME_SCALE, indent=10))
        lines.append("        }")
        lines.append(f"        rise_transition ({template}) {{")
        lines.extend(_value_rows(arc.output_slew.values, _TIME_SCALE,
                                 indent=10))
        lines.append("        }")
        lines.append("      }")
    lines.append("    }")
    lines.append("  }")
    lines.append("")
    return lines


def _value_rows(values: np.ndarray, scale: float, indent: int) -> List[str]:
    pad = " " * indent
    rows = [f'{pad}values ( \\']
    for i, row in enumerate(values):
        text = ", ".join(f"{v / scale:.6g}" for v in row)
        sep = ", \\" if i + 1 < len(values) else " );"
        rows.append(f'{pad}  "{text}"{sep}')
    return rows


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def parse_liberty(text: str) -> Library:
    """Parse Liberty text previously produced by :func:`write_liberty`.

    The parser handles the written dialect plus reasonable variations in
    whitespace and attribute order.  Returns a fully usable
    :class:`Library` (lookup tables interpolate identically to the
    original up to formatting precision).
    """
    tokens = _GroupParser(text).parse()
    if tokens.kind != "library":
        raise LibertyError("top-level group must be library(...)")

    templates: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for group in tokens.children:
        if group.kind == "lu_table_template":
            index_1 = _parse_axis(group.attr("index_1")) * _TIME_SCALE
            index_2 = _parse_axis(group.attr("index_2")) * _CAP_SCALE
            templates[group.argument] = (index_1, index_2)

    cells: List[Cell] = []
    for group in tokens.children:
        if group.kind == "cell":
            cells.append(_parse_cell(group, templates))
    if not cells:
        raise LibertyError("library contains no cells")
    return Library(tokens.argument, cells)


def load_liberty(path: str) -> Library:
    """Parse the Liberty file at ``path``."""
    with open(path) as handle:
        return parse_liberty(handle.read())


def _parse_cell(group: "_Group", templates: Dict) -> Cell:
    name = group.argument
    function = _infer_function(name, group)
    drive_strength = int(float(group.attr("drive_strength")))
    drive_resistance = float(group.attr("drive_resistance"))

    input_cap: Optional[float] = None
    arcs: Dict[str, TimingArc] = {}
    num_inputs = 0
    for pin in group.children_of("pin"):
        direction = pin.attr("direction")
        if direction == "input":
            num_inputs += 1
            input_cap = float(pin.attr("capacitance")) * _CAP_SCALE
        elif direction == "output":
            for timing in pin.children_of("timing"):
                related = timing.attr("related_pin").strip('"')
                delay = _parse_table(timing.child("cell_rise"), templates)
                slew = _parse_table(timing.child("rise_transition"), templates)
                arcs[related] = TimingArc(related, delay, slew)
    if input_cap is None:
        raise LibertyError(f"cell {name!r} has no input pin")
    if not arcs:
        raise LibertyError(f"cell {name!r} has no timing arcs")
    return Cell(name=name, function=function, drive_strength=drive_strength,
                num_inputs=num_inputs, input_cap=input_cap,
                drive_resistance=drive_resistance, arcs=arcs)


def _infer_function(name: str, group: "_Group") -> str:
    head = name.split("_X")[0]
    if head in FUNCTION_IDS:
        return head
    raise LibertyError(f"cannot infer logic function of cell {name!r}")


def _parse_table(group: "_Group", templates: Dict) -> TimingTable:
    template = templates.get(group.argument)
    if template is None:
        raise LibertyError(f"unknown table template {group.argument!r}")
    slew_axis, load_axis = template
    raw = group.attr("values")
    rows = re.findall(r'"([^"]*)"', raw)
    if not rows:
        raise LibertyError("table has no value rows")
    values = np.array([[float(x) for x in row.split(",")] for row in rows])
    return TimingTable(slew_axis, load_axis, values * _TIME_SCALE)


def _parse_axis(raw: str) -> np.ndarray:
    return np.array([float(x) for x in raw.strip('"').split(",")])


# ----------------------------------------------------------------------
# Tiny recursive-descent group parser for Liberty's  name(arg) { ... }
# ----------------------------------------------------------------------
class _Group:
    """A parsed ``kind (argument) { attributes / children }`` group."""

    def __init__(self, kind: str, argument: str) -> None:
        self.kind = kind
        self.argument = argument
        self.attributes: Dict[str, str] = {}
        self.children: List["_Group"] = []

    def attr(self, name: str) -> str:
        try:
            return self.attributes[name]
        except KeyError:
            raise LibertyError(
                f"group {self.kind}({self.argument}) missing "
                f"attribute {name!r}") from None

    def children_of(self, kind: str) -> List["_Group"]:
        return [c for c in self.children if c.kind == kind]

    def child(self, kind: str) -> "_Group":
        matches = self.children_of(kind)
        if not matches:
            raise LibertyError(
                f"group {self.kind}({self.argument}) has no {kind} child")
        return matches[0]


class _GroupParser:
    def __init__(self, text: str) -> None:
        # Strip comments and line continuations.
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
        text = text.replace("\\\n", " ")
        self.text = text
        self.pos = 0

    def parse(self) -> _Group:
        group = self._parse_group()
        if group is None:
            raise LibertyError("no top-level group found")
        return group

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _parse_group(self) -> Optional[_Group]:
        self._skip_ws()
        match = re.compile(r"([A-Za-z_][\w]*)\s*\(([^)]*)\)\s*\{").match(
            self.text, self.pos)
        if not match:
            return None
        group = _Group(match.group(1), match.group(2).strip())
        self.pos = match.end()
        while True:
            self._skip_ws()
            if self.pos >= len(self.text):
                raise LibertyError(
                    f"unterminated group {group.kind}({group.argument})")
            if self.text[self.pos] == "}":
                self.pos += 1
                return group
            child = self._parse_group()
            if child is not None:
                group.children.append(child)
                continue
            self._parse_statement(group)

    def _parse_statement(self, group: _Group) -> None:
        end = self.text.find(";", self.pos)
        if end < 0:
            raise LibertyError(
                f"unterminated statement in {group.kind}({group.argument})")
        statement = self.text[self.pos:end].strip()
        self.pos = end + 1
        if not statement:
            return
        if ":" in statement:
            key, _, value = statement.partition(":")
            group.attributes[key.strip()] = value.strip().rstrip(";").strip()
            return
        # Attribute-with-parentheses form, e.g. values (...) or
        # capacitive_load_unit (1, ff).
        match = re.match(r"([A-Za-z_][\w]*)\s*\((.*)\)\s*$", statement,
                         flags=re.S)
        if match:
            group.attributes[match.group(1)] = match.group(2).strip()
            return
        raise LibertyError(f"cannot parse statement {statement!r}")
