"""NLDM-style two-dimensional timing lookup tables.

The paper's premise (Section I) is that *gate* timing is cheap and accurate
because it only needs interpolation into cell-library lookup tables.  This
module implements exactly that mechanism: a table indexed by input slew and
output load, evaluated by bilinear interpolation with clamped extrapolation
at the table edges (the standard sign-off behaviour).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class TimingTable:
    """A delay-or-slew lookup table ``values[slew_index, load_index]``.

    Parameters
    ----------
    slew_axis:
        Strictly increasing input-transition index values, seconds.
    load_axis:
        Strictly increasing output-capacitance index values, farads.
    values:
        Table body of shape ``(len(slew_axis), len(load_axis))``, seconds.
    """

    def __init__(self, slew_axis: Sequence[float], load_axis: Sequence[float],
                 values: np.ndarray) -> None:
        self.slew_axis = np.asarray(slew_axis, dtype=np.float64)
        self.load_axis = np.asarray(load_axis, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.slew_axis.ndim != 1 or self.load_axis.ndim != 1:
            raise ValueError("axes must be one-dimensional")
        if np.any(np.diff(self.slew_axis) <= 0.0):
            raise ValueError("slew axis must be strictly increasing")
        if np.any(np.diff(self.load_axis) <= 0.0):
            raise ValueError("load axis must be strictly increasing")
        expected = (len(self.slew_axis), len(self.load_axis))
        if self.values.shape != expected:
            raise ValueError(
                f"table shape {self.values.shape} does not match axes {expected}")

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with clamping beyond the table corners.

        Clamped (constant) extrapolation matches how sign-off timers treat
        out-of-characterization operating points conservatively.
        """
        si, sf = self._locate(self.slew_axis, slew)
        li, lf = self._locate(self.load_axis, load)
        v00 = self.values[si, li]
        v01 = self.values[si, li + 1]
        v10 = self.values[si + 1, li]
        v11 = self.values[si + 1, li + 1]
        v0 = v00 + (v01 - v00) * lf
        v1 = v10 + (v11 - v10) * lf
        return float(v0 + (v1 - v0) * sf)

    @staticmethod
    def _locate(axis: np.ndarray, value: float) -> tuple:
        """Return (lower index, fraction) with clamping at both ends."""
        if value <= axis[0]:
            return 0, 0.0
        if value >= axis[-1]:
            return len(axis) - 2, 1.0
        idx = int(np.searchsorted(axis, value) - 1)
        span = axis[idx + 1] - axis[idx]
        return idx, float((value - axis[idx]) / span)

    def __repr__(self) -> str:
        return (f"TimingTable({len(self.slew_axis)}x{len(self.load_axis)}, "
                f"slew {self.slew_axis[0]:.2e}..{self.slew_axis[-1]:.2e}s, "
                f"load {self.load_axis[0]:.2e}..{self.load_axis[-1]:.2e}F)")
