"""Cell-library substrate: NLDM tables, cells and the synthetic library.

Gate timing in the paper comes from "interpolating look-up tables in cell
libraries"; this package provides that machinery plus the electrical cell
facts (drive resistance, pin capacitance, drive strength, function encoding)
that the wire-timing features of Table I depend on.
"""

from .table import TimingTable
from .cell import FUNCTION_IDS, Cell, TimingArc
from .library import Library, make_default_library
from .ceff import effective_capacitance
from .libfile import (LibertyError, load_liberty, parse_liberty,
                      save_liberty, write_liberty)

__all__ = [
    "TimingTable", "TimingArc", "Cell", "FUNCTION_IDS",
    "Library", "make_default_library",
    "effective_capacitance",
    "write_liberty", "parse_liberty", "save_liberty", "load_liberty",
    "LibertyError",
]
