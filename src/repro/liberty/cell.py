"""Standard-cell timing model: cells, timing arcs and NLDM tables.

Cells carry the two things the rest of the reproduction needs:

* a timing arc (delay table + output-slew table) used by the STA engine to
  compute gate delay exactly as the paper does ("interpolating look-up
  tables in cell libraries");
* electrical facts — input pin capacitance and Thevenin drive resistance —
  consumed by the golden wire simulator and by the Table I path features
  ("dir. of drive cell", "func. of drive cell", pin caps as sink loads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .table import TimingTable

# Canonical functionality encoding shared by feature extraction.
FUNCTION_IDS: Dict[str, int] = {
    "INV": 0, "BUF": 1, "NAND2": 2, "NOR2": 3, "AND2": 4, "OR2": 5,
    "AOI21": 6, "OAI21": 7, "XOR2": 8, "DFF": 9,
}


@dataclass(frozen=True)
class TimingArc:
    """One input-to-output timing arc with NLDM delay and slew tables."""

    related_pin: str
    delay: TimingTable
    output_slew: TimingTable

    def evaluate(self, input_slew: float, load: float) -> Tuple[float, float]:
        """Return ``(delay, output slew)`` in seconds for an operating point."""
        return (self.delay.lookup(input_slew, load),
                self.output_slew.lookup(input_slew, load))


@dataclass(frozen=True)
class Cell:
    """A characterized standard cell.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"INV_X4"``.
    function:
        Logic function key (one of :data:`FUNCTION_IDS`).
    drive_strength:
        Relative drive (1, 2, 4, 8, ...); Table I's "dir. of drive cell".
    num_inputs:
        Number of input pins.
    input_cap:
        Capacitance of each input pin, farads.
    drive_resistance:
        Thevenin output resistance used for wire simulation, ohms.
    arcs:
        Timing arcs keyed by input pin name.
    """

    name: str
    function: str
    drive_strength: int
    num_inputs: int
    input_cap: float
    drive_resistance: float
    arcs: Dict[str, TimingArc] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.function not in FUNCTION_IDS:
            raise ValueError(f"unknown cell function {self.function!r}")
        if self.drive_strength < 1:
            raise ValueError("drive_strength must be >= 1")
        if self.input_cap <= 0.0:
            raise ValueError("input_cap must be positive")
        if self.drive_resistance <= 0.0:
            raise ValueError("drive_resistance must be positive")

    @property
    def function_id(self) -> int:
        """Integer encoding of the logic function (feature value)."""
        return FUNCTION_IDS[self.function]

    @property
    def is_sequential(self) -> bool:
        return self.function == "DFF"

    def arc(self, input_pin: str = "A") -> TimingArc:
        """Timing arc for an input pin (default first pin ``A``)."""
        try:
            return self.arcs[input_pin]
        except KeyError:
            raise KeyError(
                f"cell {self.name!r} has no arc from pin {input_pin!r}") from None

    def delay_and_slew(self, input_slew: float, load: float,
                       input_pin: str = "A") -> Tuple[float, float]:
        """Gate delay and output slew at an operating point, seconds."""
        return self.arc(input_pin).evaluate(input_slew, load)
