"""Baseline (grandfathered-findings) file support for the repo linter.

A baseline lets the linter land with existing violations acknowledged but
not yet fixed: each entry names one finding (rule + path + source snippet)
together with a human justification, and matching findings are reported as
``baselined`` instead of failing the run.  Entries that no longer match
anything are *stale* and surface in the report so the baseline shrinks
over time instead of rotting.

Matching is content-based — ``(rule, path, snippet)`` with the snippet
being the stripped source line — so pure line-number drift (code added
above the finding) does not invalidate entries, while editing the
offending line itself does, forcing a re-decision.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"

#: Default baseline filename, looked up in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: what it is and why it is tolerated."""

    rule: str
    path: str
    snippet: str
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path,
                "snippet": self.snippet,
                "justification": self.justification}


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: str) -> List[BaselineEntry]:
    """Entries of a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path!r} is not a {BASELINE_SCHEMA} document")
    raw_entries = document.get("entries", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path!r} has a non-list 'entries'")
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(
                f"baseline {path!r} entry {index} is not an object")
        try:
            entries.append(BaselineEntry(
                rule=str(raw["rule"]), path=str(raw["path"]),
                snippet=str(raw["snippet"]),
                justification=str(raw.get("justification", ""))))
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path!r} entry {index} lacks field {exc}") from exc
    return entries


def write_baseline(path: str, findings: Sequence["Finding"],
                   justification: str = "grandfathered at baseline "
                                        "creation; justify or fix") -> None:
    """Write ``findings`` as a fresh baseline file (sorted, one per line)."""
    entries = sorted({BaselineEntry(f.rule, f.path, f.snippet, justification)
                      for f in findings},
                     key=lambda e: (e.path, e.rule, e.snippet))
    document = {"schema": BASELINE_SCHEMA,
                "entries": [entry.as_dict() for entry in entries]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings: Sequence["Finding"],
                   entries: Sequence[BaselineEntry]
                   ) -> Tuple[List["Finding"], int, List[BaselineEntry]]:
    """Split findings into (active, baselined-count, stale-entries).

    An entry suppresses *every* finding with the same ``(rule, path,
    snippet)`` key — a deliberately coarse match, since distinguishing two
    identical violations on identical source lines is not actionable.
    """
    keys = {entry.key() for entry in entries}
    active: List["Finding"] = []
    matched: Set[Tuple[str, str, str]] = set()
    baselined = 0
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        if key in keys:
            baselined += 1
            matched.add(key)
        else:
            active.append(finding)
    stale = [entry for entry in entries if entry.key() not in matched]
    return active, baselined, stale
