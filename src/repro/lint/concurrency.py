"""The ``--concurrency`` tier: lock model, guarded-by, thread escape.

The serving stack (PRs 6-8) made the process genuinely concurrent, and the
sequential deep packs (FLOW/SHAPE/UNIT) cannot see the failure modes that
matter there: inconsistent lock acquisition orders, shared mutable state
touched off-lock, and module state captured by worker threads.  This pass
adds a fourth pack (CONC) with three analyses over the same module set the
deep tier reads:

* **Lock model + lock-order graph** — ``threading.Lock/RLock/Condition``
  (and :func:`repro.obs.lockwatch.named_lock`) attributes and module
  globals are lock *nodes*, identified by stable names
  (``"PredictionCache._lock"`` for instance locks, the dotted module path
  for module locks) that match the runtime watchdog's lock names.  A
  ``with self._lock:`` region (or nested ``with``) acquired while another
  lock is held, or a call made under a lock whose (transitive) callee
  acquires one, contributes an ordered edge.  LOCK001 reports every edge
  that participates in a cycle — a potential deadlock.  LOCK002 reports a
  call to an *injected* callable (a constructor-parameter attribute or a
  function parameter) made while holding a lock: callbacks under a lock
  re-enter user code with the lock held.
* **Guarded-by inference (GUARD001)** — a ``# repro-guarded-by: <lock>``
  trailing comment on an attribute assignment in ``__init__`` declares
  that the attribute may only be touched under that same-class lock; every
  access outside ``__init__`` that does not hold the guard is an error.
  Unannotated mutable attributes are *inferred* guarded when at least two
  accesses hold exactly one common lock while another access holds none
  (a warning).  Methods whose name ends in ``_locked`` are assumed to run
  with the class's lock held, and calling one without the lock is itself
  a finding.  A dotted annotation value (``Owner._lock``) documents an
  *external* guard (the owner serializes access) and is recorded but not
  checked — ``_CircuitBreaker`` is the canonical case.
* **Thread-escape analysis (ESCAPE001)** — functions reaching a spawn
  site (``threading.Thread(target=...)``, ``executor.submit``,
  ``parallel_map``, ``WorkerSupervisor``) are closed over the resolved
  call graph; any mutation of module-level state (a ``global`` rebind, a
  store through a module name, a mutating method on a mutable global) on
  such a path without *any* lock held is flagged.  This generalizes the
  classic PAR002 rule interprocedurally.

The pass is deliberately **uncached**: LOCK001 is a whole-program property
of the current input set, so findings are recomputed from fresh ASTs each
run (module summaries still come from the deep tier's cache).  Soundness
limits, documented in docs/LINTING.md: lock identity is per *class
attribute*, not per instance; ``with``-based regions are tracked lexically
(explicit ``acquire()`` counts as an acquisition event for ordering, but
does not open a region); reads of module globals are not flagged, only
writes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from .deep import DeepRuleInfo
from .engine import Finding, SEVERITY_ERROR, SEVERITY_WARNING
from .symbols import ModuleSummary, SymbolTable, canonical_name, dotted_name

__all__ = ["CONC_PACK_VERSION", "CONC_RULE_CATALOGUE", "CONC_RULE_NAMES",
           "LockGraph", "ModuleConcurrency", "build_lock_graph",
           "dump_lock_graph", "extract_module_concurrency",
           "run_concurrency", "run_concurrency_models"]

#: Bump when extraction or any CONC rule's semantics change; feeds the
#: incremental-cache fingerprint so persisted lock models self-invalidate.
CONC_PACK_VERSION = "repro-lint-conc/1"

#: Trailing-comment grammar declaring an attribute's guard.  A bare name
#: is a lock attribute of the same class (checked); a dotted name is an
#: external guard (documented, unchecked).
GUARDED_BY = re.compile(
    r"#\s*repro-guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_.]*)")

#: Canonical callable names that construct a lock object.
_LOCK_CTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
}
_LOCK_CTOR_TAILS = {"named_lock": "Lock"}

#: Constructor/display values treated as mutable containers for the
#: guarded-by inference and the escape analysis (mirrors PAR002).
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "deque", "OrderedDict", "defaultdict",
    "Counter", "bytearray"})

#: Method tails that mutate their receiver in place.
_MUTATING_TAILS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "move_to_end", "sort", "reverse"})

#: Maximum functions visited per escape-closure / acquire-closure walk.
_CLOSURE_CAP = 512

#: Special-cased return types for chains the symbol table cannot resolve.
_RETURN_TYPES = {
    "get_metrics": {"counter": "Counter", "gauge": "Gauge",
                    "histogram": "Histogram"},
}


# ----------------------------------------------------------------------
# Per-module model
# ----------------------------------------------------------------------
@dataclass
class LockDecl:
    """One declared lock: a class attribute or a module-level global."""

    node: str            # stable graph node id, e.g. "PredictionCache._lock"
    kind: str            # "Lock" | "RLock" | "Condition"
    line: int
    alias_of: Optional[str] = None  # Condition(self.x) aliases node of x

    def as_dict(self) -> Dict[str, object]:
        return {"node": self.node, "kind": self.kind, "line": self.line,
                "alias_of": self.alias_of}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "LockDecl":
        alias = raw.get("alias_of")
        return cls(node=str(raw["node"]), kind=str(raw["kind"]),
                   line=int(raw["line"]),  # type: ignore[arg-type]
                   alias_of=None if alias is None else str(alias))


@dataclass
class AttrAccess:
    """One ``self.<attr>`` touch inside a method."""

    attr: str
    method: str
    line: int
    col: int
    write: bool
    locks: FrozenSet[str]

    def as_dict(self) -> Dict[str, object]:
        return {"attr": self.attr, "method": self.method, "line": self.line,
                "col": self.col, "write": self.write,
                "locks": sorted(self.locks)}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "AttrAccess":
        return cls(attr=str(raw["attr"]), method=str(raw["method"]),
                   line=int(raw["line"]), col=int(raw["col"]),  # type: ignore[arg-type]
                   write=bool(raw["write"]),
                   locks=frozenset(_str_list(raw.get("locks"))))


@dataclass
class ClassModel:
    """Concurrency-relevant digest of one class."""

    name: str
    module: str
    line: int
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    guarded_by: Dict[str, str] = field(default_factory=dict)
    external_guards: Dict[str, str] = field(default_factory=dict)
    mutable_attrs: Dict[str, int] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    injected_attrs: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)
    accesses: List[AttrAccess] = field(default_factory=list)

    def lock_nodes(self) -> Set[str]:
        return {decl.alias_of or decl.node for decl in self.locks.values()}

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "module": self.module, "line": self.line,
            "locks": {k: v.as_dict() for k, v in sorted(self.locks.items())},
            "guarded_by": dict(sorted(self.guarded_by.items())),
            "external_guards": dict(sorted(self.external_guards.items())),
            "mutable_attrs": dict(sorted(self.mutable_attrs.items())),
            "attr_types": dict(sorted(self.attr_types.items())),
            "injected_attrs": sorted(self.injected_attrs),
            "methods": sorted(self.methods),
            "accesses": [a.as_dict() for a in self.accesses],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ClassModel":
        return cls(
            name=str(raw["name"]), module=str(raw["module"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            locks={str(k): LockDecl.from_dict(v)
                   for k, v in _dict_items(raw.get("locks"))},
            guarded_by={str(k): str(v)
                        for k, v in _dict_items(raw.get("guarded_by"))},
            external_guards={str(k): str(v) for k, v
                             in _dict_items(raw.get("external_guards"))},
            mutable_attrs={str(k): int(v) for k, v  # type: ignore[arg-type]
                           in _dict_items(raw.get("mutable_attrs"))},
            attr_types={str(k): str(v)
                        for k, v in _dict_items(raw.get("attr_types"))},
            injected_attrs=set(_str_list(raw.get("injected_attrs"))),
            methods=set(_str_list(raw.get("methods"))),
            accesses=[AttrAccess.from_dict(a)
                      for a in _list_items(raw.get("accesses"))])


@dataclass
class CallUnderLocks:
    """One call site with the lexically held lock set."""

    written: str
    line: int
    col: int
    locks: FrozenSet[str]

    def as_dict(self) -> Dict[str, object]:
        return {"written": self.written, "line": self.line, "col": self.col,
                "locks": sorted(self.locks)}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "CallUnderLocks":
        return cls(written=str(raw["written"]), line=int(raw["line"]),  # type: ignore[arg-type]
                   col=int(raw["col"]),  # type: ignore[arg-type]
                   locks=frozenset(_str_list(raw.get("locks"))))


@dataclass
class AcquireEvent:
    """One lock acquisition with the locks already held at that point."""

    node: str
    line: int
    col: int
    held: FrozenSet[str]

    def as_dict(self) -> Dict[str, object]:
        return {"node": self.node, "line": self.line, "col": self.col,
                "held": sorted(self.held)}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "AcquireEvent":
        return cls(node=str(raw["node"]), line=int(raw["line"]),  # type: ignore[arg-type]
                   col=int(raw["col"]),  # type: ignore[arg-type]
                   held=frozenset(_str_list(raw.get("held"))))


@dataclass
class GlobalWrite:
    """One mutation of module-level state inside a function."""

    target: str
    line: int
    col: int
    locks: FrozenSet[str]

    def as_dict(self) -> Dict[str, object]:
        return {"target": self.target, "line": self.line, "col": self.col,
                "locks": sorted(self.locks)}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "GlobalWrite":
        return cls(target=str(raw["target"]), line=int(raw["line"]),  # type: ignore[arg-type]
                   col=int(raw["col"]),  # type: ignore[arg-type]
                   locks=frozenset(_str_list(raw.get("locks"))))


@dataclass
class SpawnSite:
    """One place where a callable escapes to another thread/worker."""

    kind: str            # "thread" | "submit" | "parallel_map" | "supervisor"
    target: str          # written dotted name of the escaping callable
    function: str        # qualname of the spawning function
    line: int
    col: int

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "target": self.target,
                "function": self.function, "line": self.line,
                "col": self.col}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "SpawnSite":
        return cls(kind=str(raw["kind"]), target=str(raw["target"]),
                   function=str(raw["function"]),
                   line=int(raw["line"]), col=int(raw["col"]))  # type: ignore[arg-type]


@dataclass
class FunctionModel:
    """Concurrency-relevant digest of one function or method."""

    qualname: str
    module: str
    line: int
    cls: Optional[str] = None
    params: List[str] = field(default_factory=list)
    acquires: List[AcquireEvent] = field(default_factory=list)
    calls: List[CallUnderLocks] = field(default_factory=list)
    global_writes: List[GlobalWrite] = field(default_factory=list)
    local_types: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname, "module": self.module,
            "line": self.line, "cls": self.cls, "params": list(self.params),
            "acquires": [a.as_dict() for a in self.acquires],
            "calls": [c.as_dict() for c in self.calls],
            "global_writes": [w.as_dict() for w in self.global_writes],
            "local_types": dict(sorted(self.local_types.items())),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FunctionModel":
        class_name = raw.get("cls")
        return cls(
            qualname=str(raw["qualname"]), module=str(raw["module"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            cls=None if class_name is None else str(class_name),
            params=_str_list(raw.get("params")),
            acquires=[AcquireEvent.from_dict(a)
                      for a in _list_items(raw.get("acquires"))],
            calls=[CallUnderLocks.from_dict(c)
                   for c in _list_items(raw.get("calls"))],
            global_writes=[GlobalWrite.from_dict(w)
                           for w in _list_items(raw.get("global_writes"))],
            local_types={str(k): str(v)
                         for k, v in _dict_items(raw.get("local_types"))})


@dataclass
class ModuleConcurrency:
    """Everything the CONC rules need about one module."""

    module: str
    display: str
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    module_locks: Dict[str, LockDecl] = field(default_factory=dict)
    module_names: Set[str] = field(default_factory=set)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    global_types: Dict[str, str] = field(default_factory=dict)
    spawns: List[SpawnSite] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON form for the incremental cache (pure content digest)."""
        return {
            "module": self.module, "display": self.display,
            "classes": {k: v.as_dict()
                        for k, v in sorted(self.classes.items())},
            "functions": {k: v.as_dict()
                          for k, v in sorted(self.functions.items())},
            "module_locks": {k: v.as_dict()
                             for k, v in sorted(self.module_locks.items())},
            "module_names": sorted(self.module_names),
            "mutable_globals": dict(sorted(self.mutable_globals.items())),
            "global_types": dict(sorted(self.global_types.items())),
            "spawns": [s.as_dict() for s in self.spawns],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ModuleConcurrency":
        return cls(
            module=str(raw["module"]), display=str(raw["display"]),
            classes={str(k): ClassModel.from_dict(v)
                     for k, v in _dict_items(raw.get("classes"))},
            functions={str(k): FunctionModel.from_dict(v)
                       for k, v in _dict_items(raw.get("functions"))},
            module_locks={str(k): LockDecl.from_dict(v)
                          for k, v in _dict_items(raw.get("module_locks"))},
            module_names=set(_str_list(raw.get("module_names"))),
            mutable_globals={str(k): int(v) for k, v  # type: ignore[arg-type]
                             in _dict_items(raw.get("mutable_globals"))},
            global_types={str(k): str(v)
                          for k, v in _dict_items(raw.get("global_types"))},
            spawns=[SpawnSite.from_dict(s)
                    for s in _list_items(raw.get("spawns"))])


def _str_list(raw: object) -> List[str]:
    if not isinstance(raw, list):
        return []
    return [str(item) for item in raw]


def _list_items(raw: object) -> List[Dict[str, object]]:
    if not isinstance(raw, list):
        return []
    return [item for item in raw if isinstance(item, dict)]


def _dict_items(raw: object) -> List[Tuple[object, object]]:
    if not isinstance(raw, dict):
        return []
    return list(raw.items())


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _ctor_name(summary: ModuleSummary, value: ast.expr) -> Optional[str]:
    """Canonical dotted name of the constructor called by ``value``.

    Sees through a conditional expression (``a if p else B()``) because
    dependency-injection idioms wrap the default construction that way.
    """
    if isinstance(value, ast.IfExp):
        return (_ctor_name(summary, value.body)
                or _ctor_name(summary, value.orelse))
    if not isinstance(value, ast.Call):
        return None
    written = dotted_name(value.func)
    if written is None:
        return None
    return canonical_name(summary, written)


def _lock_kind(canonical: Optional[str]) -> Optional[str]:
    if canonical is None:
        return None
    kind = _LOCK_CTORS.get(canonical)
    if kind is not None:
        return kind
    return _LOCK_CTOR_TAILS.get(canonical.split(".")[-1])


def _registry_type(value: ast.expr) -> Optional[str]:
    """Type of ``get_metrics().counter(...)``-style instrument globals."""
    if not (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Call)):
        return None
    inner = dotted_name(value.func.value.func)
    if inner is None:
        return None
    table = _RETURN_TYPES.get(inner.split(".")[-1])
    if table is None:
        return None
    return table.get(value.func.attr)


def _is_mutable_value(summary: ModuleSummary, value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        written = dotted_name(value.func)
        if written is not None:
            return written.split(".")[-1] in _MUTABLE_CTORS
    return False


def _root_name(node: ast.expr) -> Optional[str]:
    """Leftmost plain name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _guard_annotations(lines: Sequence[str]) -> Dict[int, str]:
    """line number -> declared guard for every annotated source line."""
    table: Dict[int, str] = {}
    for index, text in enumerate(lines, start=1):
        match = GUARDED_BY.search(text)
        if match is not None:
            table[index] = match.group("lock")
    return table


class _FunctionScanner:
    """Walks one function body tracking the lexically held lock set."""

    def __init__(self, mc: ModuleConcurrency, summary: ModuleSummary,
                 fn: FunctionModel, cls: Optional[ClassModel]) -> None:
        self.mc = mc
        self.summary = summary
        self.fn = fn
        self.cls = cls
        self.locals: Set[str] = set(fn.params)
        self.globals_declared: Set[str] = set()

    # -- lock identity --------------------------------------------------
    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        """Graph node id of the lock object ``expr`` names, if any."""
        written = dotted_name(expr)
        if written is None:
            return None
        if written.startswith("self.") and self.cls is not None:
            attr = written[len("self."):]
            decl = self.cls.locks.get(attr)
            if decl is not None:
                return decl.alias_of or decl.node
            return None
        if written in self.mc.module_locks and written not in self.locals:
            decl = self.mc.module_locks[written]
            return decl.alias_of or decl.node
        return None

    # -- pre-pass: local names ------------------------------------------
    def collect_locals(self, node: ast.AST) -> None:
        """Names assigned anywhere in the function (nested scopes included
        — conservative: shadowed names never count as module globals)."""
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                self.globals_declared.update(inner.names)
            elif isinstance(inner, ast.Name) \
                    and isinstance(inner.ctx, ast.Store):
                self.locals.add(inner.id)
        self.locals -= self.globals_declared
        # Local constructor types, for one-hop method resolution.
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1 \
                    and isinstance(inner.targets[0], ast.Name):
                ctor = _ctor_name(self.summary, inner.value)
                if ctor is not None:
                    self.fn.local_types[inner.targets[0].id] = \
                        ctor.split(".")[-1]

    # -- the walk -------------------------------------------------------
    def scan(self, body: Sequence[ast.stmt],
             held: FrozenSet[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scope: analyzed separately, if at all
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                for item in stmt.items:
                    self._scan_expr(item.context_expr, held)
                    node = self._lock_of(item.context_expr)
                    if node is not None:
                        self.fn.acquires.append(AcquireEvent(
                            node, stmt.lineno, stmt.col_offset, held))
                        acquired.append(node)
                self.scan(stmt.body, held | frozenset(acquired))
                continue
            for expr in self._own_expressions(stmt):
                self._scan_expr(expr, held)
            self._scan_stores(stmt, held)
            for child in self._child_bodies(stmt):
                self.scan(child, held)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> Iterable[Sequence[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            child = getattr(stmt, name, None)
            if child:
                yield child
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    @staticmethod
    def _own_expressions(stmt: ast.stmt) -> Iterable[ast.expr]:
        """Expression roots belonging to ``stmt`` itself (not sub-blocks)."""
        for name, value in ast.iter_fields(stmt):
            if name in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        yield item

    def _scan_expr(self, expr: ast.expr, held: FrozenSet[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                self._record_call(node, held)
            elif isinstance(node, ast.Attribute):
                self._record_attr(node, held, write=not isinstance(
                    node.ctx, ast.Load))

    def _record_attr(self, node: ast.Attribute, held: FrozenSet[str],
                     write: bool) -> None:
        if self.cls is None or not isinstance(node.value, ast.Name) \
                or node.value.id != "self":
            return
        self.cls.accesses.append(AttrAccess(
            attr=node.attr, method=self.fn.qualname, line=node.lineno,
            col=node.col_offset, write=write, locks=held))

    def _record_call(self, node: ast.Call, held: FrozenSet[str]) -> None:
        written = dotted_name(node.func)
        if written is None:
            return
        self.fn.calls.append(CallUnderLocks(
            written, node.lineno, node.col_offset, held))
        canonical = canonical_name(self.summary, written)
        tail = canonical.split(".")[-1]
        # Explicit acquire() counts as an ordering event (no region).
        if tail == "acquire" and "." in written:
            node_id = self._lock_of(
                node.func.value if isinstance(node.func, ast.Attribute)
                else node.func)
            if node_id is not None:
                self.fn.acquires.append(AcquireEvent(
                    node_id, node.lineno, node.col_offset, held))
        # Mutating method on a mutable module global.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_TAILS:
            root = _root_name(node.func.value)
            if root is not None and root not in self.locals \
                    and root in self.mc.mutable_globals:
                self.fn.global_writes.append(GlobalWrite(
                    f"{root}.{node.func.attr}()", node.lineno,
                    node.col_offset, held))
        # Spawn sites.
        self._record_spawn(node, canonical, held)

    def _record_spawn(self, node: ast.Call, canonical: str,
                      held: FrozenSet[str]) -> None:
        tail = canonical.split(".")[-1]
        target: Optional[ast.expr] = None
        kind: Optional[str] = None
        if tail == "Thread" and (canonical.startswith("threading.")
                                 or canonical == "Thread"):
            kind = "thread"
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = keyword.value
        elif tail == "parallel_map":
            kind = "parallel_map"
            target = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    target = keyword.value
        elif tail == "submit" and isinstance(node.func, ast.Attribute):
            kind = "submit"
            target = node.args[0] if node.args else None
        elif tail == "WorkerSupervisor":
            kind = "supervisor"
            target = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = keyword.value
        if kind is None or target is None:
            return
        written = dotted_name(target)
        if written is None:
            return
        self.mc.spawns.append(SpawnSite(kind, written, self.fn.qualname,
                                        node.lineno, node.col_offset))

    def _scan_stores(self, stmt: ast.stmt, held: FrozenSet[str]) -> None:
        """Module-global mutations through assignment statements."""
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
                continue
            if isinstance(target, ast.Name):
                if target.id in self.globals_declared:
                    self.fn.global_writes.append(GlobalWrite(
                        target.id, stmt.lineno, stmt.col_offset, held))
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root == "self" or root is None:
                    continue
                if root not in self.locals and root in self.mc.module_names:
                    suffix = "[...]" if isinstance(target, ast.Subscript) \
                        else f".{target.attr}"
                    self.fn.global_writes.append(GlobalWrite(
                        f"{root}{suffix}", stmt.lineno, stmt.col_offset,
                        held))


def extract_module_concurrency(summary: ModuleSummary, tree: ast.Module,
                               lines: Sequence[str],
                               display: str) -> ModuleConcurrency:
    """Build the per-module concurrency model from a parsed tree."""
    mc = ModuleConcurrency(module=summary.module, display=display)
    guards = _guard_annotations(lines)
    # Module-level names, locks, mutable globals, instrument types.
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            mc.module_names.add(stmt.name)
            continue
        if isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            names = [stmt.target.id] if stmt.value is not None else []
        else:
            continue
        value = stmt.value
        assert value is not None
        for name in names:
            mc.module_names.add(name)
            kind = _lock_kind(_ctor_name(summary, value))
            if kind is not None:
                mc.module_locks[name] = LockDecl(
                    node=f"{summary.module}.{name}", kind=kind,
                    line=stmt.lineno)
                continue
            if _is_mutable_value(summary, value):
                mc.mutable_globals[name] = stmt.lineno
            instrument = _registry_type(value)
            ctor = _ctor_name(summary, value)
            if instrument is not None:
                mc.global_types[name] = instrument
            elif ctor is not None:
                mc.global_types[name] = ctor.split(".")[-1]
    # Classes.
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            mc.classes[stmt.name] = _extract_class(
                summary, mc, stmt, guards)
    # Functions (top-level and methods).
    for qualname, node, cls_name in _function_defs(tree):
        cls = mc.classes.get(cls_name) if cls_name else None
        fn = FunctionModel(
            qualname=qualname, module=summary.module, line=node.lineno,
            cls=cls_name,
            params=[a.arg for a in (node.args.posonlyargs + node.args.args
                                    + node.args.kwonlyargs)
                    if a.arg != "self"])
        scanner = _FunctionScanner(mc, summary, fn, cls)
        scanner.collect_locals(node)
        held: FrozenSet[str] = frozenset()
        if cls is not None and qualname.split(".")[-1].endswith("_locked"):
            held = frozenset(cls.lock_nodes())
        scanner.scan(node.body, held)
        mc.functions[qualname] = fn
    return mc


def _function_defs(tree: ast.Module
                   ) -> Iterable[Tuple[str, ast.FunctionDef, Optional[str]]]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item, node.name


def _extract_class(summary: ModuleSummary, mc: ModuleConcurrency,
                   node: ast.ClassDef,
                   guards: Dict[int, str]) -> ClassModel:
    model = ClassModel(name=node.name, module=summary.module,
                       line=node.lineno)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods.add(item.name)
    init = next((item for item in node.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name in ("__init__", "__post_init__")), None)
    init_params = set()
    if init is not None:
        init_params = {a.arg for a in (init.args.posonlyargs
                                       + init.args.args
                                       + init.args.kwonlyargs)
                       if a.arg != "self"}
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                self_line = stmt.lineno
                kind = _lock_kind(_ctor_name(summary, value))
                if kind is not None:
                    alias = None
                    if kind == "Condition" and isinstance(value, ast.Call) \
                            and value.args:
                        aliased = dotted_name(value.args[0])
                        if aliased is not None \
                                and aliased.startswith("self."):
                            alias = (f"{node.name}."
                                     f"{aliased[len('self.'):]}")
                    model.locks[attr] = LockDecl(
                        node=f"{node.name}.{attr}", kind=kind,
                        line=self_line, alias_of=alias)
                if _is_mutable_value(summary, value):
                    model.mutable_attrs[attr] = self_line
                ctor = _ctor_name(summary, value)
                instrument = _registry_type(value)
                if instrument is not None:
                    model.attr_types[attr] = instrument
                elif ctor is not None:
                    model.attr_types[attr] = ctor.split(".")[-1]
                if isinstance(value, ast.Name) and value.id in init_params:
                    model.injected_attrs.add(attr)
                # A multi-line initializer may carry the annotation on any
                # of its physical lines (commonly the closing brace).
                guard = None
                last = getattr(stmt, "end_lineno", None) or self_line
                for line in range(self_line, last + 1):
                    guard = guards.get(line)
                    if guard is not None:
                        break
                if guard is not None:
                    if "." in guard:
                        model.external_guards[attr] = guard
                    else:
                        model.guarded_by[attr] = guard
    # Dataclass-style annotated fields can carry guard comments too.
    for item in node.body:
        if isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name):
            guard = guards.get(item.lineno)
            if guard is not None:
                if "." in guard:
                    model.external_guards[item.target.id] = guard
                else:
                    model.guarded_by[item.target.id] = guard
    return model


# ----------------------------------------------------------------------
# Cross-module resolution
# ----------------------------------------------------------------------
class _Project:
    """Index of every module's concurrency model plus call resolution."""

    def __init__(self, table: SymbolTable,
                 modules: Dict[str, ModuleConcurrency]) -> None:
        self.table = table
        self.modules = modules
        self.class_index: Dict[str, Tuple[str, ClassModel]] = {}
        for module, mc in modules.items():
            for name, cls in mc.classes.items():
                self.class_index.setdefault(name, (module, cls))
        self._acquire_memo: Dict[Tuple[str, str], FrozenSet[str]] = {}

    def function(self, module: str, qualname: str
                 ) -> Optional[FunctionModel]:
        mc = self.modules.get(module)
        return mc.functions.get(qualname) if mc else None

    # -- call resolution ------------------------------------------------
    def resolve_call(self, module: str, fn: FunctionModel,
                     written: str) -> Optional[Tuple[str, str]]:
        """``(module, qualname)`` of the callee, when resolvable."""
        mc = self.modules.get(module)
        if mc is None:
            return None
        if written.startswith("self."):
            rest = written[len("self."):]
            if fn.cls is None:
                return None
            cls = mc.classes.get(fn.cls)
            if cls is None:
                return None
            if "." not in rest:
                if rest in cls.methods:
                    return module, f"{fn.cls}.{rest}"
                return None
            attr, _, meth = rest.partition(".")
            if "." in meth:
                return None
            return self._method_of(cls.attr_types.get(attr), meth)
        head, _, rest = written.partition(".")
        if head in fn.local_types and rest and "." not in rest:
            return self._method_of(fn.local_types[head], rest)
        if head in mc.global_types and rest and "." not in rest:
            return self._method_of(mc.global_types[head], rest)
        resolved = self.table.resolve(module, written)
        if resolved is not None:
            target_module, symbol = resolved
            if self.function(target_module, symbol) is not None:
                return target_module, symbol
        # Constructor call -> __init__ of a known class.
        summary = self.table.module(module)
        if summary is not None:
            canonical = canonical_name(summary, written)
            tail = canonical.split(".")[-1]
            entry = self.class_index.get(tail)
            if entry is not None:
                target_module, cls = entry
                if "__init__" in cls.methods:
                    return target_module, f"{cls.name}.__init__"
        return None

    def _method_of(self, type_name: Optional[str],
                   method: str) -> Optional[Tuple[str, str]]:
        if type_name is None:
            return None
        entry = self.class_index.get(type_name)
        if entry is None:
            return None
        module, cls = entry
        if method in cls.methods:
            return module, f"{cls.name}.{method}"
        return None

    # -- transitive acquires --------------------------------------------
    def transitive_acquires(self, module: str,
                            qualname: str) -> FrozenSet[str]:
        """Every lock node the function may acquire, transitively."""
        key = (module, qualname)
        memo = self._acquire_memo.get(key)
        if memo is not None:
            return memo
        self._acquire_memo[key] = frozenset()  # cycle guard
        acquired: Set[str] = set()
        seen: Set[Tuple[str, str]] = set()
        stack = [key]
        while stack and len(seen) < _CLOSURE_CAP:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = self.function(*current)
            if fn is None:
                continue
            acquired.update(event.node for event in fn.acquires)
            for call in fn.calls:
                callee = self.resolve_call(current[0], fn, call.written)
                if callee is not None and callee not in seen:
                    stack.append(callee)
        result = frozenset(acquired)
        self._acquire_memo[key] = result
        return result


# ----------------------------------------------------------------------
# The lock-order graph
# ----------------------------------------------------------------------
@dataclass
class LockGraph:
    """Global acquisition-order graph over stable lock node ids."""

    #: node id -> (kind, defining module)
    locks: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: (outer, inner) -> (module, display, qualname, line, col) first site
    edges: Dict[Tuple[str, str],
                Tuple[str, str, str, int, int]] = field(default_factory=dict)

    def successors(self, node: str) -> List[str]:
        return [inner for outer, inner in self.edges if outer == node]

    def cycle_path(self, start: str, goal: str) -> Optional[List[str]]:
        """A path ``start -> ... -> goal`` through the edges, if any."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        visited: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in visited:
                continue
            visited.add(node)
            for nxt in sorted(self.successors(node)):
                stack.append((nxt, path + [nxt]))
        return None

    def dump(self) -> str:
        """Stable text rendering (no line numbers, so goldens survive
        unrelated edits)."""
        lines = [f"lock-graph: {len(self.locks)} lock(s), "
                 f"{len(self.edges)} edge(s)"]
        for node in sorted(self.locks):
            kind, module = self.locks[node]
            lines.append(f"lock {node} ({kind}) defined-in {module}")
        for (outer, inner) in sorted(self.edges):
            module, _, qualname, _, _ = self.edges[(outer, inner)]
            lines.append(f"edge {outer} -> {inner} "
                         f"via {module}:{qualname}")
        return "\n".join(lines)


def _build_graph(project: _Project) -> LockGraph:
    graph = LockGraph()
    for module, mc in project.modules.items():
        for cls in mc.classes.values():
            for decl in cls.locks.values():
                if decl.alias_of is None:
                    graph.locks[decl.node] = (decl.kind, module)
        for decl in mc.module_locks.values():
            if decl.alias_of is None:
                graph.locks[decl.node] = (decl.kind, module)
    for module, mc in project.modules.items():
        for fn in mc.functions.values():
            for event in fn.acquires:
                for outer in event.held:
                    if outer != event.node:
                        graph.edges.setdefault(
                            (outer, event.node),
                            (module, mc.display, fn.qualname,
                             event.line, event.col))
            for call in fn.calls:
                if not call.locks:
                    continue
                callee = project.resolve_call(module, fn, call.written)
                if callee is None:
                    continue
                for inner in project.transitive_acquires(*callee):
                    for outer in call.locks:
                        if outer != inner:
                            graph.edges.setdefault(
                                (outer, inner),
                                (module, mc.display, fn.qualname,
                                 call.line, call.col))
    return graph


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _finding(rule: str, severity: str, display: str, line: int, col: int,
             message: str, lines: Optional[Sequence[str]] = None) -> Finding:
    snippet = ""
    if lines and 1 <= line <= len(lines):
        snippet = lines[line - 1].strip()
    return Finding(rule=rule, severity=severity, path=display, line=line,
                   col=col, message=message, snippet=snippet)


def _check_lock_order(project: _Project, graph: LockGraph,
                      sources: Dict[str, Sequence[str]]) -> List[Finding]:
    """LOCK001: every edge that participates in a cycle."""
    findings: List[Finding] = []
    for (outer, inner), site in sorted(graph.edges.items()):
        if outer == inner:
            continue
        back = graph.cycle_path(inner, outer)
        if back is None:
            continue
        module, display, qualname, line, col = site
        cycle = " -> ".join([outer] + back)
        findings.append(_finding(
            "LOCK001", SEVERITY_ERROR, display, line, col,
            f"lock-order cycle: {qualname} acquires {inner} while "
            f"holding {outer}, closing the cycle {cycle}",
            sources.get(module)))
    return findings


def _check_callbacks_under_lock(
        project: _Project,
        sources: Dict[str, Sequence[str]]) -> List[Finding]:
    """LOCK002: injected callables invoked while a lock is held."""
    findings: List[Finding] = []
    for module, mc in sorted(project.modules.items()):
        lines = sources.get(module)
        for fn in mc.functions.values():
            cls = mc.classes.get(fn.cls) if fn.cls else None
            for call in fn.calls:
                if not call.locks:
                    continue
                injected = None
                if call.written in fn.params:
                    injected = f"parameter {call.written!r}"
                elif cls is not None and call.written.startswith("self."):
                    attr = call.written[len("self."):]
                    if "." not in attr and attr in cls.injected_attrs:
                        injected = f"injected attribute 'self.{attr}'"
                if injected is None:
                    continue
                held = ", ".join(sorted(call.locks))
                findings.append(_finding(
                    "LOCK002", SEVERITY_WARNING, mc.display, call.line,
                    call.col,
                    f"{fn.qualname} calls {injected} while holding "
                    f"{held}; callbacks under a lock re-enter user code "
                    f"with the lock held", lines))
    return findings


def _check_guarded_by(project: _Project,
                      sources: Dict[str, Sequence[str]]) -> List[Finding]:
    """GUARD001: annotated and inferred guard escapes."""
    findings: List[Finding] = []
    exempt = ("__init__", "__post_init__", "__del__")
    for module, mc in sorted(project.modules.items()):
        lines = sources.get(module)
        for cls in mc.classes.values():
            lock_nodes = cls.lock_nodes()
            # Annotated attributes: every off-guard access is an error.
            for attr, lock_attr in sorted(cls.guarded_by.items()):
                decl = cls.locks.get(lock_attr)
                if decl is None:
                    findings.append(_finding(
                        "GUARD001", SEVERITY_ERROR, mc.display, cls.line, 0,
                        f"{cls.name}.{attr} declares guard {lock_attr!r} "
                        f"but {cls.name} has no such lock attribute",
                        lines))
                    continue
                guard = decl.alias_of or decl.node
                for access in cls.accesses:
                    if access.attr != attr:
                        continue
                    method = access.method.split(".")[-1]
                    if method in exempt or method.endswith("_locked"):
                        continue
                    if guard not in access.locks:
                        kind = "written" if access.write else "read"
                        findings.append(_finding(
                            "GUARD001", SEVERITY_ERROR, mc.display,
                            access.line, access.col,
                            f"{cls.name}.{attr} is guarded by {guard} "
                            f"but {kind} in {access.method} without it",
                            lines))
            # Calls to *_locked methods made without the class lock.
            for fn in mc.functions.values():
                if fn.cls != cls.name:
                    continue
                for call in fn.calls:
                    if not call.written.startswith("self."):
                        continue
                    target = call.written[len("self."):]
                    if "." in target or not target.endswith("_locked") \
                            or target not in cls.methods:
                        continue
                    if lock_nodes and not (set(call.locks) & lock_nodes):
                        findings.append(_finding(
                            "GUARD001", SEVERITY_WARNING, mc.display,
                            call.line, call.col,
                            f"{fn.qualname} calls self.{target}() without "
                            f"holding {', '.join(sorted(lock_nodes))} — "
                            f"the _locked suffix promises the caller "
                            f"holds the lock", lines))
            # Inference for unannotated mutable attributes.
            covered = set(cls.guarded_by) | set(cls.external_guards)
            for attr in sorted(set(cls.mutable_attrs) - covered):
                guarded: Dict[str, int] = {}
                unguarded: List[AttrAccess] = []
                for access in cls.accesses:
                    if access.attr != attr:
                        continue
                    method = access.method.split(".")[-1]
                    if method in exempt or method.endswith("_locked"):
                        continue
                    if len(access.locks) >= 1:
                        for node in access.locks:
                            guarded[node] = guarded.get(node, 0) + 1
                    else:
                        unguarded.append(access)
                dominant = [node for node, count in guarded.items()
                            if count >= 2]
                if len(dominant) == 1 and unguarded:
                    access = unguarded[0]
                    kind = "written" if access.write else "read"
                    findings.append(_finding(
                        "GUARD001", SEVERITY_WARNING, mc.display,
                        access.line, access.col,
                        f"{cls.name}.{attr} is {kind} in {access.method} "
                        f"without {dominant[0]}, which guards its other "
                        f"{guarded[dominant[0]]} access(es) — annotate "
                        f"with '# repro-guarded-by: ...' or take the "
                        f"lock", lines))
    return findings


def _resolve_spawn_target(project: _Project, module: str,
                          spawn: SpawnSite) -> Optional[Tuple[str, str]]:
    mc = project.modules[module]
    fn = mc.functions.get(spawn.function)
    if fn is None:
        return None
    return project.resolve_call(module, fn, spawn.target)


def _check_thread_escape(project: _Project,
                         sources: Dict[str, Sequence[str]]) -> List[Finding]:
    """ESCAPE001: unguarded module-state mutation on a thread path."""
    roots: List[Tuple[Tuple[str, str], SpawnSite, str]] = []
    for module, mc in sorted(project.modules.items()):
        for spawn in mc.spawns:
            resolved = _resolve_spawn_target(project, module, spawn)
            if resolved is not None:
                roots.append((resolved, spawn, module))
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, int]] = set()
    for root, spawn, spawn_module in roots:
        seen: Set[Tuple[str, str]] = set()
        stack = [root]
        while stack and len(seen) < _CLOSURE_CAP:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = project.function(*current)
            if fn is None:
                continue
            mc = project.modules[current[0]]
            lines = sources.get(current[0])
            for write in fn.global_writes:
                if write.locks:
                    continue
                site = (mc.display, write.line, write.col)
                if site in reported:
                    continue
                reported.add(site)
                findings.append(_finding(
                    "ESCAPE001", SEVERITY_ERROR, mc.display, write.line,
                    write.col,
                    f"{fn.qualname} mutates module-level state "
                    f"({write.target}) without a lock, and it is "
                    f"reachable from the {spawn.kind} spawn of "
                    f"{root[1]} at {spawn_module}:{spawn.line}", lines))
            for call in fn.calls:
                callee = project.resolve_call(current[0], fn, call.written)
                if callee is not None and callee not in seen:
                    stack.append(callee)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_concurrency(table: SymbolTable,
                    trees: Dict[str, ast.Module],
                    sources: Dict[str, Sequence[str]],
                    displays: Dict[str, str]
                    ) -> Tuple[List[Finding], LockGraph]:
    """Run the CONC pack over parsed modules; returns findings + graph.

    ``trees``/``sources``/``displays`` map module names to their parsed
    AST, source lines and display path.  ``table`` supplies import-alias
    resolution (it may know more modules than the tree set; only modules
    with trees are analyzed).
    """
    modules: Dict[str, ModuleConcurrency] = {}
    for module, tree in trees.items():
        summary = table.module(module)
        if summary is None:
            continue
        modules[module] = extract_module_concurrency(
            summary, tree, sources.get(module, ()), displays[module])
    return run_concurrency_models(table, modules, sources)


def run_concurrency_models(table: SymbolTable,
                           modules: Dict[str, ModuleConcurrency],
                           sources: Dict[str, Sequence[str]]
                           ) -> Tuple[List[Finding], LockGraph]:
    """Whole-program CONC rules over pre-extracted per-module models.

    Extraction (:func:`extract_module_concurrency`) is a pure function of
    one module's content, so models may come from the incremental cache;
    the *rules* are whole-program (one new edge anywhere can close a
    LOCK001 cycle in unchanged modules) and always run over the full set.
    """
    project = _Project(table, modules)
    graph = _build_graph(project)
    findings: List[Finding] = []
    findings.extend(_check_lock_order(project, graph, sources))
    findings.extend(_check_callbacks_under_lock(project, sources))
    findings.extend(_check_guarded_by(project, sources))
    findings.extend(_check_thread_escape(project, sources))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, graph


def build_lock_graph(files: Sequence[str]) -> LockGraph:
    """Standalone lock-order graph over a set of Python files.

    The entry point for goldens and the watchdog cross-check: parses the
    files, builds summaries and the concurrency models, and returns the
    graph without running the finding rules.
    """
    from .engine import display_path, module_name, python_files
    from .symbols import summarize_module

    trees: Dict[str, ast.Module] = {}
    sources: Dict[str, Sequence[str]] = {}
    displays: Dict[str, str] = {}
    summaries: Dict[str, ModuleSummary] = {}
    for path in python_files(files):
        module = module_name(path)
        if not module:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, UnicodeDecodeError, SyntaxError, ValueError):
            continue
        lines = source.splitlines()
        display = display_path(path)
        trees[module] = tree
        sources[module] = lines
        displays[module] = display
        summaries[module] = summarize_module(
            module, display, tree, lines,
            is_package=path.endswith("__init__.py"))
    table = SymbolTable(summaries)
    modules = {module: extract_module_concurrency(
        summaries[module], tree, sources[module], displays[module])
        for module, tree in trees.items()}
    return _build_graph(_Project(table, modules))


def dump_lock_graph(files: Sequence[str]) -> str:
    """Stable text dump of :func:`build_lock_graph` (golden-friendly)."""
    return build_lock_graph(files).dump()


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
CONC_RULE_CATALOGUE: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo("LOCK001", "lock-order-cycle", "error",
                 "two locks are acquired in contradictory orders "
                 "(potential deadlock)"),
    DeepRuleInfo("LOCK002", "callback-under-lock", "warning",
                 "injected callable invoked while a lock is held"),
    DeepRuleInfo("GUARD001", "guard-escape", "error",
                 "attribute accessed outside its repro-guarded-by (or "
                 "inferred) lock"),
    DeepRuleInfo("ESCAPE001", "thread-escape", "error",
                 "module state mutated without a lock on a "
                 "thread-reachable path"),
)

CONC_RULE_NAMES: Tuple[str, ...] = tuple(
    info.name for info in CONC_RULE_CATALOGUE)
