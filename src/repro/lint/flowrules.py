"""FLOW rule pack: dataflow/callgraph findings over the deep tier.

Three rules, all built on the CFG (:mod:`.cfg`), the dataflow engine
(:mod:`.dataflow`) and the project symbol table (:mod:`.symbols`):

**FLOW001 — RNG reaching a parallel task.**  Two shapes:

* *interprocedural*: the task function handed to ``parallel_map`` —
  resolved through aliased imports and re-exports, across module
  boundaries — reaches (transitively, through the call graph) a call that
  creates unseeded or process-global NumPy RNG state.  This supersedes
  PAR001's local-only view: PAR001 sees a lambda in the same file, FLOW001
  sees ``parallel_map(fn=sim.label_net, ...)`` calling into a helper three
  modules away that does ``np.random.default_rng()``.
* *local taint*: a ``Generator`` constructed in the calling function flows
  (through assignments) into the ``parallel_map`` call itself — a shared
  generator shipped to workers, which makes results depend on the
  item→worker assignment even when seeded.  Per-task streams must come
  from ``SeedSequence.spawn`` material instead.

**FLOW002 — resource with a close-skipping path.**  A ``Span``/pool/file
object bound to a local has a CFG path from its creation to a *normal*
function exit with no ``close()``/``with`` on that path.  Escaping values
(returned, stored on an object, passed to another call) transfer ownership
and are not reported; pure exception paths are also ignored — ``with`` is
still better, but the rule only claims what the CFG proves.

**FLOW003 — taxonomy error raised without provenance.**  A
:mod:`repro.robustness.errors` exception is raised with no ``net=``,
``design=``, ``sink=``, ``stage=`` or ``tier=`` keyword reaching the raise
site — including when the error object was constructed earlier and raised
later (resolved through reaching definitions).  ``WorkerError`` is exempt
(it defaults its own ``stage``), as is re-raising a caught exception.

**FLOW004 — anonymous error where provenance is in scope.**  A bare
``ValueError``/``RuntimeError``/``TypeError`` raised inside a function
that receives a ``net`` or ``design`` parameter: the provenance the
taxonomy exists to carry was right there and got dropped.  Functions
without such a parameter are not flagged — constructor/config validation
with plain ``ValueError`` stays idiomatic.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, display_chain
from .cfg import CFG, Block, EDGE_NORMAL, function_cfgs, is_control
from .dataflow import (Env, ReachingDefinitions, TaintAnalysis, block_envs,
                       run_forward, statement_expressions)
from .engine import Finding, SEVERITY_ERROR, SEVERITY_WARNING
from .symbols import ModuleSummary, canonical_name, dotted_name

FLOW_RNG_RULE = "FLOW001"
FLOW_RESOURCE_RULE = "FLOW002"
FLOW_PROVENANCE_RULE = "FLOW003"
FLOW_ANONYMOUS_RULE = "FLOW004"

#: Taxonomy exceptions whose raise sites must carry provenance keywords.
#: WorkerError is absent on purpose — its constructor defaults ``stage``.
PROVENANCE_ERRORS = frozenset({
    "EstimationError", "InputError", "NumericalError", "ModelError"})

PROVENANCE_KEYS = frozenset({"net", "design", "sink", "stage", "tier"})

#: Anonymous builtins FLOW004 rejects when provenance is in scope.
ANONYMOUS_ERRORS = frozenset({"ValueError", "RuntimeError", "TypeError"})

#: Parameter names that put provenance in scope for FLOW004.
PROVENANCE_PARAMS = frozenset({"net", "design"})

#: Callable tails treated as resource constructors by FLOW002.
RESOURCE_TAILS = frozenset({
    "open", "span", "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
    "Popen", "popen"})

#: Method tails that release a resource.
CLOSE_TAILS = frozenset({"close", "shutdown", "terminate", "release",
                         "join", "__exit__"})


def _snippet(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


# ----------------------------------------------------------------------
# FLOW001
# ----------------------------------------------------------------------
def check_parallel_rng(summary: ModuleSummary, tree: ast.Module,
                       lines: Sequence[str],
                       graph: CallGraph) -> Iterator[Finding]:
    """FLOW001 findings of one module."""
    yield from _interprocedural_rng(summary, lines, graph)
    yield from _local_rng_taint(summary, tree, lines)


def _interprocedural_rng(summary: ModuleSummary, lines: Sequence[str],
                         graph: CallGraph) -> Iterator[Finding]:
    table = graph.table
    for fn in summary.functions.values():
        for site in fn.parallel_maps:
            if site.task.startswith("<"):
                continue  # PAR001's territory (lambda / non-name exprs)
            resolved = table.resolve(summary.module, site.task)
            if resolved is None:
                continue
            chain = graph.find_path(
                resolved, lambda _node, target: bool(target.rng_sources))
            if chain is None:
                continue
            sink = graph.function(chain[-1])
            assert sink is not None and sink.rng_sources
            source = sink.rng_sources[0]
            yield Finding(
                rule=FLOW_RNG_RULE, severity=SEVERITY_ERROR,
                path=summary.path, line=site.line, col=site.col,
                message=(f"parallel_map task {site.task!r} reaches "
                         f"{source.what}() (line {source.line} of "
                         f"{chain[-1][0].split('.')[-1]} via "
                         f"{display_chain(chain)}); workers must derive "
                         f"RNG from SeedSequence.spawn material in the "
                         f"task item"),
                snippet=_snippet(lines, site.line))


def _local_rng_taint(summary: ModuleSummary, tree: ast.Module,
                     lines: Sequence[str]) -> Iterator[Finding]:
    def is_generator_source(call: ast.Call) -> bool:
        written = dotted_name(call.func)
        if written is None:
            return False
        canonical = canonical_name(summary, written)
        tail = canonical.split(".")[-1]
        if tail in ("default_rng", "RandomState"):
            return True
        return canonical in ("numpy.random.Generator",)

    for name, cfg in function_cfgs(tree):
        fn = summary.functions.get(name)
        if fn is None or not fn.parallel_maps:
            continue
        taint = TaintAnalysis(cfg, is_generator_source)
        pm_lines = {site.line for site in fn.parallel_maps}
        for block in cfg.blocks:
            for stmt, env in block_envs(taint.states, block,
                                        taint._transfer):
                for call in _stmt_calls(stmt):
                    if call.lineno not in pm_lines:
                        continue
                    written = dotted_name(call.func)
                    if written is None \
                            or written.split(".")[-1] != "parallel_map":
                        continue
                    facts = _call_argument_taints(taint, call, env)
                    if not facts:
                        continue
                    source_line = min(fact[1] for fact in facts
                                      if isinstance(fact, tuple))
                    yield Finding(
                        rule=FLOW_RNG_RULE, severity=SEVERITY_ERROR,
                        path=summary.path, line=call.lineno,
                        col=call.col_offset,
                        message=(f"a NumPy Generator constructed at line "
                                 f"{source_line} flows into this "
                                 f"parallel_map call; ship "
                                 f"SeedSequence.spawn children and build "
                                 f"the generator inside the task instead "
                                 f"of sharing one across workers"),
                        snippet=_snippet(lines, call.lineno))


def _call_argument_taints(taint: TaintAnalysis, call: ast.Call,
                          env: Env) -> FrozenSet[object]:
    facts: FrozenSet[object] = frozenset()
    for arg in list(call.args) + [k.value for k in call.keywords]:
        facts |= taint.expr_taints(arg, env)
    return facts


def _stmt_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    if is_control(stmt):
        exprs = statement_expressions(stmt)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    yield node
        return
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# FLOW002
# ----------------------------------------------------------------------
class _ResourceAnalysis:
    """May-analysis: which open resources a local may hold at each point."""

    def __init__(self, summary: ModuleSummary, cfg: CFG) -> None:
        self.summary = summary
        self.cfg = cfg
        self.states = run_forward(cfg, self.transfer)

    def _is_resource_call(self, call: ast.Call) -> bool:
        written = dotted_name(call.func)
        if written is None:
            return False
        canonical = canonical_name(self.summary, written)
        return canonical.split(".")[-1] in RESOURCE_TAILS

    def transfer(self, stmt: ast.stmt, env: Env) -> Env:
        out = dict(env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # `with open(...) as f` manages the resource; `with x:` closes
            # a previously opened one.
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name):
                    out.pop(expr.id, None)
            return out
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for name in _names_in(stmt.value):
                    out.pop(name, None)
            return out
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call) \
                and self._is_resource_call(stmt.value):
            out[stmt.targets[0].id] = frozenset(
                {("open", stmt.value.lineno, stmt.value.col_offset)})
            return out
        # Escapes and closes inside arbitrary statements.
        closed, escaped = self._closes_and_escapes(stmt)
        for name in closed | escaped:
            out.pop(name, None)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
        return out

    @staticmethod
    def _closes_and_escapes(stmt: ast.stmt) -> Tuple[Set[str], Set[str]]:
        closed: Set[str] = set()
        escaped: Set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.attr in CLOSE_TAILS:
                    closed.add(node.func.value.id)
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    escaped.update(_names_in(arg))
            elif isinstance(node, (ast.Attribute, ast.Subscript)) \
                    and isinstance(node.ctx, ast.Store):
                pass
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        escaped.update(_names_in(node.value))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    escaped.update(_names_in(node.value))
        return closed, escaped


def _names_in(expr: ast.expr) -> Set[str]:
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)}


def check_resource_paths(summary: ModuleSummary, tree: ast.Module,
                         lines: Sequence[str]) -> Iterator[Finding]:
    """FLOW002 findings of one module."""
    for name, cfg in function_cfgs(tree):
        analysis = _ResourceAnalysis(summary, cfg)
        preds = cfg.predecessors()
        leaked: Dict[Tuple[int, int], Set[str]] = {}
        reachable = cfg.reachable()
        for pred, kind in preds[cfg.exit]:
            if kind != EDGE_NORMAL or pred not in reachable:
                continue
            _, env_out = analysis.states.get(pred, ({}, {}))
            for var, facts in env_out.items():
                for fact in facts:
                    if isinstance(fact, tuple) and fact[0] == "open":
                        leaked.setdefault((fact[1], fact[2]),
                                          set()).add(var)
        for (line, col), variables in sorted(leaked.items()):
            names = ", ".join(sorted(variables))
            yield Finding(
                rule=FLOW_RESOURCE_RULE, severity=SEVERITY_WARNING,
                path=summary.path, line=line, col=col,
                message=(f"resource bound to {names!r} in {name}() has a "
                         f"path to function exit that never closes it; use "
                         f"a with block (or close on every path)"),
                snippet=_snippet(lines, line))


# ----------------------------------------------------------------------
# FLOW003
# ----------------------------------------------------------------------
def check_raise_provenance(summary: ModuleSummary, tree: ast.Module,
                           lines: Sequence[str]) -> Iterator[Finding]:
    """FLOW003 findings of one module."""
    for name, cfg in function_cfgs(tree):
        rd: Optional[ReachingDefinitions] = None
        for block in cfg.blocks:
            for stmt in block.stmts:
                if not isinstance(stmt, ast.Raise) or stmt.exc is None:
                    continue
                calls: List[ast.Call] = []
                via = ""
                if isinstance(stmt.exc, ast.Call):
                    calls = [stmt.exc]
                elif isinstance(stmt.exc, ast.Name):
                    if rd is None:
                        rd = ReachingDefinitions(cfg)
                    env = _env_at(rd, block, stmt)
                    for site in sorted(env.get(stmt.exc.id, frozenset()),
                                       key=str):
                        value = rd.value_at(stmt.exc.id, site)
                        if isinstance(value, ast.Call):
                            calls.append(value)
                    via = f" (constructed earlier, raised as " \
                          f"{stmt.exc.id!r})"
                for call in calls:
                    problem = _provenance_problem(summary, call)
                    if problem is None:
                        continue
                    yield Finding(
                        rule=FLOW_PROVENANCE_RULE, severity=SEVERITY_ERROR,
                        path=summary.path, line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(f"{problem} raised without provenance"
                                 f"{via}; pass at least one of net=, "
                                 f"design=, sink=, stage=, tier= so the "
                                 f"failure stays traceable"),
                        snippet=_snippet(lines, stmt.lineno))


def check_anonymous_raises(summary: ModuleSummary, tree: ast.Module,
                           lines: Sequence[str]) -> Iterator[Finding]:
    """FLOW004 findings of one module."""
    for name, fn_node in _all_functions(tree):
        in_scope = sorted(_provenance_params(fn_node))
        if not in_scope:
            continue
        for stmt in _own_statements(fn_node):
            if not isinstance(stmt, ast.Raise) \
                    or not isinstance(stmt.exc, ast.Call):
                continue
            written = dotted_name(stmt.exc.func)
            if written is None or written not in ANONYMOUS_ERRORS:
                continue
            params = "/".join(f"{p}=" for p in in_scope)
            yield Finding(
                rule=FLOW_ANONYMOUS_RULE, severity=SEVERITY_WARNING,
                path=summary.path, line=stmt.lineno, col=stmt.col_offset,
                message=(f"anonymous {written} raised in {name}() while "
                         f"provenance ({params}) is in scope; raise a "
                         f"taxonomy error (InputError/NumericalError/"
                         f"ModelError) carrying it instead"),
                snippet=_snippet(lines, stmt.lineno))


def _provenance_params(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    return names & PROVENANCE_PARAMS


def _all_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.FunctionDef]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def _own_statements(fn: ast.FunctionDef) -> Iterator[ast.stmt]:
    """Statements of a function body, not descending into nested defs."""
    stack: List[ast.stmt] = list(fn.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                stack.extend(s for s in ast.iter_child_nodes(child)
                             if isinstance(s, ast.stmt))


def _env_at(rd: ReachingDefinitions, block: Block,
            target: ast.stmt) -> Env:
    env: Env = rd.states.get(block.index, ({}, {}))[0]
    for stmt in block.stmts:
        if stmt is target:
            return env
        env = rd._transfer(stmt, env)
    return env


def _provenance_problem(summary: ModuleSummary,
                        call: ast.Call) -> Optional[str]:
    written = dotted_name(call.func)
    if written is None:
        return None
    canonical = canonical_name(summary, written)
    tail = canonical.split(".")[-1]
    if tail not in PROVENANCE_ERRORS:
        return None
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg in PROVENANCE_KEYS:
            return None
    return f"{tail}(...)"
