"""Tensor shape/dtype contracts and their call-edge checking (SHAPE001/002).

NumPy code cannot express array shapes in the type system, so the contract
travels in a structured comment on the annotated kernel — machine-checked
documentation that is invisible at runtime:

.. code-block:: python

    def attention_scores(q, k, scale):
        # repro-shape: q=(n, h):f64 k=(m, h):f64 -> (n, m):f64
        ...

Dims are integer literals, lowercase symbols (unified per call edge), or
``?`` (wildcard).  ``()`` declares a scalar.  A trailing ``:dtype`` token
(``f64``, ``f32``, ``i64``, ``i32``, ``bool``) is optional per tuple.

The checker propagates shapes forward through each function — parameters
seed the environment from the function's own contract, and assignments
from calls to *other* annotated kernels extend it with the callee's return
shape under that call's symbol bindings.  At every call edge into an
annotated kernel it unifies the known argument shapes against the declared
parameter shapes:

* **SHAPE001** — rank mismatch, integer-dim conflict, or one symbol bound
  to two different dims across the arguments of a single call;
* **SHAPE002** — both sides declare a dtype and they differ.

Unknown shapes never produce findings — the analysis only speaks when both
ends of an edge carry a contract, which keeps it silent on unannotated
code and makes every finding actionable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from .engine import Finding, SEVERITY_ERROR

SHAPE_RULE = "SHAPE001"
DTYPE_RULE = "SHAPE002"

#: One dimension: a concrete size, a symbol to unify, or the wildcard "?".
Dim = Union[int, str]

#: Recognized dtype tokens.
DTYPES = frozenset({"f64", "f32", "f16", "i64", "i32", "i16", "i8", "bool",
                    "c64", "c128"})

_MARKER = re.compile(r"#\s*repro-shape:\s*(?P<body>.+?)\s*$")
_PARAM = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)="
                    r"\((?P<dims>[^)]*)\)(?::(?P<dtype>[A-Za-z0-9]+))?$")
_RET = re.compile(r"^\((?P<dims>[^)]*)\)(?::(?P<dtype>[A-Za-z0-9]+))?$")


class ContractError(ValueError):
    """A ``# repro-shape:`` comment that cannot be parsed."""


@dataclass(frozen=True)
class ShapeSpec:
    """Declared (or inferred) shape of one value: dims plus optional dtype."""

    dims: Tuple[Dim, ...]
    dtype: Optional[str] = None

    def rank(self) -> int:
        return len(self.dims)

    def render(self) -> str:
        body = ", ".join(str(d) for d in self.dims)
        suffix = f":{self.dtype}" if self.dtype else ""
        return f"({body}){suffix}"

    def as_dict(self) -> Dict[str, Any]:
        return {"dims": list(self.dims), "dtype": self.dtype}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ShapeSpec":
        dims = tuple(d if isinstance(d, int) else str(d)
                     for d in raw.get("dims", []))
        dtype = raw.get("dtype")
        return cls(dims=dims, dtype=None if dtype is None else str(dtype))


@dataclass(frozen=True)
class ShapeContract:
    """Parsed ``# repro-shape:`` contract of one function."""

    params: Dict[str, ShapeSpec] = field(default_factory=dict)
    ret: Optional[ShapeSpec] = None
    line: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {"params": {name: spec.as_dict()
                           for name, spec in sorted(self.params.items())},
                "ret": self.ret.as_dict() if self.ret else None,
                "line": self.line}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ShapeContract":
        ret = raw.get("ret")
        return cls(
            params={name: ShapeSpec.from_dict(spec)
                    for name, spec in raw.get("params", {}).items()},
            ret=ShapeSpec.from_dict(ret) if ret else None,
            line=int(raw.get("line", 0)))


def _parse_dims(body: str, where: str) -> Tuple[Dim, ...]:
    body = body.strip()
    if not body:
        return ()
    dims: List[Dim] = []
    for token in (part.strip() for part in body.split(",")):
        if not token:
            continue
        if token == "?":
            dims.append("?")
        elif re.fullmatch(r"\d+", token):
            dims.append(int(token))
        elif re.fullmatch(r"[a-z][a-z0-9_]*", token):
            dims.append(token)
        else:
            raise ContractError(
                f"bad dimension {token!r} in {where} (use ints, lowercase "
                f"symbols, or ?)")
    return tuple(dims)


def parse_contract_text(body: str) -> ShapeContract:
    """Parse the text after ``# repro-shape:`` into a contract."""
    if "->" in body:
        params_text, _, ret_text = body.partition("->")
    else:
        params_text, ret_text = body, ""
    params: Dict[str, ShapeSpec] = {}
    for token in _split_specs(params_text):
        match = _PARAM.match(token)
        if match is None:
            raise ContractError(f"bad parameter spec {token!r} "
                                f"(expected name=(dims)[:dtype])")
        dtype = _check_dtype(match.group("dtype"), token)
        params[match.group("name")] = ShapeSpec(
            _parse_dims(match.group("dims"), token), dtype)
    ret: Optional[ShapeSpec] = None
    ret_text = ret_text.strip()
    if ret_text:
        match = _RET.match(ret_text)
        if match is None:
            raise ContractError(f"bad return spec {ret_text!r} "
                                f"(expected (dims)[:dtype])")
        ret = ShapeSpec(_parse_dims(match.group("dims"), ret_text),
                        _check_dtype(match.group("dtype"), ret_text))
    return ShapeContract(params=params, ret=ret)


def _check_dtype(dtype: Optional[str], where: str) -> Optional[str]:
    if dtype is not None and dtype not in DTYPES:
        raise ContractError(f"unknown dtype {dtype!r} in {where} "
                            f"(one of {', '.join(sorted(DTYPES))})")
    return dtype


def _split_specs(text: str) -> List[str]:
    """Split ``x=(n, f) w=(f, h)`` into spec tokens (parens may hold spaces)."""
    tokens: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char.isspace() and depth == 0:
            if current:
                tokens.append(current)
                current = ""
        else:
            current += char
    if current:
        tokens.append(current)
    return tokens


def parse_contract(node: ast.FunctionDef,
                   lines: Sequence[str]) -> Optional[ShapeContract]:
    """The contract of a function, from a marker comment near its ``def``.

    The marker may sit on the line directly above ``def``, on the ``def``
    line itself, or on any line between ``def`` and the first statement of
    the body (the docstring counts as a statement, so the idiomatic spot is
    directly below ``def`` or directly below the docstring's closing
    quotes — the parser scans up to the first *non-docstring* statement).
    """
    first_stmt = node.body[0] if node.body else None
    stop = node.lineno
    if first_stmt is not None:
        stop = first_stmt.lineno
        if _is_docstring(first_stmt) and len(node.body) > 1:
            stop = node.body[1].lineno
    start = max(1, node.lineno - 1)
    for lineno in range(start, min(stop + 1, len(lines) + 1)):
        match = _MARKER.search(lines[lineno - 1])
        if match is None:
            continue
        try:
            contract = parse_contract_text(match.group("body"))
        except ContractError:
            # Prose that merely *mentions* the marker (docstrings, docs
            # examples) must not poison analysis; a real but malformed
            # contract is also skipped — unknown never flags.
            continue
        return ShapeContract(params=contract.params, ret=contract.ret,
                             line=lineno)
    return None


def _is_docstring(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str))


# ----------------------------------------------------------------------
# Call-edge checking
# ----------------------------------------------------------------------

#: ``resolve(written_name) -> (FunctionSummary-like, qualified label)`` —
#: injected by the deep driver so this module needs no symbol-table import.
Resolver = Callable[[str], Optional[Tuple[Any, str]]]


class _Bindings:
    """Per-call-edge symbol unification state."""

    def __init__(self) -> None:
        self.map: Dict[str, Dim] = {}

    def unify(self, declared: Dim, actual: Dim) -> Optional[str]:
        """Unify one declared dim against one known dim; error text or None."""
        if declared == "?" or actual == "?":
            return None
        if isinstance(declared, int):
            if isinstance(actual, int) and declared != actual:
                return f"expected dim {declared}, got {actual}"
            return None
        bound = self.map.get(declared)
        if bound is None:
            self.map[declared] = actual
            return None
        if bound != actual:
            return (f"symbol {declared!r} bound to {bound} and {actual} "
                    f"in the same call")
        return None


def check_call_edges(module_path: str, tree: ast.Module,
                     lines: Sequence[str], resolve: Resolver,
                     own_contracts: Dict[str, ShapeContract]
                     ) -> Iterator[Finding]:
    """SHAPE001/SHAPE002 findings for one module.

    ``own_contracts`` maps this module's function qualnames to their
    contracts (seeds each function's shape environment); ``resolve`` maps a
    written callee name to its summary (with ``.contract`` and ``.params``)
    and a printable qualified label.
    """
    for qualname, fn_node in _walk_functions(tree):
        contract = own_contracts.get(qualname)
        env: Dict[str, ShapeSpec] = dict(contract.params) if contract else {}
        for stmt_call, assign_target in _calls_in_order(fn_node):
            resolved = resolve_call(stmt_call, resolve)
            if resolved is None:
                # Unknown callee: an assignment from it wipes any stale
                # shape knowledge about the target name.
                if assign_target is not None:
                    env.pop(assign_target, None)
                continue
            callee, label = resolved
            callee_contract: Optional[ShapeContract] = callee.contract
            if callee_contract is None:
                if assign_target is not None:
                    env.pop(assign_target, None)
                continue
            bindings = _Bindings()
            for param, arg, spec in _edge_pairs(stmt_call, callee,
                                                callee_contract):
                actual = _expr_shape(arg, env)
                if actual is None:
                    continue
                problem = _unify_shapes(bindings, spec, actual)
                if problem is not None:
                    yield Finding(
                        rule=SHAPE_RULE, severity=SEVERITY_ERROR,
                        path=module_path, line=stmt_call.lineno,
                        col=stmt_call.col_offset,
                        message=(f"shape mismatch calling {label}: argument "
                                 f"{param!r} has shape {actual.render()} but "
                                 f"the contract declares {spec.render()} "
                                 f"({problem})"),
                        snippet=_snippet(lines, stmt_call.lineno))
                elif spec.dtype and actual.dtype \
                        and spec.dtype != actual.dtype:
                    yield Finding(
                        rule=DTYPE_RULE, severity=SEVERITY_ERROR,
                        path=module_path, line=stmt_call.lineno,
                        col=stmt_call.col_offset,
                        message=(f"dtype mismatch calling {label}: argument "
                                 f"{param!r} is {actual.dtype} but the "
                                 f"contract declares {spec.dtype}"),
                        snippet=_snippet(lines, stmt_call.lineno))
            if assign_target is not None:
                ret = callee_contract.ret
                if ret is not None:
                    env[assign_target] = ShapeSpec(
                        tuple(bindings.map.get(d, d) if isinstance(d, str)
                              else d for d in ret.dims), ret.dtype)
                else:
                    env.pop(assign_target, None)


def resolve_call(call: ast.Call, resolve: Resolver
                 ) -> Optional[Tuple[Any, str]]:
    from .symbols import dotted_name  # local import: no cycle at load time

    written = dotted_name(call.func)
    if written is None:
        return None
    return resolve(written)


def _unify_shapes(bindings: _Bindings, declared: ShapeSpec,
                  actual: ShapeSpec) -> Optional[str]:
    if declared.rank() != actual.rank():
        return f"rank {actual.rank()} != declared rank {declared.rank()}"
    for want, got in zip(declared.dims, actual.dims):
        problem = bindings.unify(want, got)
        if problem is not None:
            return problem
    return None


def _edge_pairs(call: ast.Call, callee: Any, contract: ShapeContract
                ) -> Iterator[Tuple[str, ast.expr, ShapeSpec]]:
    """(param name, argument expr, declared spec) for one call edge.

    Positional arguments map onto the callee's parameter list; a leading
    ``self``/``cls`` parameter is skipped for attribute calls (method
    invocation through an instance).  ``*args``/``**kwargs`` at the call
    site end positional matching — alignment past them is guesswork.
    """
    params: List[str] = list(getattr(callee, "params", []) or [])
    if params and params[0] in ("self", "cls") \
            and isinstance(call.func, ast.Attribute):
        params = params[1:]
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred) or index >= len(params):
            break
        name = params[index]
        spec = contract.params.get(name)
        if spec is not None:
            yield name, arg, spec
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        spec = contract.params.get(keyword.arg)
        if spec is not None:
            yield keyword.arg, keyword.value, spec


def _expr_shape(expr: ast.expr, env: Dict[str, ShapeSpec]
                ) -> Optional[ShapeSpec]:
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Constant) \
            and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return ShapeSpec(())
    return None


def _walk_functions(tree: ast.Module
                    ) -> Iterator[Tuple[str, ast.FunctionDef]]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def _calls_in_order(fn: ast.FunctionDef
                    ) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Calls of a function body in source order, with assignment targets.

    Yields ``(call, name)`` when the call is the whole right-hand side of a
    single-name assignment (so the callee's return shape can flow into the
    environment), else ``(call, None)``.
    """
    assigned: Dict[int, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            assigned[id(node.value)] = node.targets[0].id
    calls = [node for node in ast.walk(fn) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    for call in calls:
        yield call, assigned.get(id(call))


def _snippet(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""
