"""Visitor engine of the repo linter: files, rules, suppressions, results.

The engine is deliberately small and dependency-free: it discovers Python
files, parses each one to an :mod:`ast` tree, runs every active rule over
the tree (a single walk, dispatching nodes by type), honours inline
``# repro-lint: disable=RULE`` suppressions gathered from the token stream,
subtracts baselined (grandfathered) findings, and folds everything into a
:class:`LintResult` the reporters render.

Two rule kinds exist:

* :class:`Rule` — AST rules; implement :meth:`Rule.visit` (called for every
  node whose type appears in :attr:`Rule.node_types`) and/or
  :meth:`Rule.check_module` (called once per module, for whole-module
  analyses such as tracking module-level state).
* :class:`ProjectRule` — non-AST rules run once over the whole input path
  set (the doc-link rule lives here).

Unparsable files surface as findings of the pseudo-rule :data:`PARSE_RULE`
instead of crashing the run — a linter that dies on the file it should
report is useless in CI.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import PurePath
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from .baseline import BaselineEntry, apply_baseline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deep -> engine)
    from .deep import DeepAnalyzer, DeepStats

#: Directory names never descended into during file discovery.
SKIP_DIRS = frozenset({".git", "__pycache__", ".pytest_cache", ".hypothesis",
                       ".mypy_cache", ".eggs", "build", "dist",
                       "node_modules"})

#: Pseudo-rule name attached to findings about unparsable Python files.
PARSE_RULE = "LINT000"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# repro-lint: disable=DET001,ERR002 optional justification text`` or
#: ``# repro-lint: disable`` (suppresses every rule on that line).
_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Za-z0-9_]+"
    r"(?:\s*,\s*[A-Za-z0-9_]+)*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "snippet": self.snippet}


@dataclass
class ModuleContext:
    """Everything a rule may need about the module under analysis."""

    path: str
    module: str
    tree: ast.Module
    lines: List[str]

    def snippet(self, line: int) -> str:
        """The stripped source text of ``line`` (1-based), or ``""``."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def segments(self) -> Tuple[str, ...]:
        """Dotted-module segments, for scope checks (``repro.analysis.awe``
        -> ``("repro", "analysis", "awe")``)."""
        return tuple(self.module.split(".")) if self.module else ()


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`visit` (per
    node) and/or :meth:`check_module` (once per module).  Rules must be
    stateless across modules — the runner reuses one instance for the whole
    run.
    """

    name: str = "RULE000"
    slug: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""
    #: Node types :meth:`visit` wants to see; empty means "no per-node hook".
    node_types: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one node of a type listed in :attr:`node_types`."""
        return iter(())

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Whole-module findings (module-level state, cross-node analyses)."""
        return iter(())

    def finding(self, ctx: ModuleContext, line: int, col: int,
                message: str) -> Finding:
        """Build a finding of this rule at a location inside ``ctx``."""
        return Finding(rule=self.name, severity=self.severity, path=ctx.path,
                       line=line, col=col, message=message,
                       snippet=ctx.snippet(line))


class ProjectRule(Rule):
    """Non-AST rule run once over the entire input path set."""

    def check_project(self, paths: Sequence[str]) -> Iterator[Finding]:
        return iter(())


@dataclass
class LintResult:
    """Outcome of one lint run, ready for rendering.

    ``findings`` are the *active* violations — after inline suppressions
    and the baseline are subtracted.  ``stale_baseline`` lists baseline
    entries that no longer match any finding (candidates for deletion).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: Deep-tier counters when the run included ``--deep``, else ``None``.
    deep: Optional["DeepStats"] = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        """Active findings per rule name."""
        table: Dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table


def module_name(path: str) -> str:
    """Best-effort dotted module name of a file path.

    Everything up to (and including) the last ``src`` path component is
    stripped, so ``src/repro/analysis/awe.py`` maps to
    ``repro.analysis.awe`` regardless of the working directory.  Paths
    without a ``src`` component keep all their (non-relative) parts —
    enough for the segment-based scope checks the rules perform.
    """
    parts = [p for p in PurePath(os.path.normpath(path)).parts
             if p not in (".", "..", "/", os.sep)]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        cut = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[cut + 1:]
    return ".".join(parts)


def display_path(path: str) -> str:
    """Path as reported in findings: cwd-relative POSIX style when possible."""
    relative = os.path.relpath(path)
    chosen = path if relative.startswith("..") else relative
    return PurePath(os.path.normpath(chosen)).as_posix()


def _skip_dir(name: str) -> bool:
    """Directories never descended into: the fixed set, hidden directories
    (``.venv``, ``.tox``, ...) and setuptools ``*.egg-info`` droppings."""
    return (name in SKIP_DIRS or name.startswith(".")
            or name.endswith(".egg-info"))


def excluded(path: str, patterns: Sequence[str]) -> bool:
    """Whether a file path matches any ``--exclude`` glob.

    Patterns match the POSIX display path (``src/repro/cli.py``), the
    basename, or any trailing subpath — so ``cli.py``, ``src/repro/*.py``
    and ``repro/cli.py`` all exclude the same file.
    """
    display = PurePath(os.path.normpath(path)).as_posix()
    parts = display.split("/")
    for pattern in patterns:
        if fnmatch(display, pattern) or fnmatch(parts[-1], pattern):
            return True
        if any(fnmatch("/".join(parts[i:]), pattern)
               for i in range(len(parts))):
            return True
    return False


def python_files(paths: Sequence[str],
                 exclude: Sequence[str] = ()) -> List[str]:
    """Sorted ``.py`` files under the given files/directories.

    ``exclude`` globs (from ``--exclude`` and ``[tool.repro-lint]``) drop
    discovered files; paths given *explicitly* as files are kept even when
    a glob matches — an explicit argument outranks a config default.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if not _skip_dir(d))
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                candidate = os.path.join(dirpath, name)
                if not excluded(candidate, exclude):
                    found.append(candidate)
    return sorted(found)


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names suppressed there (``"*"`` = all).

    Comments are read from the token stream, so strings containing the
    marker text do not suppress anything.  A disable comment anywhere in a
    **logical line** (a statement continued over several physical lines —
    an open bracket, a backslash continuation) suppresses the whole
    statement's line range, so the comment can sit on the closing paren of
    a multi-line call and still cover the reported first line.  A comment
    on a **decorator** line extends over the decorated ``def``/``class``
    header it precedes (rules report decorated definitions at the ``def``
    line).  A file that cannot be tokenized yields no suppressions (its
    parse failure is reported separately).
    """
    table: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table

    # Group tokens into logical lines: NEWLINE ends a statement, NL is a
    # mere physical break inside one.  Each group keeps its physical line
    # span, the rules from any disable comments inside it, and whether it
    # is a decorator line (first significant token is the ``@`` operator).
    groups: List[Tuple[int, int, Set[str], bool]] = []
    start: Optional[int] = None
    end = 0
    rules: Set[str] = set()
    decorator = False
    first_significant = True
    for token in tokens:
        if token.type in (tokenize.INDENT, tokenize.DEDENT,
                          tokenize.ENDMARKER):
            continue
        if token.type == tokenize.COMMENT:
            match = _SUPPRESS.search(token.string)
            if match is not None:
                names = match.group("rules")
                rules.update({"*"} if names is None else
                             {part.strip() for part in names.split(",")
                              if part.strip()})
                # A comment outside any statement (its own line) applies
                # to its own physical line, as before.
                if start is None:
                    table.setdefault(token.start[0], set()).update(rules)
            if start is None:
                rules = set()
            continue
        if token.type == tokenize.NL:
            continue
        if token.type == tokenize.NEWLINE:
            if start is not None:
                groups.append((start, max(end, token.start[0]), rules,
                               decorator))
            start, rules, decorator = None, set(), False
            first_significant = True
            continue
        if start is None:
            start = token.start[0]
        if first_significant:
            decorator = (token.type == tokenize.OP
                         and token.string == "@")
            first_significant = False
        end = token.end[0]
    if start is not None:  # unterminated final statement
        groups.append((start, end, rules, decorator))

    # Decorator lines chain onto the following group (more decorators or
    # the def/class header), so a disable above the decorator stack covers
    # the definition line itself.
    for index, (first, last, found, decorator) in enumerate(groups):
        if not found:
            continue
        span_last = last
        cursor = index
        while decorator and cursor + 1 < len(groups):
            cursor += 1
            nxt = groups[cursor]
            span_last = nxt[1]
            decorator = nxt[3]
        for line in range(first, span_last + 1):
            table.setdefault(line, set()).update(found)
    return table


class LintRunner:
    """Runs a rule set over paths and folds findings into a result.

    Parameters
    ----------
    rules:
        Rule instances to run (default: the full registry from
        :func:`repro.lint.rules.default_rules`).
    select:
        When non-empty, only rules whose name appears here run.
    ignore:
        Rule names removed after ``select`` is applied.  Unknown names in
        either set raise ``ValueError`` — a typo that silently disables
        nothing (or everything) is itself a lint-grade bug.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 exclude: Sequence[str] = (),
                 extra_rule_names: Iterable[str] = ()) -> None:
        if rules is None:
            from .rules import default_rules
            rules = default_rules()
        known = {rule.name for rule in rules} | set(extra_rule_names)
        selected = set(select) if select else set()
        ignored = set(ignore) if ignore else set()
        unknown = sorted((selected | ignored) - known)
        if unknown:
            raise ValueError(f"unknown rule name(s): {', '.join(unknown)}")
        active = [rule for rule in rules
                  if (not selected or rule.name in selected)
                  and rule.name not in ignored]
        self.rules: List[Rule] = active
        self.exclude: Tuple[str, ...] = tuple(exclude)
        self._selected = selected
        self._ignored = ignored

    def _rule_active(self, name: str) -> bool:
        """select/ignore applied to rules not instantiated here (deep)."""
        if self._selected and name not in self._selected:
            return False
        return name not in self._ignored

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str],
            baseline: Sequence[BaselineEntry] = (),
            deep: Optional["DeepAnalyzer"] = None) -> LintResult:
        """Lint ``paths``; subtract suppressions and ``baseline`` entries.

        When ``deep`` is given, its whole-program findings (already
        suppression-filtered by the analyzer) join the per-file findings
        *before* the baseline applies, so FLOW/SHAPE/UNIT findings can be
        grandfathered and reported exactly like the classic rules.
        """
        ast_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        result = LintResult()
        collected: List[Finding] = []
        files = python_files(paths, self.exclude)
        for path in files:
            result.files_checked += 1
            collected.extend(self._lint_file(path, ast_rules, result))
        for rule in project_rules:
            collected.extend(rule.check_project(paths))
        if deep is not None:
            deep_findings, stats = deep.analyze(files)
            collected.extend(f for f in deep_findings
                             if self._rule_active(f.rule))
            result.suppressed += stats.suppressed
            result.deep = stats
        collected.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        active, baselined, stale = apply_baseline(collected, baseline)
        result.findings = active
        result.baselined = baselined
        result.stale_baseline = stale
        return result

    def _lint_file(self, path: str, rules: Sequence[Rule],
                   result: LintResult) -> List[Finding]:
        display = display_path(path)
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(rule=PARSE_RULE, severity=SEVERITY_ERROR,
                            path=display, line=1, col=0,
                            message=f"cannot read file: {exc}")]
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(rule=PARSE_RULE, severity=SEVERITY_ERROR,
                            path=display, line=exc.lineno or 1,
                            col=exc.offset or 0,
                            message=f"syntax error: {exc.msg}")]
        except ValueError as exc:
            # ast.parse raises bare ValueError (not SyntaxError) for e.g.
            # null bytes in the source; report, don't crash the run.
            return [Finding(rule=PARSE_RULE, severity=SEVERITY_ERROR,
                            path=display, line=1, col=0,
                            message=f"cannot parse file: {exc}")]
        ctx = ModuleContext(path=display, module=module_name(path),
                            tree=tree, lines=source.splitlines())
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in rules:
                if rule.node_types and isinstance(node, rule.node_types):
                    findings.extend(rule.visit(node, ctx))
        for rule in rules:
            findings.extend(rule.check_module(ctx))
        suppressions = suppressed_lines(source)
        kept: List[Finding] = []
        for finding in findings:
            names = suppressions.get(finding.line, set())
            if "*" in names or finding.rule in names:
                result.suppressed += 1
            else:
                kept.append(finding)
        return kept
