"""The PERF pack: profile-guided hot-path performance rules (``--perf``).

The repo's performance story was won in specific, recognizable moves —
batching scalar eigensolves (PR 7), replacing O(nets×loads) scans with
the ``nets_loaded_by`` reverse index (PR 8), content-addressed solve/AWE
caches — and every rule here targets the anti-pattern that would silently
undo one of them:

* **PERF001** — a scalar ``numpy.linalg``/``scipy.linalg`` factorization
  executed (directly or through a resolvable call chain) inside a loop
  over nets/paths, where :mod:`repro.analysis.batch` has a batched
  equivalent (``golden_analyze_many`` / ``BatchedEigenEngine.solve_many``).
* **PERF002** — per-iteration allocation in a loop of a *hot* function:
  a loop-invariant ``np.zeros``-style allocation, or the quadratic
  list-append-then-``np.array`` rebuild inside the appending loop.
* **PERF003** — nested iteration over two design collections
  (``X.nets × Y.paths``-shaped scans) where a reverse index exists.
* **PERF004** — cache bypass: constructing ``EigenSolve``/AWE moments
  directly at a call site where the keyed ``SolveCache``/``AWEStepCache``
  entry points are the sanctioned route.
* **PERF005** — per-iteration ``import`` or wall-clock/formatting work
  under a loop.

The pack is **profile-guided** (:mod:`.hotness`): findings whose
enclosing function is on a measured hot path (a hot-ranked span function,
or call-graph-reachable from one) are errors carrying the measured
exclusive seconds; cold findings downgrade to warnings.  PERF002 fires
*only* for hot functions — a hoistable allocation in cold code is noise.

Extraction is per-module and pure (:func:`extract_module_perf` ⇒
:class:`ModulePerf`, serialized into the incremental cache by content
hash); findings are assembled fresh each run from all modules' sites plus
the call graph and the current profile, mirroring the CONC pack.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, Node, display_chain
from .deep import DeepRuleInfo
from .engine import Finding
from .hotness import HotnessProfile, HotSpot
from .symbols import ModuleSummary, SymbolTable, canonical_name, dotted_name

#: Bump when extraction or any PERF rule's semantics change; feeds the
#: cache fingerprint so stale per-module perf sites self-invalidate.
PERF_PACK_VERSION = "repro-lint-perf/1"

#: Scalar factorization tails under the linalg namespaces (PERF001).
FACTORIZATION_PREFIXES = ("numpy.linalg.", "scipy.linalg.")
FACTORIZATION_TAILS = frozenset({
    "eig", "eigh", "eigvals", "eigvalsh", "svd", "solve", "lstsq",
    "cholesky", "inv", "pinv", "qr", "lu", "lu_factor", "lu_solve",
    "expm"})

#: Allocation tails under ``numpy.`` whose loop-invariant use is PERF002.
ALLOC_TAILS = frozenset({
    "zeros", "ones", "empty", "full", "eye", "identity", "zeros_like",
    "ones_like", "empty_like", "full_like", "concatenate", "stack",
    "vstack", "hstack", "column_stack"})

#: Loop-iterable name tails that mean "per net / per path / per job".
NET_LOOP_TAILS = frozenset({"nets", "paths", "net_names", "requests",
                            "jobs"})
NET_LOOP_SUFFIXES = ("_nets", "_paths", "_jobs", "_requests")

#: Attribute tails that name a design-level collection (PERF003).
DESIGN_COLLECTIONS = frozenset({
    "nets", "paths", "loads", "gates", "cells", "pins", "stages", "sinks"})

#: Canonical names whose direct call/construction bypasses a keyed cache
#: (PERF004), with the sanctioned entry point for the message.
CACHE_BYPASS_TARGETS: Dict[str, str] = {
    "repro.analysis.simulator.EigenSolve":
        "SolveCache (analysis/cache.py: get_solve_cache + solve_key)",
    "repro.analysis.simulator.eigendecompose":
        "SolveCache (analysis/cache.py: get_solve_cache + solve_key)",
    "repro.analysis.moments.moments":
        "moment memo (analysis/moments.py: cached_moments)",
}

#: Modules allowed to touch the scalar/direct machinery: the batching and
#: caching layers themselves.  Call chains are not followed into these —
#: routing per-net work through them is the *sanctioned* pattern.
SAFE_MODULES = frozenset({
    "repro.analysis.batch", "repro.analysis.cache", "repro.analysis.awe",
    "repro.analysis.simulator", "repro.analysis.moments",
})

#: Wall-clock / formatting canonicals that do not belong inside hot loops
#: (PERF005); ``time.perf_counter`` is a duration read and stays legal.
CLOCK_CALLS = frozenset({
    "time.time", "time.strftime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today"})

#: Wrappers unwrapped when classifying what a ``for`` iterates over.
_ITER_WRAPPERS = frozenset({"enumerate", "sorted", "list", "tuple",
                            "reversed", "iter", "zip"})


# ----------------------------------------------------------------------
# Per-module extraction (pure, cacheable)
# ----------------------------------------------------------------------
@dataclass
class PerfSite:
    """One extracted performance-relevant site.

    ``kind`` is one of ``linalg`` (factorization call), ``net-call``
    (any call inside a net/path loop, for interprocedural PERF001),
    ``alloc`` / ``growing-array`` (PERF002), ``nested-scan`` (PERF003),
    ``cache-bypass`` (PERF004), ``import`` / ``clock`` (PERF005).
    """

    kind: str
    line: int
    col: int
    function: str      # enclosing qualname, or "<module>"
    detail: str        # canonical / written name, import target, ...
    loop_line: int = 0  # innermost enclosing loop line (0 = none)
    loop_iter: str = ""  # written iterable of that loop
    net_loop: bool = False  # some enclosing loop iterates nets/paths

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "line": self.line, "col": self.col,
                "function": self.function, "detail": self.detail,
                "loop_line": self.loop_line, "loop_iter": self.loop_iter,
                "net_loop": self.net_loop}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "PerfSite":
        return cls(kind=str(raw["kind"]), line=int(raw["line"]),  # type: ignore[arg-type]
                   col=int(raw["col"]),  # type: ignore[arg-type]
                   function=str(raw["function"]), detail=str(raw["detail"]),
                   loop_line=int(raw.get("loop_line", 0)),  # type: ignore[arg-type]
                   loop_iter=str(raw.get("loop_iter", "")),
                   net_loop=bool(raw.get("net_loop", False)))


@dataclass
class ModulePerf:
    """Serializable per-module PERF extraction result."""

    module: str
    display: str
    sites: List[PerfSite] = field(default_factory=list)

    def factorizing_functions(self) -> Set[str]:
        """Qualnames containing a direct scalar factorization call."""
        return {site.function for site in self.sites
                if site.kind == "linalg" and site.function != "<module>"}

    def as_dict(self) -> Dict[str, object]:
        return {"module": self.module, "display": self.display,
                "sites": [site.as_dict() for site in self.sites]}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ModulePerf":
        sites_raw = raw.get("sites", [])
        sites = [PerfSite.from_dict(item) for item in sites_raw
                 if isinstance(item, dict)] \
            if isinstance(sites_raw, list) else []
        return cls(module=str(raw["module"]), display=str(raw["display"]),
                   sites=sites)


@dataclass
class _LoopFrame:
    line: int
    iter_text: str
    over_nets: bool
    design_attr: Optional[Tuple[str, str]]  # (root name, collection tail)
    target_names: FrozenSet[str]
    bound_names: FrozenSet[str]
    appended: Set[str] = field(default_factory=set)


def extract_module_perf(summary: ModuleSummary, tree: ast.Module,
                        display: str) -> ModulePerf:
    """Extract every PERF-relevant site of one parsed module."""
    perf = ModulePerf(module=summary.module, display=display)
    scanner = _PerfScanner(summary, perf)
    scanner.scan(tree)
    perf.sites.sort(key=lambda s: (s.line, s.col, s.kind))
    return perf


class _PerfScanner:
    """Single-pass walker tracking the lexical loop stack per function."""

    def __init__(self, summary: ModuleSummary, perf: ModulePerf) -> None:
        self.summary = summary
        self.perf = perf
        self.loops: List[_LoopFrame] = []
        self.function = "<module>"

    # -- driving -------------------------------------------------------
    def scan(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node.name, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(f"{node.name}.{item.name}", item)
                    else:
                        self._visit(item)
            else:
                self._visit(node)

    def _scan_function(self, qualname: str, node: ast.AST) -> None:
        outer, self.function = self.function, qualname
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self.function = outer

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._enter_for(node)
            return
        if isinstance(node, ast.While):
            self._enter_while(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested def's body does not run per iteration of the
            # enclosing loop: scan it with an empty loop stack.
            saved, self.loops = self.loops, []
            if isinstance(node, ast.Lambda):
                self._visit(node.body)
            else:
                for child in ast.iter_child_nodes(node):
                    self._visit(child)
            self.loops = saved
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
        elif isinstance(node, (ast.Import, ast.ImportFrom)) and self.loops:
            names = ", ".join(alias.name for alias in node.names)
            self._site("import", node.lineno, node.col_offset, names)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- loops ---------------------------------------------------------
    def _enter_for(self, node: ast.For) -> None:
        unwrapped = _unwrap_iterable(node.iter)
        iter_text = dotted_name(unwrapped) or "<expr>"
        frame = _LoopFrame(
            line=node.lineno, iter_text=iter_text,
            over_nets=_is_net_collection(iter_text),
            design_attr=_design_attr(iter_text),
            target_names=frozenset(_target_names(node.target)),
            bound_names=frozenset(_bound_names(node)))
        if frame.design_attr is not None:
            self._check_nested_scan(node, frame)
        self.loops.append(frame)
        for child in ast.iter_child_nodes(node):
            if child is not node.iter and child is not node.target:
                self._visit(child)
        self.loops.pop()
        # The iterable expression itself runs once, outside the loop.
        self._visit(node.iter)

    def _enter_while(self, node: ast.While) -> None:
        frame = _LoopFrame(line=node.lineno, iter_text="<while>",
                           over_nets=False, design_attr=None,
                           target_names=frozenset(),
                           bound_names=frozenset(_bound_names(node)))
        self.loops.append(frame)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self.loops.pop()

    def _check_nested_scan(self, node: ast.For, inner: _LoopFrame) -> None:
        assert inner.design_attr is not None
        root, _tail = inner.design_attr
        for outer in self.loops:
            if outer.design_attr is None:
                continue
            if root in outer.target_names:
                continue  # iterating an attribute of the outer loop var
            self.perf.sites.append(PerfSite(
                kind="nested-scan", line=node.lineno, col=node.col_offset,
                function=self.function,
                detail=f"{outer.iter_text} x {inner.iter_text}",
                loop_line=outer.line, loop_iter=outer.iter_text,
                net_loop=outer.over_nets))
            return

    # -- calls ---------------------------------------------------------
    def _record_call(self, node: ast.Call) -> None:
        written = dotted_name(node.func)
        if written is None:
            return
        canonical = canonical_name(self.summary, written)
        in_net_loop = any(frame.over_nets for frame in self.loops)
        if _is_factorization(canonical):
            self._site("linalg", node.lineno, node.col_offset, canonical)
        elif in_net_loop:
            # Candidate for interprocedural PERF001 resolution.
            self._site("net-call", node.lineno, node.col_offset, written)
        if canonical in CACHE_BYPASS_TARGETS:
            self._site("cache-bypass", node.lineno, node.col_offset,
                       canonical)
        if self.loops:
            self._record_loop_call(node, written, canonical)

    def _record_loop_call(self, node: ast.Call, written: str,
                          canonical: str) -> None:
        frame = self.loops[-1]
        tail = canonical.rsplit(".", 1)[-1]
        if canonical.startswith("numpy.") and tail in ALLOC_TAILS \
                and _is_loop_invariant(node, frame):
            self._site("alloc", node.lineno, node.col_offset, canonical)
        if canonical in ("numpy.array", "numpy.asarray") and node.args:
            grown = node.args[0]
            if isinstance(grown, ast.Name) \
                    and grown.id in frame.appended:
                self._site("growing-array", node.lineno, node.col_offset,
                           grown.id)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "append" \
                and isinstance(node.func.value, ast.Name):
            for open_frame in self.loops:
                open_frame.appended.add(node.func.value.id)
        if canonical in CLOCK_CALLS:
            self._site("clock", node.lineno, node.col_offset, canonical)

    def _site(self, kind: str, line: int, col: int, detail: str) -> None:
        frame = self.loops[-1] if self.loops else None
        self.perf.sites.append(PerfSite(
            kind=kind, line=line, col=col, function=self.function,
            detail=detail,
            loop_line=frame.line if frame else 0,
            loop_iter=frame.iter_text if frame else "",
            net_loop=any(f.over_nets for f in self.loops)))


# ----------------------------------------------------------------------
# Classification helpers
# ----------------------------------------------------------------------
def _unwrap_iterable(node: ast.expr) -> ast.expr:
    """Peel ``enumerate/sorted/.values()/range(len(..))`` wrappers."""
    while True:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ITER_WRAPPERS \
                    and node.args:
                node = node.args[0]
                continue
            if isinstance(func, ast.Name) and func.id == "range" \
                    and len(node.args) == 1:
                inner = node.args[0]
                if isinstance(inner, ast.Call) \
                        and isinstance(inner.func, ast.Name) \
                        and inner.func.id == "len" and inner.args:
                    node = inner.args[0]
                    continue
                return node
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("values", "items", "keys"):
                node = func.value
                continue
        return node


def _is_net_collection(iter_text: str) -> bool:
    if iter_text in ("<expr>", "<while>"):
        return False
    tail = iter_text.rsplit(".", 1)[-1]
    return tail in NET_LOOP_TAILS or tail.endswith(NET_LOOP_SUFFIXES)


def _design_attr(iter_text: str) -> Optional[Tuple[str, str]]:
    """``(root, collection)`` when the iterable is ``root...collection``."""
    if "." not in iter_text or iter_text in ("<expr>", "<while>"):
        return None
    root, _, _rest = iter_text.partition(".")
    tail = iter_text.rsplit(".", 1)[-1]
    if tail in DESIGN_COLLECTIONS:
        return root, tail
    return None


def _is_factorization(canonical: str) -> bool:
    for prefix in FACTORIZATION_PREFIXES:
        if canonical.startswith(prefix) \
                and canonical[len(prefix):] in FACTORIZATION_TAILS:
            return True
    return False


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _bound_names(loop: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside a loop — the invariance blocklist."""
    names: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


def _is_loop_invariant(call: ast.Call, frame: _LoopFrame) -> bool:
    """True when no argument reads a name bound within the loop."""
    blocked = frame.bound_names | frame.target_names
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in blocked:
                return False
    return True


# ----------------------------------------------------------------------
# Whole-program assembly (fresh every run; profile-guided)
# ----------------------------------------------------------------------
def run_perf(table: SymbolTable, graph: CallGraph,
             perfs: Dict[str, ModulePerf],
             sources: Dict[str, Sequence[str]],
             hotness: Optional[HotnessProfile]
             ) -> Tuple[List[Finding], Dict[str, object]]:
    """Assemble PERF findings from per-module sites + call graph + profile.

    Returns ``(findings, stats)`` where stats is the JSON report's
    ``perf`` block (counters plus the hot-path manifest).
    """
    hot_costs = _hot_node_costs(graph, hotness)
    factorizing: Set[Node] = set()
    for module, perf in perfs.items():
        if module in SAFE_MODULES:
            continue
        for qualname in perf.factorizing_functions():
            factorizing.add((module, qualname))
    reach_cache: Dict[Node, Optional[Node]] = {}
    findings: List[Finding] = []
    for module in sorted(perfs):
        perf = perfs[module]
        lines = sources.get(module, ())
        for site in perf.sites:
            finding = _finding_for_site(
                module, perf, site, lines, table, graph, factorizing,
                reach_cache, hot_costs)
            if finding is not None:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    hot = sum(1 for f in findings if f.severity == "error")
    stats: Dict[str, object] = {
        "modules": len(perfs),
        "findings": len(findings),
        "hot": hot,
        "cold": len(findings) - hot,
        "profile_sources": list(hotness.sources) if hotness else [],
        "hot_threshold_s": hotness.threshold_s if hotness else None,
        "manifest": hotness.manifest() if hotness else [],
    }
    return findings, stats


def _hot_node_costs(graph: CallGraph, hotness: Optional[HotnessProfile]
                    ) -> Dict[Node, HotSpot]:
    """Every node on a measured hot path, with its costliest root spot."""
    if not hotness:
        return {}
    costs: Dict[Node, HotSpot] = {}
    roots = sorted(hotness.hot_functions().items(),
                   key=lambda item: -item[1].exclusive_s)
    for root, spot in roots:
        for node in graph.reachable_from(root):
            if node not in costs:  # roots iterate costliest-first
                costs[node] = spot
    return costs


def _finding_for_site(module: str, perf: ModulePerf, site: PerfSite,
                      lines: Sequence[str], table: SymbolTable,
                      graph: CallGraph, factorizing: Set[Node],
                      reach_cache: Dict[Node, Optional[Node]],
                      hot_costs: Dict[Node, HotSpot]) -> Optional[Finding]:
    node: Node = (module, site.function)
    spot = hot_costs.get(node)
    if site.kind == "linalg":
        if module in SAFE_MODULES or not site.net_loop:
            return None
        message = (f"scalar {site.detail} inside a loop over "
                   f"{site.loop_iter!r}; use the batched entry points in "
                   f"analysis/batch.py (golden_analyze_many / "
                   f"BatchedEigenEngine.solve_many)")
        return _finding("PERF001", perf, site, message, spot, lines)
    if site.kind == "net-call":
        if module in SAFE_MODULES:
            return None
        hit = _reaches_factorization(table, graph, module, site.detail,
                                     factorizing, reach_cache)
        if hit is None:
            return None
        target, via = hit
        message = (f"call to {site.detail}() inside a loop over "
                   f"{site.loop_iter!r} reaches scalar "
                   f"{display_chain(via)}; batch it via analysis/batch.py "
                   f"(golden_analyze_many / BatchedEigenEngine.solve_many)")
        del target
        return _finding("PERF001", perf, site, message, spot, lines)
    if site.kind == "alloc":
        if spot is None:
            return None  # PERF002 is strictly profile-gated
        message = (f"loop-invariant {site.detail} allocated every "
                   f"iteration of the loop at line {site.loop_line} in "
                   f"hot function {site.function}; hoist it out of the "
                   f"loop")
        return _finding("PERF002", perf, site, message, spot, lines)
    if site.kind == "growing-array":
        if spot is None:
            return None  # PERF002 is strictly profile-gated
        message = (f"np.array({site.detail}) inside the loop that appends "
                   f"to {site.detail!r} rebuilds the array every "
                   f"iteration; convert once after the loop")
        return _finding("PERF002", perf, site, message, spot, lines)
    if site.kind == "nested-scan":
        message = (f"nested scan over design collections ({site.detail}); "
                   f"use a reverse index (e.g. Netlist.nets_loaded_by, "
                   f"the fanout-cone index) instead of the product scan")
        return _finding("PERF003", perf, site, message, spot, lines)
    if site.kind == "cache-bypass":
        if module in SAFE_MODULES:
            return None
        entry = CACHE_BYPASS_TARGETS[site.detail]
        message = (f"direct {site.detail.rsplit('.', 1)[-1]} construction "
                   f"bypasses the keyed {entry}; route through the cache "
                   f"entry point")
        return _finding("PERF004", perf, site, message, spot, lines)
    if site.kind == "import":
        message = (f"import of {site.detail} inside the loop at line "
                   f"{site.loop_line} re-runs the import machinery every "
                   f"iteration; hoist it to module scope")
        return _finding("PERF005", perf, site, message, spot, lines)
    if site.kind == "clock":
        message = (f"wall-clock/formatting call {site.detail} inside the "
                   f"loop at line {site.loop_line}; hoist it (or use "
                   f"time.perf_counter for durations)")
        return _finding("PERF005", perf, site, message, spot, lines)
    return None


def _reaches_factorization(table: SymbolTable, graph: CallGraph,
                           module: str, written: str,
                           factorizing: Set[Node],
                           cache: Dict[Node, Optional[Node]]
                           ) -> Optional[Tuple[Node, List[Node]]]:
    """Resolve a call and walk its chain to a factorizing function.

    Returns ``(factorizing node, chain)`` or ``None``.  Chains never enter
    :data:`SAFE_MODULES` — delegating to the batch/cache layer is the fix,
    not a violation.
    """
    resolved = table.resolve(module, written)
    if resolved is None or resolved[0] in SAFE_MODULES:
        return None
    hit = cache.get(resolved, _UNCOMPUTED)
    if hit is not _UNCOMPUTED:
        if hit is None:
            return None
        chain = graph.find_path(
            resolved, lambda node, fn: node == hit and node[0]
            not in SAFE_MODULES)
        return (hit, chain) if chain is not None else None
    path = _find_factorizing_path(graph, resolved, factorizing)
    cache[resolved] = path[-1] if path else None
    if path is None:
        return None
    return path[-1], path


def _find_factorizing_path(graph: CallGraph, start: Node,
                           factorizing: Set[Node]) -> Optional[List[Node]]:
    stack: List[Tuple[Node, List[Node]]] = [(start, [start])]
    visited: Set[Node] = set()
    while stack:
        node, chain = stack.pop()
        if node in visited or len(chain) > graph.MAX_DEPTH:
            continue
        if node[0] in SAFE_MODULES:
            continue
        visited.add(node)
        if node in factorizing:
            return chain
        for succ in graph.successors(node):
            if succ not in visited:
                stack.append((succ, chain + [succ]))
    return None


_UNCOMPUTED: Optional[Node] = ("", "\0uncomputed")


def _finding(rule: str, perf: ModulePerf, site: PerfSite, message: str,
             spot: Optional[HotSpot], lines: Sequence[str]) -> Finding:
    if spot is not None:
        message += (f" [hot path: {spot.exclusive_s:.3f}s exclusive "
                    f"in span {spot.span}]")
    snippet = ""
    if 0 < site.line <= len(lines):
        snippet = lines[site.line - 1].strip()
    return Finding(rule=rule, severity="error" if spot else "warning",
                   path=perf.display, line=site.line, col=site.col,
                   message=message, snippet=snippet)


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
PERF_RULE_CATALOGUE: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo("PERF001", "scalar-solve-in-net-loop", "error",
                 "scalar linalg factorization reachable inside a loop "
                 "over nets/paths (batch via analysis/batch.py)"),
    DeepRuleInfo("PERF002", "per-iteration-allocation", "error",
                 "loop-invariant allocation or append-then-np.array "
                 "rebuild inside a hot loop (profile-gated)"),
    DeepRuleInfo("PERF003", "nested-design-scan", "error",
                 "nested iteration over design collections where a "
                 "reverse index exists"),
    DeepRuleInfo("PERF004", "cache-bypass", "error",
                 "direct EigenSolve/moment construction where the keyed "
                 "SolveCache/AWEStepCache entry points apply"),
    DeepRuleInfo("PERF005", "per-iteration-import-or-clock", "warning",
                 "import or wall-clock/formatting work under a loop"),
)

PERF_RULE_NAMES: Tuple[str, ...] = tuple(
    info.name for info in PERF_RULE_CATALOGUE)
