"""`repro.lint` — AST-based invariant linter for this repository.

Generic linters check style; this package checks the invariants the
reproduction's correctness actually rests on: deterministic (jobs- and
import-order-invariant) RNG and iteration discipline in the golden-label
pipeline, guarded linear algebra, the typed error-contract of
:mod:`repro.robustness.errors`, spawn-safe :func:`repro.parallel.parallel_map`
usage, and navigable documentation.  See docs/LINTING.md for the rule
catalogue, the suppression/baseline workflow, and how to add a rule.

On top of the per-file rules sits the **deep tier** (``--deep``): a
whole-program pass that builds per-module summaries (:mod:`.symbols`),
a project call graph (:mod:`.callgraph`), per-function CFGs (:mod:`.cfg`)
and a forward dataflow engine (:mod:`.dataflow`), then runs the FLOW
(:mod:`.flowrules`), SHAPE (:mod:`.shapes`) and UNIT (:mod:`.units`) rule
packs over them.  Summaries and findings are cached per content hash
(:mod:`.deep`), so a warm run re-analyzes only edited modules and their
transitive importers.  Three opt-in whole-program packs ride the same
machinery: CONC (:mod:`.concurrency`, lock discipline), PERF
(:mod:`.perf`, profile-guided performance rules ranked by measured
exclusive seconds from :mod:`.hotness`), and ARCH (:mod:`.layers`,
layer contracts from ``[tool.repro-lint.layers]``).

Typical use is through the CLI::

    repro lint src tools                       # text report, exit 1 on findings
    repro lint src tools --deep                # + FLOW/SHAPE/UNIT packs
    repro lint src tools --concurrency         # + CONC pack (implies --deep)
    repro lint src tools --perf --arch         # + PERF/ARCH packs
    repro lint src tools --deep --changed      # PR fast path (git diff gate)
    repro lint src --select ERR001,ERR002      # only the error-contract rules
    repro lint src tools --format json         # machine-readable repro-lint/4
    repro lint src tools --write-baseline      # grandfather current findings

and programmatically::

    from repro.lint import DeepAnalyzer, LintRunner, load_baseline
    result = LintRunner().run(["src", "tools"],
                              baseline=load_baseline("lint-baseline.json"),
                              deep=DeepAnalyzer())
    assert result.exit_code == 0, result.findings
"""

from .baseline import (BASELINE_SCHEMA, DEFAULT_BASELINE, BaselineEntry,
                       BaselineError, apply_baseline, load_baseline,
                       write_baseline)
from .callgraph import CallGraph
from .cfg import CFG, build_cfg, dump_cfg, function_cfgs
from .concurrency import (CONC_RULE_NAMES, LockGraph, build_lock_graph,
                          dump_lock_graph)
from .config import ConfigError, LintConfig, default_config, load_config
from .deep import (ANALYSIS_VERSION, DEEP_RULE_NAMES, DeepAnalyzer,
                   DeepStats)
from .engine import (PARSE_RULE, Finding, LintResult, LintRunner,
                     ModuleContext, ProjectRule, Rule, module_name,
                     python_files, suppressed_lines)
from .hotness import (HotnessProfile, HotSpot, ProfileError,
                      discover_default_profile, load_hotness)
from .layers import (ARCH_RULE_NAMES, LayerGraph, build_layer_graph,
                     dump_layer_graph, module_layer)
from .perf import PERF_RULE_NAMES, ModulePerf, extract_module_perf
from .report import (REPORT_SCHEMA, render_json, render_text,
                     report_document, rule_catalogue)
from .rules import TAXONOMY_ERRORS, default_rules
from .shapes import ShapeContract, parse_contract_text
from .symbols import ModuleSummary, SymbolTable, summarize_module
from .units import DeclarationError, UnitDeclarations, load_declarations

__all__ = [
    "ANALYSIS_VERSION", "ARCH_RULE_NAMES", "BASELINE_SCHEMA", "CFG",
    "CONC_RULE_NAMES", "CallGraph", "ConfigError", "DEEP_RULE_NAMES",
    "DEFAULT_BASELINE", "BaselineEntry", "BaselineError",
    "DeclarationError", "DeepAnalyzer", "DeepStats", "Finding",
    "HotSpot", "HotnessProfile", "LayerGraph", "LintConfig", "LintResult",
    "LintRunner", "LockGraph", "ModuleContext", "ModulePerf",
    "ModuleSummary", "PARSE_RULE", "PERF_RULE_NAMES", "ProfileError",
    "ProjectRule", "REPORT_SCHEMA", "Rule", "ShapeContract", "SymbolTable",
    "TAXONOMY_ERRORS", "UnitDeclarations", "apply_baseline",
    "build_cfg", "build_layer_graph", "build_lock_graph", "default_config",
    "default_rules", "discover_default_profile", "dump_cfg",
    "dump_layer_graph", "dump_lock_graph", "extract_module_perf",
    "function_cfgs", "load_baseline", "load_config", "load_declarations",
    "load_hotness", "module_layer", "module_name", "parse_contract_text",
    "python_files", "render_json", "render_text", "report_document",
    "rule_catalogue", "summarize_module", "suppressed_lines",
    "write_baseline",
]
