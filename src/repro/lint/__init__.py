"""`repro.lint` — AST-based invariant linter for this repository.

Generic linters check style; this package checks the invariants the
reproduction's correctness actually rests on: deterministic (jobs- and
import-order-invariant) RNG and iteration discipline in the golden-label
pipeline, guarded linear algebra, the typed error-contract of
:mod:`repro.robustness.errors`, spawn-safe :func:`repro.parallel.parallel_map`
usage, and navigable documentation.  See docs/LINTING.md for the rule
catalogue, the suppression/baseline workflow, and how to add a rule.

Typical use is through the CLI::

    repro lint src tools                       # text report, exit 1 on findings
    repro lint src --select ERR001,ERR002      # only the error-contract rules
    repro lint src tools --format json         # machine-readable repro-lint/1
    repro lint src tools --write-baseline      # grandfather current findings

and programmatically::

    from repro.lint import LintRunner, load_baseline
    result = LintRunner().run(["src", "tools"],
                              baseline=load_baseline("lint-baseline.json"))
    assert result.exit_code == 0, result.findings
"""

from .baseline import (BASELINE_SCHEMA, DEFAULT_BASELINE, BaselineEntry,
                       BaselineError, apply_baseline, load_baseline,
                       write_baseline)
from .engine import (PARSE_RULE, Finding, LintResult, LintRunner,
                     ModuleContext, ProjectRule, Rule, module_name,
                     python_files, suppressed_lines)
from .report import (REPORT_SCHEMA, render_json, render_text,
                     report_document, rule_catalogue)
from .rules import TAXONOMY_ERRORS, default_rules

__all__ = [
    "BASELINE_SCHEMA", "DEFAULT_BASELINE", "BaselineEntry", "BaselineError",
    "Finding", "LintResult", "LintRunner", "ModuleContext", "PARSE_RULE",
    "ProjectRule", "REPORT_SCHEMA", "Rule", "TAXONOMY_ERRORS",
    "apply_baseline", "default_rules", "load_baseline", "module_name",
    "python_files", "render_json", "render_text", "report_document",
    "rule_catalogue", "suppressed_lines", "write_baseline",
]
