"""Forward dataflow over :mod:`.cfg` graphs: engine plus two analyses.

The engine (:func:`run_forward`) is a classic worklist fixpoint for *may*
analyses: states are ``var -> frozenset(facts)`` environments, the join is
key-wise union, and a client supplies the per-statement transfer function.
Union joins converge because transfer functions here are monotone and the
fact sets are finite (bounded by the function's def sites).

Two concrete analyses ship with the engine:

* :class:`ReachingDefinitions` — which textual definitions of each name can
  reach each program point.  FLOW003 uses it to find the constructor call
  behind ``raise err`` when the error object was built earlier.
* :class:`TaintAnalysis` — a two-point taint lattice (clean / tainted-at-
  line) seeded by a client ``is_source`` predicate over call nodes and
  propagated through assignments.  FLOW001 instantiates it with
  "unseeded-RNG constructor" sources to catch generators that flow into
  ``parallel_map`` arguments.

Both deliberately ignore attribute stores, containers and aliasing — a
fact lost to a dict or an object attribute simply stops propagating, which
under-approximates taint and over-approximates cleanliness.  For lint-tier
findings that is the right bias: silence over noise.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from .cfg import CFG, Block, block_expressions, is_control

#: One dataflow environment: variable name -> set of opaque facts.
Env = Dict[str, FrozenSet[object]]

#: Per-statement transfer: ``(stmt, env) -> env`` (must not mutate input).
Transfer = Callable[[ast.stmt, Env], Env]


def join_envs(envs: List[Env]) -> Env:
    """Key-wise union of environments (the may-analysis join)."""
    merged: Dict[str, FrozenSet[object]] = {}
    for env in envs:
        for name, facts in env.items():
            existing = merged.get(name)
            merged[name] = facts if existing is None else existing | facts
    return merged


def run_forward(cfg: CFG, transfer: Transfer,
                initial: Optional[Env] = None) -> Dict[int, Tuple[Env, Env]]:
    """Fixpoint of a forward may-analysis; block index -> (in, out) envs."""
    preds = cfg.predecessors()
    states: Dict[int, Tuple[Env, Env]] = {}
    order = [b.index for b in cfg.blocks]
    worklist: List[int] = list(order)
    entry_env: Env = dict(initial or {})
    guard = 0
    limit = max(64, len(cfg.blocks) * len(cfg.blocks) * 4)
    while worklist:
        guard += 1
        if guard > limit * 8:
            break  # defensive: malformed graphs must not hang the linter
        index = worklist.pop(0)
        incoming = [states[p][1] for p, _ in preds[index] if p in states]
        env_in = join_envs(incoming)
        if index == cfg.entry:
            env_in = join_envs([entry_env, env_in])
        env_out = env_in
        for stmt in cfg.blocks[index].stmts:
            env_out = transfer(stmt, env_out)
        previous = states.get(index)
        states[index] = (env_in, env_out)
        if previous is None or previous[1] != env_out:
            for succ, _ in cfg.blocks[index].succs:
                if succ not in worklist:
                    worklist.append(succ)
    return states


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
class ReachingDefinitions:
    """Which ``(line, col)`` definition sites of each name reach each point.

    ``value_at(var, site)`` recovers the assigned AST expression of a def
    site, letting clients reason about *what* a name held — e.g. FLOW003
    resolving ``raise err`` back to ``err = NumericalError(...)``.
    """

    PARAM = ("param", 0, 0)

    def __init__(self, cfg: CFG, params: Optional[List[str]] = None) -> None:
        self.cfg = cfg
        self._values: Dict[Tuple[str, int, int], Optional[ast.expr]] = {}
        initial: Env = {name: frozenset({self.PARAM})
                        for name in (params or [])}
        self.states = run_forward(cfg, self._transfer, initial)

    # -- queries --------------------------------------------------------
    def defs_in(self, block: int, var: str) -> FrozenSet[object]:
        env_in, _ = self.states.get(block, ({}, {}))
        return env_in.get(var, frozenset())

    def value_at(self, var: str, site: object) -> Optional[ast.expr]:
        if not isinstance(site, tuple) or len(site) != 3:
            return None
        return self._values.get((var, site[1], site[2]))  # type: ignore

    def reaching_values(self, block: int, var: str) -> List[ast.expr]:
        """Assigned expressions of every def of ``var`` reaching ``block``."""
        values = []
        for site in sorted(self.defs_in(block, var),
                           key=lambda s: (str(s),)):
            value = self.value_at(var, site)
            if value is not None:
                values.append(value)
        return values

    # -- transfer -------------------------------------------------------
    def _transfer(self, stmt: ast.stmt, env: Env) -> Env:
        out = dict(env)
        for name, value, line, col in _definitions(stmt):
            key = ("def", line, col)
            self._values[(name, line, col)] = value
            out[name] = frozenset({key})
        return out


def _definitions(stmt: ast.stmt
                 ) -> Iterator[Tuple[str, Optional[ast.expr], int, int]]:
    """(name, assigned value or None, line, col) defined by one statement."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                yield name, stmt.value, stmt.lineno, stmt.col_offset
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in _target_names(stmt.target):
            yield name, stmt.value, stmt.lineno, stmt.col_offset
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            yield name, None, stmt.lineno, stmt.col_offset
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            yield name, None, stmt.lineno, stmt.col_offset
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    yield name, item.context_expr, stmt.lineno, \
                        stmt.col_offset


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# ----------------------------------------------------------------------
# Taint
# ----------------------------------------------------------------------
class TaintAnalysis:
    """Two-point taint lattice over locals, seeded by a source predicate.

    ``is_source(call)`` marks calls whose result is tainted; taint spreads
    through assignments whose right-hand side syntactically contains a
    tainted name or a source call, and dies on reassignment from clean
    expressions.  Facts are ``("taint", line, col)`` tuples naming the
    originating source call so findings can point at it.
    """

    def __init__(self, cfg: CFG,
                 is_source: Callable[[ast.Call], bool],
                 tainted_params: Optional[List[str]] = None) -> None:
        self.cfg = cfg
        self.is_source = is_source
        initial: Env = {name: frozenset({("taint", 0, 0)})
                        for name in (tainted_params or [])}
        self.states = run_forward(cfg, self._transfer, initial)

    def taints_in(self, block: int, var: str) -> FrozenSet[object]:
        env_in, _ = self.states.get(block, ({}, {}))
        return env_in.get(var, frozenset())

    def expr_taints(self, expr: ast.expr, env: Env) -> FrozenSet[object]:
        """Taint facts of an expression under an environment."""
        facts: FrozenSet[object] = frozenset()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                facts |= env.get(node.id, frozenset())
            elif isinstance(node, ast.Call) and self.is_source(node):
                facts |= frozenset({("taint", node.lineno, node.col_offset)})
        return facts

    def _transfer(self, stmt: ast.stmt, env: Env) -> Env:
        out = dict(env)
        if isinstance(stmt, ast.Assign):
            facts = self.expr_taints(stmt.value, env)
            for target in stmt.targets:
                for name in _target_names(target):
                    if facts:
                        out[name] = facts
                    else:
                        out.pop(name, None)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            facts = self.expr_taints(stmt.value, env)
            for name in _target_names(stmt.target):
                if facts:
                    out[name] = facts
                else:
                    out.pop(name, None)
        return out


def statement_expressions(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions evaluated by a statement *within its own block*."""
    if is_control(stmt):
        return block_expressions(stmt)
    exprs: List[ast.expr] = []
    for node in ast.iter_child_nodes(stmt):
        if isinstance(node, ast.expr):
            exprs.append(node)
    return exprs


def block_envs(states: Dict[int, Tuple[Env, Env]], block: Block,
               transfer: Transfer) -> Iterator[Tuple[ast.stmt, Env]]:
    """(statement, env-before-it) pairs of one block, replaying transfers.

    Lets clients inspect the environment at statement granularity without
    the engine having to store one env per statement.
    """
    env_in, _ = states.get(block.index, ({}, {}))
    env = env_in
    for stmt in block.stmts:
        yield stmt, env
        env = transfer(stmt, env)
