"""UNIT001: physical-unit inference over RC-timing code.

Wire timing code mixes three physical quantities — resistance (ohm),
capacitance (farad) and time (second) — and the classic silent bug is an
addition or assignment that mixes them (adding a raw ``resistance`` into a
``delay`` accumulator instead of ``resistance * cap``).  Python cannot see
the difference; this pass can, because the repo's naming is disciplined.

Units are exponent vectors over the (ohm, farad) basis, which makes the
algebra exact and tiny: ``ohm = (1, 0)``, ``farad = (0, 1)`` and — the
Elmore identity — ``second = ohm * farad = (1, 1)``.  Multiplication adds
vectors, division subtracts, addition/subtraction/assignment require equal
vectors.  A *declarations file* (JSON, path configured via
``[tool.repro-lint] unit-declarations``) maps variable/attribute names and
name suffixes to units; anything undeclared infers to *unknown*, and
unknown never flags — silence over noise, as everywhere in this linter.

The pass is scoped to modules whose dotted name contains one of the
declared ``scopes`` segments (default: ``analysis``, ``liberty``) so a
variable called ``resistance`` in unrelated code costs nothing.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .engine import Finding, SEVERITY_ERROR

UNIT_RULE = "UNIT001"

#: Exponent vectors over the (ohm, farad) basis.
Unit = Tuple[int, int]

BASE_UNITS: Dict[str, Unit] = {
    "ohm": (1, 0),
    "farad": (0, 1),
    "second": (1, 1),   # ohm * farad — the Elmore delay identity
    "scalar": (0, 0),
}

DEFAULT_DECLARATIONS: Dict[str, object] = {
    "scopes": ["analysis", "liberty"],
    "names": {
        "resistance": "ohm", "resistances": "ohm", "res": "ohm",
        "cap": "farad", "caps": "farad", "capacitance": "farad",
        "capacitances": "farad", "downstream_cap": "farad",
        "delay": "second", "delays": "second", "slew": "second",
        "slews": "second", "elmore": "second", "arrival": "second",
        "transition": "second",
    },
    "suffixes": {
        "_ohm": "ohm", "_ohms": "ohm", "_res": "ohm", "_resistance": "ohm",
        "_farad": "farad", "_farads": "farad", "_cap": "farad",
        "_caps": "farad", "_capacitance": "farad",
        "_second": "second", "_seconds": "second", "_delay": "second",
        "_delays": "second", "_slew": "second", "_time": "second",
        "_ps": "second", "_ns": "second",
    },
}

#: Call tails whose result carries the unit of their first argument.
_PASS_THROUGH_TAILS = frozenset({
    "sum", "abs", "max", "min", "amax", "amin", "maximum", "minimum",
    "mean", "median", "cumsum", "sort", "sorted", "copy", "asarray",
    "array", "float", "zeros_like", "full_like", "ravel", "flatten"})


class DeclarationError(ValueError):
    """The unit-declarations file exists but cannot be used."""


class UnitDeclarations:
    """Resolved name→unit tables plus the scoping rule."""

    def __init__(self, raw: Dict[str, object]) -> None:
        self.scopes: Tuple[str, ...] = tuple(
            str(s) for s in raw.get("scopes", []))  # type: ignore[union-attr]
        self.names: Dict[str, Unit] = {}
        self.suffixes: Dict[str, Unit] = {}
        for table, attr in (("names", self.names),
                            ("suffixes", self.suffixes)):
            entries = raw.get(table, {})
            if not isinstance(entries, dict):
                raise DeclarationError(f"{table!r} must be an object")
            for name, unit_name in entries.items():
                unit = BASE_UNITS.get(str(unit_name))
                if unit is None:
                    known = ", ".join(sorted(BASE_UNITS))
                    raise DeclarationError(
                        f"unknown unit {unit_name!r} for {name!r} "
                        f"(known: {known})")
                attr[str(name)] = unit

    def applies_to(self, module: str) -> bool:
        segments = set(module.split("."))
        return any(scope in segments for scope in self.scopes)

    def lookup(self, name: str) -> Optional[Unit]:
        """Unit of a bare identifier, by exact name then longest suffix."""
        unit = self.names.get(name)
        if unit is not None:
            return unit
        if name.endswith("s"):
            unit = self.names.get(name[:-1])
            if unit is not None:
                return unit
        best: Optional[Tuple[int, Unit]] = None
        for suffix, suffix_unit in self.suffixes.items():
            if name.endswith(suffix) and len(name) > len(suffix):
                if best is None or len(suffix) > best[0]:
                    best = (len(suffix), suffix_unit)
        return best[1] if best else None


def default_declarations() -> UnitDeclarations:
    return UnitDeclarations(dict(DEFAULT_DECLARATIONS))


def load_declarations(path: Optional[str]) -> UnitDeclarations:
    """Declarations from a JSON file, or the built-in defaults."""
    if path is None:
        return default_declarations()
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        raise DeclarationError(
            f"cannot load unit declarations {path!r}: {exc}") from exc
    if not isinstance(raw, dict):
        raise DeclarationError(f"{path!r} must hold a JSON object")
    return UnitDeclarations(raw)


def unit_name(unit: Unit) -> str:
    """Human name of an exponent vector (``ohm^2*farad`` when composite)."""
    for name, vector in BASE_UNITS.items():
        if vector == unit and name != "scalar":
            return name
    if unit == (0, 0):
        return "scalar"
    parts = []
    for exponent, base in zip(unit, ("ohm", "farad")):
        if exponent == 1:
            parts.append(base)
        elif exponent:
            parts.append(f"{base}^{exponent}")
    return "*".join(parts) if parts else "scalar"


class _Inferencer:
    """Bottom-up unit inference; records mismatches as it goes."""

    def __init__(self, declarations: UnitDeclarations, path: str,
                 lines: Sequence[str]) -> None:
        self.declarations = declarations
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []

    def _snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=UNIT_RULE, severity=SEVERITY_ERROR, path=self.path,
            line=node.lineno, col=node.col_offset, message=message,
            snippet=self._snippet(node.lineno)))

    # ------------------------------------------------------------------
    def infer(self, expr: ast.expr) -> Optional[Unit]:
        if isinstance(expr, ast.Name):
            return self.declarations.lookup(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.declarations.lookup(expr.attr)
        if isinstance(expr, ast.Subscript):
            return self.infer(expr.value)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.IfExp):
            return self._merge(expr, self.infer(expr.body),
                               self.infer(expr.orelse), "conditional")
        return None

    def _binop(self, expr: ast.BinOp) -> Optional[Unit]:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        if isinstance(expr.op, ast.Mult):
            if left is None or right is None:
                return None
            return (left[0] + right[0], left[1] + right[1])
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return (left[0] - right[0], left[1] - right[1])
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(expr.op, ast.Add) else "-"
            return self._merge(expr, left, right, op)
        return None

    def _merge(self, node: ast.AST, left: Optional[Unit],
               right: Optional[Unit], op: str) -> Optional[Unit]:
        if left is not None and right is not None and left != right:
            self._flag(node, f"unit mismatch: {unit_name(left)} {op} "
                             f"{unit_name(right)}; these quantities cannot "
                             f"be combined directly")
            return None
        return left if left is not None else right

    def _call(self, expr: ast.Call) -> Optional[Unit]:
        tail = None
        func = expr.func
        if isinstance(func, ast.Name):
            tail = func.id
        elif isinstance(func, ast.Attribute):
            tail = func.attr
        if tail in _PASS_THROUGH_TAILS and expr.args:
            return self.infer(expr.args[0])
        return None

    # ------------------------------------------------------------------
    def check_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_unit = self.infer(stmt.value)
            for target in stmt.targets:
                self._check_target(target, value_unit, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._check_target(stmt.target, self.infer(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            target_unit = self.infer(stmt.target)
            value_unit = self.infer(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) \
                    and target_unit is not None and value_unit is not None \
                    and target_unit != value_unit:
                self._flag(stmt, f"unit mismatch: accumulating "
                                 f"{unit_name(value_unit)} into a "
                                 f"{unit_name(target_unit)} quantity")
        elif isinstance(stmt, (ast.Expr, ast.Return)) \
                and stmt.value is not None:
            self.infer(stmt.value)

    def _check_target(self, target: ast.expr, value_unit: Optional[Unit],
                      stmt: ast.stmt) -> None:
        target_unit = self.infer(target) if isinstance(
            target, (ast.Name, ast.Attribute, ast.Subscript)) else None
        if target_unit is not None and value_unit is not None \
                and target_unit != value_unit:
            self._flag(stmt, f"unit mismatch: assigning "
                             f"{unit_name(value_unit)} to a "
                             f"{unit_name(target_unit)} name")


def check_units(module: str, path: str, tree: ast.Module,
                lines: Sequence[str],
                declarations: UnitDeclarations) -> Iterator[Finding]:
    """UNIT001 findings of one module (empty when out of scope)."""
    if not declarations.applies_to(module):
        return
    inferencer = _Inferencer(declarations, path, lines)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            inferencer.check_statement(node)
        elif isinstance(node, ast.BinOp) \
                and isinstance(node.op, (ast.Add, ast.Sub)):
            # Bare additions inside larger expressions (call args, returns).
            inferencer._merge(node, inferencer.infer(node.left),
                              inferencer.infer(node.right),
                              "+" if isinstance(node.op, ast.Add) else "-")
    seen = set()
    for finding in inferencer.findings:
        key = (finding.line, finding.col, finding.message)
        if key not in seen:
            seen.add(key)
            yield finding
