"""The ARCH pack: layer contracts over the import graph (``--arch``).

PreRoutGNN-style systems keep their scalability by strict partition
discipline; this repo keeps its import-time cost, testability and
parallel-worker safety the same way.  The contract is declared in
``pyproject.toml``:

.. code-block:: toml

    [tool.repro-lint.layers]
    obs  = []                          # zero-dep at import time
    nn   = ["obs", "robustness"]      # the model stack never sees design
    analysis = ["obs", "rcnet", "robustness"]

Each key names a **layer** — a top-level package under ``repro`` (the
second dotted segment: ``repro.analysis.awe`` is in layer ``analysis``;
``repro.cli`` is layer ``cli``) — and its value lists the layers it may
import from.  Rules:

* **ARCH001** (error): a module in a declared layer has a *top-level*
  import of another repro layer absent from its allowed list.  Deferred
  (function-scoped) imports are the sanctioned escape hatch: they create
  no import-time coupling, which is exactly what the contract protects —
  ``cli`` imports the world lazily and declares only ``core``.
* **ARCH002** (warning): a repro module's layer has no contract entry
  while a contract table exists — the table must stay exhaustive, so a
  new top-level package is a deliberate declaration, not an accident.

The check runs over the import graph the deep tier already builds
(:class:`~repro.lint.symbols.ModuleSummary` import sites carry line
numbers and a top-level flag), and :func:`dump_layer_graph` renders the
observed layer graph as a stable text golden.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .deep import DeepRuleInfo
from .engine import Finding
from .symbols import ModuleSummary

#: Bump when ARCH semantics change; feeds the cache fingerprint.
ARCH_PACK_VERSION = "repro-lint-arch/1"

#: The project namespace layers are defined under.
PROJECT_ROOT = "repro"


def module_layer(module: str) -> Optional[str]:
    """Layer of a dotted module name, or ``None`` outside the project.

    ``repro.analysis.awe`` → ``analysis``; the top-level ``repro``
    package itself (``repro``/``repro.cli``) maps to its second segment
    when present, else ``None`` (the root ``__init__`` belongs to no
    layer and is exempt — it *is* the public facade).
    """
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != PROJECT_ROOT:
        return None
    return parts[1]


@dataclass
class LayerGraph:
    """Observed layer-level import edges (top-level imports only)."""

    #: (source layer, target layer) → example ``display:line`` sites.
    edges: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    #: layers observed in the module set.
    layers: Set[str] = field(default_factory=set)

    def add(self, source: str, target: str, site: str) -> None:
        self.layers.update((source, target))
        self.edges.setdefault((source, target), []).append(site)

    def dump(self) -> str:
        """Stable text rendering for goldens: one line per source layer."""
        lines: List[str] = ["layer graph (top-level imports)"]
        deps: Dict[str, Set[str]] = {}
        for (source, target), _sites in self.edges.items():
            deps.setdefault(source, set()).add(target)
        for layer in sorted(self.layers):
            targets = sorted(deps.get(layer, set()))
            arrow = " ".join(targets) if targets else "(none)"
            lines.append(f"  {layer} -> {arrow}")
        return "\n".join(lines) + "\n"


def build_layer_graph(summaries: Dict[str, ModuleSummary]) -> LayerGraph:
    """The observed layer graph of a summarized module set."""
    graph = LayerGraph()
    for module in sorted(summaries):
        summary = summaries[module]
        layer = module_layer(module)
        if layer is None:
            continue
        graph.layers.add(layer)
        for target, line, toplevel in _import_sites(summary):
            if not toplevel:
                continue
            target_layer = module_layer(target)
            if target_layer is None or target_layer == layer:
                continue
            graph.add(layer, target_layer, f"{summary.path}:{line}")
    return graph


def run_arch(summaries: Dict[str, ModuleSummary],
             contracts: Dict[str, Tuple[str, ...]],
             check_modules: Sequence[str]
             ) -> Tuple[List[Finding], Dict[str, object]]:
    """ARCH findings for ``check_modules`` plus the report's arch block.

    ``summaries`` may cover more modules than are being linted (retained
    cache entries keep resolution whole); findings are only emitted for
    the modules in the current input set.
    """
    graph = build_layer_graph(summaries)
    findings: List[Finding] = []
    for module in sorted(check_modules):
        summary = summaries.get(module)
        if summary is None:
            continue
        findings.extend(_check_module(summary, contracts))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    violations = sum(1 for f in findings if f.rule == "ARCH001")
    stats: Dict[str, object] = {
        "layers_declared": len(contracts),
        "layers_observed": len(graph.layers),
        "edges": len(graph.edges),
        "findings": len(findings),
        "violations": violations,
    }
    return findings, stats


def _check_module(summary: ModuleSummary,
                  contracts: Dict[str, Tuple[str, ...]]) -> List[Finding]:
    layer = module_layer(summary.module)
    if layer is None or not contracts:
        return []
    findings: List[Finding] = []
    allowed = contracts.get(layer)
    if allowed is None:
        findings.append(Finding(
            rule="ARCH002", severity="warning", path=summary.path,
            line=1, col=0,
            message=(f"layer {layer!r} (module {summary.module}) has no "
                     f"entry in [tool.repro-lint.layers]; declare its "
                     f"allowed dependencies"),
            snippet=""))
        return findings
    permitted = set(allowed) | {layer}
    for target, line, toplevel in _import_sites(summary):
        if not toplevel:
            continue
        target_layer = module_layer(target)
        if target_layer is None or target_layer in permitted:
            continue
        findings.append(Finding(
            rule="ARCH001", severity="error", path=summary.path,
            line=line, col=0,
            message=(f"layer contract violation: {layer!r} may not "
                     f"import {target_layer!r} at module scope "
                     f"(allowed: {', '.join(sorted(allowed)) or 'none'}); "
                     f"defer the import into the using function if the "
                     f"coupling is intentional"),
            snippet=f"import {target}"))
    return findings


def _import_sites(summary: ModuleSummary
                  ) -> List[Tuple[str, int, bool]]:
    """``(imported module, line, toplevel)`` rows of one summary."""
    return [(site.module, site.line, site.toplevel)
            for site in summary.import_sites]


def dump_layer_graph(files: Sequence[str]) -> str:
    """Standalone stable layer-graph dump of a set of Python files.

    Golden-test entry point, parallel to
    :func:`~repro.lint.concurrency.dump_lock_graph`.
    """
    from .engine import display_path, module_name, python_files
    from .symbols import summarize_module

    summaries: Dict[str, ModuleSummary] = {}
    for path in python_files(files):
        module = module_name(path)
        if not module:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, UnicodeDecodeError, SyntaxError, ValueError):
            continue
        summaries[module] = summarize_module(
            module, display_path(path), tree, source.splitlines(),
            is_package=path.endswith("__init__.py"))
    return build_layer_graph(summaries).dump()


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
ARCH_RULE_CATALOGUE: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo("ARCH001", "layer-contract-violation", "error",
                 "module-scope import crosses layers against "
                 "[tool.repro-lint.layers]"),
    DeepRuleInfo("ARCH002", "undeclared-layer", "warning",
                 "repro layer missing from the layer-contract table"),
)

ARCH_RULE_NAMES: Tuple[str, ...] = tuple(
    info.name for info in ARCH_RULE_CATALOGUE)
