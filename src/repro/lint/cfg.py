"""Per-function control-flow graphs for the deep analysis tier.

:func:`build_cfg` lowers one function body to basic blocks connected by
control edges — the substrate the dataflow engine (:mod:`.dataflow`) runs
its fixpoint over.  The construction is deliberately statement-granular
and approximate where Python's dynamism makes precision expensive:

* ``if``/``while``/``for`` produce the usual diamond/loop shapes, with the
  control statement itself kept as the last statement of its block (its
  *test*/*iter* expressions evaluate there; bodies live in successor
  blocks — transfer functions must use :func:`block_expressions` instead
  of ``ast.walk`` on control statements).
* ``try`` adds an edge from every block of the ``try`` body to every
  handler — any statement may raise — plus the usual ``else`` path.
  ``finally`` bodies are appended on the join path; early exits (return
  inside ``try``) conservatively bypass them, which over-approximates
  paths and is the safe direction for may-analyses like leak detection.
* ``return``/``raise`` edge to the synthetic exit block.  ``raise`` edges
  are marked so path-sensitive clients (FLOW002 skips leak reports on
  pure exception paths) can tell normal from exceptional exit.
* ``break``/``continue`` edge to the innermost loop's exit/header.

:func:`dump_cfg` renders a stable text form used by the golden tests —
one line per block with its statements (``NodeType@line``) and successor
list, so structural regressions show up as readable diffs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Edge kinds: plain control flow vs. exceptional flow into exit/handlers.
EDGE_NORMAL = "normal"
EDGE_EXCEPT = "except"


@dataclass
class Block:
    """One basic block: straight-line statements plus outgoing edges."""

    index: int
    stmts: List[ast.stmt] = field(default_factory=list)
    #: (successor block index, edge kind) pairs, in creation order.
    succs: List[Tuple[int, str]] = field(default_factory=list)
    label: str = ""

    def successor_indices(self) -> List[int]:
        return [index for index, _ in self.succs]


@dataclass
class CFG:
    """Control-flow graph of one function."""

    name: str
    blocks: List[Block]
    entry: int = 0
    exit: int = 1

    def block(self, index: int) -> Block:
        return self.blocks[index]

    def predecessors(self) -> Dict[int, List[Tuple[int, str]]]:
        """Block index -> list of (predecessor index, edge kind)."""
        preds: Dict[int, List[Tuple[int, str]]] = {
            b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ, kind in block.succs:
                preds[succ].append((block.index, kind))
        return preds

    def reachable(self) -> Set[int]:
        """Indices of blocks reachable from the entry."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(s for s, _ in self.blocks[index].succs)
        return seen


class _Builder:
    def __init__(self, name: str) -> None:
        self.blocks: List[Block] = []
        self.cfg = CFG(name=name, blocks=self.blocks)
        self._new_block(label="entry")   # index 0
        self._new_block(label="exit")    # index 1
        self.current: Optional[int] = 0
        #: (header index, exit-join placeholder) per open loop.
        self.loops: List[Tuple[int, Block]] = []

    # -- low-level ------------------------------------------------------
    def _new_block(self, label: str = "") -> Block:
        block = Block(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int, kind: str = EDGE_NORMAL) -> None:
        pair = (dst, kind)
        block = self.blocks[src]
        if pair not in block.succs:
            block.succs.append(pair)

    def _append(self, stmt: ast.stmt) -> None:
        if self.current is None:
            # Dead code after return/raise/break: park it in a fresh
            # unreachable block so its statements still exist for dumps.
            self.current = self._new_block().index
        self.blocks[self.current].stmts.append(stmt)

    def _terminate(self, *targets: Tuple[int, str]) -> None:
        assert self.current is not None
        for dst, kind in targets:
            self._edge(self.current, dst, kind)
        self.current = None

    def _resume(self) -> int:
        block = self._new_block()
        self.current = block.index
        return block.index

    # -- statement dispatch ----------------------------------------------
    def body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._terminate((self.cfg.exit, EDGE_NORMAL))
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            self._terminate((self.cfg.exit, EDGE_EXCEPT))
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self.loops:
                _, join = self.loops[-1]
                self._terminate((join.index, EDGE_NORMAL))
            else:
                self._terminate((self.cfg.exit, EDGE_NORMAL))
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self.loops:
                header, _ = self.loops[-1]
                self._terminate((header, EDGE_NORMAL))
            else:
                self._terminate((self.cfg.exit, EDGE_NORMAL))
        else:
            self._append(stmt)

    def _if(self, stmt: ast.If) -> None:
        self._append(stmt)
        assert self.current is not None
        cond = self.current
        join = self._new_block()
        then = self._new_block()
        self._edge(cond, then.index)
        self.current = then.index
        self.body(stmt.body)
        if self.current is not None:
            self._terminate((join.index, EDGE_NORMAL))
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(cond, orelse.index)
            self.current = orelse.index
            self.body(stmt.orelse)
            if self.current is not None:
                self._terminate((join.index, EDGE_NORMAL))
        else:
            self._edge(cond, join.index)
        self.current = join.index

    def _loop(self, stmt: ast.stmt) -> None:
        if self.current is None:
            self._resume()
        assert self.current is not None
        header = self._new_block()
        self._edge(self.current, header.index)
        header.stmts.append(stmt)
        join = self._new_block()
        body = self._new_block()
        self._edge(header.index, body.index)
        self._edge(header.index, join.index)
        self.loops.append((header.index, join))
        self.current = body.index
        self.body(getattr(stmt, "body", []))
        if self.current is not None:
            self._terminate((header.index, EDGE_NORMAL))
        self.loops.pop()
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            self.current = join.index
            self.body(orelse)
        else:
            self.current = join.index

    def _try(self, stmt: ast.Try) -> None:
        if self.current is None:
            self._resume()
        assert self.current is not None
        before = self.current
        body_entry = self._new_block()
        self._edge(before, body_entry.index)
        join = self._new_block()

        body_blocks_start = len(self.blocks)
        self.current = body_entry.index
        self.body(stmt.body)
        body_end = self.current
        body_blocks = [body_entry.index] + [
            b.index for b in self.blocks[body_blocks_start:]]

        handler_entries: List[int] = []
        for handler in stmt.handlers:
            entry = self._new_block()
            handler_entries.append(entry.index)
            self.current = entry.index
            self.body(handler.body)
            if self.current is not None:
                self._terminate((join.index, EDGE_NORMAL))
        # Any statement of the try body may raise into any handler.
        for index in body_blocks:
            for entry in handler_entries:
                self._edge(index, entry, EDGE_EXCEPT)
        self.current = body_end
        if self.current is not None:
            if stmt.orelse:
                self.body(stmt.orelse)
            if self.current is not None:
                self._terminate((join.index, EDGE_NORMAL))
        if stmt.finalbody:
            self.current = join.index
            self.body(stmt.finalbody)
        else:
            self.current = join.index

    def _with(self, stmt: ast.stmt) -> None:
        self._append(stmt)
        self.body(getattr(stmt, "body", []))


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """The control-flow graph of one function definition."""
    builder = _Builder(fn.name)
    builder.body(fn.body)
    if builder.current is not None:
        builder._terminate((builder.cfg.exit, EDGE_NORMAL))
    return builder.cfg


def block_expressions(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions a *control* statement evaluates inside its own block.

    Bodies of compound statements live in successor blocks, so transfer
    functions must not ``ast.walk`` an ``if``/``while``/``for``/``with``
    statement — this helper returns just the parts that execute in place.
    Plain statements return themselves wrapped implicitly: callers should
    walk non-control statements directly.
    """
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return []


def is_control(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                             ast.With, ast.AsyncWith, ast.Try))


def dump_cfg(cfg: CFG) -> str:
    """Stable text rendering for golden tests and debugging."""
    lines = [f"cfg {cfg.name} entry=B{cfg.entry} exit=B{cfg.exit}"]
    for block in cfg.blocks:
        stmts = " ".join(f"{type(s).__name__}@{s.lineno}"
                         for s in block.stmts) or "-"
        succs = ", ".join(
            f"B{index}" + ("!" if kind == EDGE_EXCEPT else "")
            for index, kind in block.succs) or "-"
        label = f" ({block.label})" if block.label else ""
        lines.append(f"B{block.index}{label}: {stmts} -> {succs}")
    return "\n".join(lines)


def function_cfgs(tree: ast.Module) -> Iterator[Tuple[str, CFG]]:
    """CFGs of every top-level function and method of a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, build_cfg(node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", build_cfg(item)
