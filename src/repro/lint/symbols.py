"""Project-wide symbol table: per-module summaries for cross-module analysis.

The deep (``--deep``) tier analyses the project one module at a time but
reasons across modules: a ``parallel_map`` call in ``repro.data.generate``
may name a task function defined in ``repro.analysis.simulator`` through two
levels of aliased re-export.  The bridge is the :class:`ModuleSummary` — a
JSON-serializable digest of one module holding exactly the facts the
cross-module rule packs consume:

* the **import alias table** (``import numpy as np`` → ``np``,
  ``from ..obs import get_metrics`` → ``get_metrics``), with relative
  imports resolved against the module's dotted name;
* every **top-level function and method** with its parameter list, the
  dotted call targets it makes, its unseeded-RNG creation sites (the FLOW001
  sources), and its shape/dtype contract when annotated (SHAPE001/002);
* every **parallel_map call site** with the task-function expression.

Summaries are what the incremental cache persists: they are derived purely
from one module's source text, so a module's summary is valid exactly as
long as its content hash — cross-module *findings* are recomputed from
summaries instead (see :mod:`repro.lint.deep`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .shapes import ShapeContract, parse_contract

#: Call names (canonical, alias-resolved) that create an unseeded or
#: process-global NumPy generator — the FLOW001 taint sources.
UNSEEDED_RNG_CALLS = frozenset({
    "numpy.random.default_rng",  # only when called with no arguments
})

LEGACY_RNG_PREFIX = "numpy.random."
LEGACY_RNG_TAILS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice", "shuffle",
    "permutation", "get_state", "set_state"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call made inside a function body, by written dotted name."""

    name: str
    line: int
    col: int

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CallSite":
        return cls(str(raw["name"]), int(raw["line"]), int(raw["col"]))


@dataclass
class RngSource:
    """One unseeded / process-global RNG creation site (FLOW001 source)."""

    line: int
    col: int
    what: str

    def as_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "col": self.col, "what": self.what}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RngSource":
        return cls(int(raw["line"]), int(raw["col"]), str(raw["what"]))


@dataclass
class ParallelMapSite:
    """One ``parallel_map(...)`` call with its task-function expression."""

    line: int
    col: int
    #: Dotted name of the task argument as written (``"run_task"``,
    #: ``"simulator.label_net"``) or ``"<lambda>"`` / ``"<expr>"``.
    task: str

    def as_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "col": self.col, "task": self.task}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ParallelMapSite":
        return cls(int(raw["line"]), int(raw["col"]), str(raw["task"]))


@dataclass
class FunctionSummary:
    """Cross-module-relevant facts of one function or method."""

    qualname: str
    line: int
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    rng_sources: List[RngSource] = field(default_factory=list)
    parallel_maps: List[ParallelMapSite] = field(default_factory=list)
    contract: Optional[ShapeContract] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "calls": [c.as_dict() for c in self.calls],
            "rng_sources": [r.as_dict() for r in self.rng_sources],
            "parallel_maps": [p.as_dict() for p in self.parallel_maps],
            "contract": self.contract.as_dict() if self.contract else None,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FunctionSummary":
        contract = raw.get("contract")
        return cls(
            qualname=str(raw["qualname"]), line=int(raw["line"]),
            params=[str(p) for p in raw.get("params", [])],
            calls=[CallSite.from_dict(c) for c in raw.get("calls", [])],
            rng_sources=[RngSource.from_dict(r)
                         for r in raw.get("rng_sources", [])],
            parallel_maps=[ParallelMapSite.from_dict(p)
                           for p in raw.get("parallel_maps", [])],
            contract=ShapeContract.from_dict(contract) if contract else None)


@dataclass
class ImportSite:
    """One import statement: target module, line, and execution scope.

    ``toplevel`` is True when the statement runs at module import time
    (module body, including under ``if``/``try`` guards) and False for
    deferred imports inside a function — the distinction the ARCH layer
    contracts are defined over.
    """

    module: str
    line: int
    toplevel: bool

    def as_dict(self) -> List[Any]:
        return [self.module, self.line, self.toplevel]

    @classmethod
    def from_dict(cls, raw: List[Any]) -> "ImportSite":
        return cls(str(raw[0]), int(raw[1]), bool(raw[2]))


@dataclass
class ModuleSummary:
    """Serializable whole-module digest for the deep analysis tier."""

    module: str
    path: str
    is_package: bool = False
    #: alias → (target module, symbol or None).  ``import numpy as np``
    #: maps ``np`` to ``("numpy", None)``; ``from .pool import parallel_map``
    #: in ``repro.parallel`` maps ``parallel_map`` to
    #: ``("repro.parallel.pool", "parallel_map")``.
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    #: imported module names (the import-graph edges, pre-filter).
    imported_modules: List[str] = field(default_factory=list)
    #: every import statement with line and scope (the ARCH pack's input).
    import_sites: List[ImportSite] = field(default_factory=list)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "imports": {alias: [target, symbol]
                        for alias, (target, symbol)
                        in sorted(self.imports.items())},
            "imported_modules": sorted(set(self.imported_modules)),
            "import_sites": [site.as_dict() for site in self.import_sites],
            "functions": {name: fn.as_dict()
                          for name, fn in sorted(self.functions.items())},
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=str(raw["module"]), path=str(raw["path"]),
            is_package=bool(raw.get("is_package", False)),
            imports={alias: (str(pair[0]),
                             None if pair[1] is None else str(pair[1]))
                     for alias, pair in raw.get("imports", {}).items()},
            imported_modules=[str(m)
                              for m in raw.get("imported_modules", [])],
            import_sites=[ImportSite.from_dict(site)
                          for site in raw.get("import_sites", [])],
            functions={name: FunctionSummary.from_dict(fn)
                       for name, fn in raw.get("functions", {}).items()})


def resolve_relative(module: str, is_package: bool, level: int,
                     target: Optional[str]) -> Optional[str]:
    """Absolute module named by a ``from ...target import x`` statement."""
    if level == 0:
        return target
    parts = module.split(".") if module else []
    # level 1 is "this package": drop the module's own basename unless the
    # module *is* the package (__init__), then drop level-1 more.
    drop = level if not is_package else level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def summarize_module(module: str, path: str, tree: ast.Module,
                     lines: List[str], is_package: bool = False
                     ) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed module."""
    summary = ModuleSummary(module=module, path=path, is_package=is_package)
    _collect_imports(summary, tree)
    for qualname, node in _function_defs(tree):
        summary.functions[qualname] = _summarize_function(
            summary, qualname, node, lines)
    return summary


def _collect_imports(summary: ModuleSummary, tree: ast.Module,
                     toplevel: bool = True) -> None:
    """Collect aliases + import sites, tracking function nesting.

    Aliases are collected everywhere (a deferred import still binds the
    name later call sites use); ``toplevel`` only marks whether each site
    executes at module import time, which the ARCH pack keys on.
    """
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                summary.imports[bound] = (target, None)
                summary.imported_modules.append(alias.name)
                summary.import_sites.append(ImportSite(
                    alias.name, node.lineno, toplevel))
        elif isinstance(node, ast.ImportFrom):
            target = resolve_relative(summary.module, summary.is_package,
                                      node.level, node.module)
            if target is None:
                continue
            summary.imported_modules.append(target)
            summary.import_sites.append(ImportSite(
                target, node.lineno, toplevel))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                summary.imports[bound] = (target, alias.name)
        else:
            inner_toplevel = toplevel and not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            _collect_imports(summary, node, inner_toplevel)  # type: ignore[arg-type]


def _function_defs(tree: ast.Module
                   ) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Top-level functions and class methods with their local qualnames."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def _summarize_function(summary: ModuleSummary, qualname: str,
                        node: ast.FunctionDef,
                        lines: List[str]) -> FunctionSummary:
    args = node.args
    params = [a.arg for a in (args.posonlyargs + args.args
                              + args.kwonlyargs)]
    fn = FunctionSummary(qualname=qualname, line=node.lineno, params=params,
                         contract=parse_contract(node, lines))
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        written = dotted_name(inner.func)
        if written is None:
            continue
        fn.calls.append(CallSite(written, inner.lineno, inner.col_offset))
        canonical = canonical_name(summary, written)
        if _is_unseeded_rng(canonical, inner):
            fn.rng_sources.append(RngSource(
                inner.lineno, inner.col_offset, canonical))
        if canonical.split(".")[-1] == "parallel_map":
            fn.parallel_maps.append(ParallelMapSite(
                inner.lineno, inner.col_offset, _task_expr(inner)))
    return fn


def _task_expr(call: ast.Call) -> str:
    expr: Optional[ast.expr] = call.args[0] if call.args else None
    for keyword in call.keywords:
        if keyword.arg == "fn":
            expr = keyword.value
    if expr is None:
        return "<missing>"
    if isinstance(expr, ast.Lambda):
        return "<lambda>"
    written = dotted_name(expr)
    return written if written is not None else "<expr>"


def _is_unseeded_rng(canonical: str, call: ast.Call) -> bool:
    if canonical in UNSEEDED_RNG_CALLS:
        return not call.args and not call.keywords
    if canonical.startswith(LEGACY_RNG_PREFIX) \
            and canonical[len(LEGACY_RNG_PREFIX):] in LEGACY_RNG_TAILS:
        return True
    return False


def canonical_name(summary: ModuleSummary, written: str) -> str:
    """Alias-expand a written dotted name against one module's imports.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` under
    ``import numpy as np``; names with no matching alias come back
    unchanged.  Only the first segment is an alias candidate — Python
    resolves attribute chains left to right.
    """
    head, _, rest = written.partition(".")
    target = summary.imports.get(head)
    if target is None:
        return written
    module, symbol = target
    base = f"{module}.{symbol}" if symbol else module
    return f"{base}.{rest}" if rest else base


class SymbolTable:
    """All module summaries plus cross-module name resolution.

    Resolution chases re-exports: ``repro.parallel.parallel_map`` (the
    package ``__init__`` alias) resolves to the defining
    ``repro.parallel.pool.parallel_map`` as long as each hop is a
    ``from X import y`` binding recorded in a summary.
    """

    #: Re-export chains longer than this are abandoned (cycle guard).
    MAX_HOPS = 8

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries

    def module(self, name: str) -> Optional[ModuleSummary]:
        return self.summaries.get(name)

    # ------------------------------------------------------------------
    def resolve(self, module: str, written: str
                ) -> Optional[Tuple[str, str]]:
        """``(defining module, symbol)`` for a written name, if findable.

        ``module`` is where the name appears; ``written`` is the dotted
        text at the call site.  Returns ``None`` when the chain leaves the
        summarized project or never lands on a known definition.
        """
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if written in summary.functions:
            return module, written  # plain same-module call
        canonical = canonical_name(summary, written)
        return self._chase(canonical)

    def _chase(self, canonical: str) -> Optional[Tuple[str, str]]:
        for _ in range(self.MAX_HOPS):
            split = self._split_known(canonical)
            if split is None:
                return None
            target_module, symbol = split
            summary = self.summaries[target_module]
            if symbol in summary.functions:
                return target_module, symbol
            via = summary.imports.get(symbol)
            if via is None:
                return None
            module, inner = via
            canonical = f"{module}.{inner}" if inner else module
        return None

    def _split_known(self, canonical: str) -> Optional[Tuple[str, str]]:
        """Split ``a.b.c.f`` into (longest known module prefix, remainder)."""
        parts = canonical.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.summaries:
                remainder = ".".join(parts[cut:])
                return module, remainder
        return None

    def function(self, module: str, symbol: str
                 ) -> Optional[FunctionSummary]:
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return summary.functions.get(symbol)
