"""The repo's invariant rule pack.

Every rule encodes a discipline this codebase actually depends on — the
kind of silent-correctness property a generic linter has no opinion on but
whose violation corrupts golden labels, training runs, or the degradation
accounting:

==========  ==========================================================
DET001      no process-global / unseeded / import-time NumPy RNG use
DET002      no ``random`` stdlib module (process-global RNG)
DET003      no wall-clock reads in deterministic pipeline modules
DET004      no iteration over sets (hash-randomized order)
NUM001      no raw ``np.linalg`` solves outside the guarded modules
NUM002      no ``==``/``!=`` against float literals in numeric modules
ERR001      no bare ``except:``
ERR002      broad ``except Exception`` must re-raise or use the taxonomy
PAR001      ``parallel_map`` callables must be module-level functions
PAR002      task functions must not read module-level mutable state
DOC001      internal markdown links must resolve (non-AST rule)
==========  ==========================================================

Rules are heuristics over the AST, not a type system: they catch the
patterns this repo has been bitten by, and anything they cannot prove is
left alone.  Intentional violations carry an inline
``# repro-lint: disable=RULE`` waiver with a justification (see
docs/LINTING.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .docrules import DocLinkRule
from .engine import SEVERITY_WARNING, Finding, ModuleContext, Rule

#: Exception types of :mod:`repro.robustness.errors`; constructing (or
#: raising) one inside a broad handler satisfies the ERR002 contract.
TAXONOMY_ERRORS = ("EstimationError", "InputError", "NumericalError",
                   "ModelError", "WorkerError")

#: Legacy ``np.random`` module-level functions that mutate process-global
#: RNG state.  ``default_rng``/``SeedSequence``/``Generator`` are the
#: sanctioned replacements and are absent on purpose.
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice", "shuffle",
    "permutation", "beta", "gamma", "poisson", "exponential", "binomial",
    "get_state", "set_state"})

#: ``np.linalg`` operations that must run behind the guard wrappers of
#: :mod:`repro.robustness.guards` / :mod:`repro.analysis` (condition-number
#: checks, typed NumericalError conversion).
LINALG_OPS = frozenset({"solve", "inv", "pinv", "eig", "eigh", "eigvals",
                        "eigvalsh", "lstsq", "cholesky", "svd",
                        "matrix_power", "tensorsolve", "tensorinv"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_np_random(dotted: str) -> bool:
    head = dotted.split(".")
    return len(head) >= 2 and head[0] in ("np", "numpy") \
        and head[1] == "random"


def _import_time_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes whose code executes when the module is imported.

    Function and lambda *bodies* are skipped (they run later, on call);
    their decorators and default-argument expressions do execute at import
    time and are included.  Class bodies execute at import time too.
    """
    stack: List[ast.AST] = []
    stack.extend(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _has_segment(ctx: ModuleContext, segments: Sequence[str]) -> bool:
    parts = ctx.segments()
    return any(segment in parts for segment in segments)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class LegacyGlobalRngRule(Rule):
    """DET001 — NumPy RNG use that breaks jobs-invariant reproducibility.

    Three shapes are flagged: the legacy process-global API
    (``np.random.seed`` / ``np.random.rand`` / ...), ``default_rng()``
    called without a seed, and *any* ``np.random`` call at module scope
    (import-time RNG state makes results depend on import order).  The
    sanctioned pattern is a seeded ``np.random.Generator`` passed as a
    parameter, with per-task streams from ``SeedSequence.spawn``.
    """

    name = "DET001"
    slug = "legacy-global-rng"
    summary = "process-global, unseeded, or import-time NumPy RNG use"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is None or not _is_np_random(dotted):
            return
        tail = dotted.split(".")[-1]
        if tail in LEGACY_NP_RANDOM:
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                f"{dotted}() uses the process-global RNG; pass a seeded "
                f"np.random.Generator parameter instead")
        elif tail == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                "np.random.default_rng() without a seed is nondeterministic;"
                " derive the seed from the workload seed "
                "(np.random.SeedSequence.spawn)")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in _import_time_nodes(ctx.tree.body):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or not _is_np_random(dotted):
                continue
            if dotted.split(".")[-1] in LEGACY_NP_RANDOM:
                continue  # already flagged by the per-node hook
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                f"{dotted}() at module scope creates RNG state at import "
                f"time; construct generators inside the code that uses them")


class StdlibRandomRule(Rule):
    """DET002 — the ``random`` stdlib module is process-global RNG state."""

    name = "DET002"
    slug = "stdlib-random"
    summary = "import of the process-global `random` stdlib module"
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module] if node.module else []
        for name in names:
            if name == "random" or name.startswith("random."):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    "stdlib `random` is process-global RNG state; use a "
                    "seeded np.random.Generator parameter instead")


class WallClockRule(Rule):
    """DET003 — wall-clock reads inside deterministic pipeline modules.

    ``time.time()`` / ``datetime.now()`` in a label, hash, or feature path
    makes output depend on when it ran; timestamps belong to the
    observability layer (``repro.obs``) and the CLI, which are excluded.
    ``time.perf_counter()`` (duration, not date) stays legal everywhere.
    """

    name = "DET003"
    slug = "wall-clock-in-pipeline"
    summary = "wall-clock read (time.time / datetime.now) in pipeline code"
    node_types = (ast.Call,)

    def __init__(self,
                 exempt_segments: Optional[Tuple[str, ...]] = None) -> None:
        #: Module segments where wall-clock reads are the *job* (telemetry,
        #: bench stamping, user-facing CLI) rather than a determinism
        #: hazard.  Configured via ``[tool.repro-lint] det003-exempt``.
        if exempt_segments is None:
            from .config import default_config
            exempt_segments = default_config().det003_exempt
        self.exempt_segments: Tuple[str, ...] = exempt_segments

    _CLOCKS = frozenset({
        "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
        "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "date.today", "datetime.date.today"})

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _has_segment(ctx, self.exempt_segments):
            return
        dotted = dotted_name(node.func)
        if dotted in self._CLOCKS:
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                f"{dotted}() reads the wall clock inside a pipeline module; "
                f"timestamps belong in repro.obs / the CLI (use "
                f"time.perf_counter() for durations)")


class SetIterationRule(Rule):
    """DET004 — iterating a set feeds hash-randomized order downstream.

    Set iteration order varies across processes (PYTHONHASHSEED), so a
    ``for`` loop or comprehension over a set feeding ordered output — a
    report, a feature vector, a BLAKE2b content key — is a determinism bug
    even when each element is individually correct.  Sort first
    (``sorted(...)``) or keep a list.  Membership tests and ``len(set())``
    remain free.
    """

    name = "DET004"
    slug = "unordered-set-iteration"
    summary = "iteration over a set (hash-randomized order)"
    node_types = (ast.For, ast.comprehension)

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        iter_expr = node.iter if isinstance(node, (ast.For,
                                                   ast.comprehension)) \
            else None
        if iter_expr is None or not self._is_set_expr(iter_expr):
            return
        yield self.finding(
            ctx, iter_expr.lineno, iter_expr.col_offset,
            "iterating a set yields hash-randomized order; wrap it in "
            "sorted(...) before feeding ordered output or content hashes")


# ----------------------------------------------------------------------
# Numerical safety
# ----------------------------------------------------------------------
class UnguardedLinalgRule(Rule):
    """NUM001 — raw linear algebra outside the guarded modules.

    ``np.linalg.solve``/``eigh``/``inv`` on a near-singular operator
    silently returns garbage within float tolerance; this repo's contract
    is that such calls live in :mod:`repro.analysis` (next to the
    condition-number checks) or :mod:`repro.robustness.guards` (the typed
    wrappers) so failures become :class:`NumericalError` instead of wrong
    timing numbers.
    """

    name = "NUM001"
    slug = "unguarded-linalg"
    summary = "raw np.linalg call outside repro.analysis / guards"
    node_types = (ast.Call,)
    #: Modules allowed to touch np.linalg directly: any module under a
    #: segment in ``allowed_segments`` or whose last segment is listed in
    #: ``allowed_modules``.
    allowed_segments: Tuple[str, ...] = ("analysis",)
    allowed_modules: Tuple[str, ...] = ("guards",)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[-1] not in LINALG_OPS or "linalg" not in parts[:-1]:
            return
        if _has_segment(ctx, self.allowed_segments):
            return
        if ctx.segments() and ctx.segments()[-1] in self.allowed_modules:
            return
        yield self.finding(
            ctx, node.lineno, node.col_offset,
            f"raw {dotted}() outside repro.analysis/guards; use the guard "
            f"wrappers of repro.robustness.guards (typed NumericalError, "
            f"condition-number check) instead")


class FloatEqualityRule(Rule):
    """NUM002 — ``==``/``!=`` against a float literal in numeric modules.

    Exact float equality is almost never what timing math means: values
    arrive through solves and quadrature sums, so ``x == 0.1`` is
    satisfied or missed by rounding noise.  Compare against a tolerance
    (``math.isclose``, ``np.isclose``) or restructure.  Comparisons in
    non-numeric modules and against integer literals are left alone; the
    deliberate exact-zero sentinel guards elsewhere in the repo sit
    outside this rule's scope for that reason.
    """

    name = "NUM002"
    slug = "float-equality"
    severity = SEVERITY_WARNING
    summary = "exact ==/!= against a float literal in numeric modules"
    node_types = (ast.Compare,)
    #: Module segments considered "numeric" (the paper's math core).
    scope_segments: Tuple[str, ...] = ("analysis", "rcnet")

    @staticmethod
    def _float_literal(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and type(node.value) is float

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        if self.scope_segments and not _has_segment(ctx, self.scope_segments):
            return
        operands = [node.left] + list(node.comparators)
        for op, right in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(self._float_literal(x) for x in operands):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    "exact float equality is brittle under rounding; use "
                    "math.isclose/np.isclose or an explicit tolerance")
                return


# ----------------------------------------------------------------------
# Error contracts
# ----------------------------------------------------------------------
class BareExceptRule(Rule):
    """ERR001 — ``except:`` swallows KeyboardInterrupt and SystemExit."""

    name = "ERR001"
    slug = "bare-except"
    summary = "bare except: catches KeyboardInterrupt/SystemExit"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                "bare except: catches KeyboardInterrupt/SystemExit; name "
                "the exception types (narrowest that works)")


class BroadExceptContractRule(Rule):
    """ERR002 — broad handlers must keep failures typed and traceable.

    ``except Exception`` is allowed only when the handler re-raises
    (possibly converted) or routes the failure through the
    :mod:`repro.robustness.errors` taxonomy so provenance (net, design,
    stage) survives.  Designed swallow-and-degrade sites carry an inline
    ``# repro-lint: disable=ERR002`` waiver with a justification.
    """

    name = "ERR002"
    slug = "broad-except-contract"
    summary = "except Exception without re-raise or taxonomy conversion"
    node_types = (ast.ExceptHandler,)

    @staticmethod
    def _catches_broad(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return False  # ERR001's territory
        candidates = type_node.elts if isinstance(type_node, ast.Tuple) \
            else [type_node]
        return any(isinstance(c, ast.Name)
                   and c.id in ("Exception", "BaseException")
                   for c in candidates)

    @staticmethod
    def _satisfies_contract(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    if dotted is not None \
                            and dotted.split(".")[-1] in TAXONOMY_ERRORS:
                        return True
        return False

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if not self._catches_broad(node.type):
            return
        if self._satisfies_contract(node.body):
            return
        yield self.finding(
            ctx, node.lineno, node.col_offset,
            "broad except Exception neither re-raises nor converts to the "
            "repro.robustness.errors taxonomy; type the failure (keeping "
            "net/stage provenance) or attach a justified "
            "`# repro-lint: disable=ERR002` waiver")


# ----------------------------------------------------------------------
# Parallel safety
# ----------------------------------------------------------------------
def _parallel_map_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] == "parallel_map":
            yield node


def _task_and_initializer_args(call: ast.Call
                               ) -> Iterator[Tuple[str, ast.expr]]:
    if call.args:
        yield "task function", call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "fn":
            yield "task function", keyword.value
        elif keyword.arg == "initializer":
            yield "initializer", keyword.value


class ParallelCallableRule(Rule):
    """PAR001 — ``parallel_map`` callables must be module-level functions.

    A lambda or nested function handed to the process pool drags its
    closure through pickle: it fails outright under the ``spawn`` start
    method and, worse, under ``fork`` it silently snapshots parent state
    (RNGs, caches) at fork time.  Only module-level functions are safe
    under every start method.
    """

    name = "PAR001"
    slug = "parallel-callable"
    summary = "lambda / nested function passed to parallel_map"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is not node and isinstance(
                            inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(inner.name)
        for call in _parallel_map_calls(ctx.tree):
            for role, expr in _task_and_initializer_args(call):
                if isinstance(expr, ast.Lambda):
                    yield self.finding(
                        ctx, expr.lineno, expr.col_offset,
                        f"lambda as parallel_map {role} is not picklable "
                        f"under the spawn start method; use a module-level "
                        f"function")
                elif isinstance(expr, ast.Name) and expr.id in nested:
                    yield self.finding(
                        ctx, expr.lineno, expr.col_offset,
                        f"parallel_map {role} {expr.id!r} is defined inside "
                        f"another function; closures are not spawn-safe — "
                        f"hoist it to module level")


class ParallelMutableGlobalRule(Rule):
    """PAR002 — task functions must not read module-level mutable state.

    Under ``fork`` a task function reading a module-level list/dict/RNG
    sees a point-in-time copy of parent state; under ``spawn`` it sees a
    freshly imported module.  Either way the result depends on the start
    method and worker count — exactly what the jobs-invariance guarantee
    forbids.  Per-task state must arrive through the task item or the pool
    initializer (the ``_WORKER_*`` pattern: a module global that is
    ``None`` until the initializer assigns it in each worker).
    """

    name = "PAR002"
    slug = "parallel-mutable-global"
    summary = "parallel task function reads module-level mutable state"

    _MUTABLE_CALLS = frozenset({"default_rng", "Random", "RandomState",
                                "OrderedDict", "defaultdict", "deque",
                                "list", "dict", "set"})

    def _mutable_globals(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                         ast.ListComp, ast.DictComp,
                                         ast.SetComp))
            if not mutable and isinstance(value, ast.Call):
                dotted = dotted_name(value.func)
                mutable = dotted is not None and \
                    dotted.split(".")[-1] in self._MUTABLE_CALLS
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        mutable = self._mutable_globals(ctx.tree)
        if not mutable:
            return
        task_names: Set[str] = set()
        for call in _parallel_map_calls(ctx.tree):
            for role, expr in _task_and_initializer_args(call):
                if role == "task function" and isinstance(expr, ast.Name):
                    task_names.add(expr.id)
        if not task_names:
            return
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    or stmt.name not in task_names:
                continue
            locally_bound = {
                arg.arg for arg in (stmt.args.args + stmt.args.kwonlyargs
                                    + stmt.args.posonlyargs)}
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.id in mutable \
                        and node.id not in locally_bound:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        f"parallel task function {stmt.name!r} reads "
                        f"module-level mutable {node.id!r}; worker state "
                        f"must arrive via the task item or the pool "
                        f"initializer")


# ----------------------------------------------------------------------
def default_rules() -> List[Rule]:
    """One fresh instance of every rule, in catalogue order."""
    return [
        LegacyGlobalRngRule(),
        StdlibRandomRule(),
        WallClockRule(),
        SetIterationRule(),
        UnguardedLinalgRule(),
        FloatEqualityRule(),
        BareExceptRule(),
        BroadExceptContractRule(),
        ParallelCallableRule(),
        ParallelMutableGlobalRule(),
        DocLinkRule(),
    ]
