"""The ``--deep`` tier driver: summaries, rule packs, incremental cache.

One :class:`DeepAnalyzer` run does, in order:

1. **hash** every input file (BLAKE2b of the raw bytes);
2. **summarize** the modules whose hash is new or changed (parse + extract
   a :class:`~repro.lint.symbols.ModuleSummary`), reusing cached summaries
   for everything else;
3. **propagate dirtiness** along *reverse* import edges: a module is dirty
   when its own content changed or when anything it (transitively) imports
   is dirty — exactly the set whose cross-module findings could differ;
4. **analyze** dirty modules with the three deep rule packs (FLOW via
   :mod:`.flowrules` + :mod:`.callgraph`, SHAPE via :mod:`.shapes`, UNIT
   via :mod:`.units`) over a symbol table built from *all* summaries, and
   reuse cached findings for clean modules;
5. run the opt-in whole-program packs — CONC (:mod:`.concurrency`), PERF
   (:mod:`.perf`), ARCH (:mod:`.layers`).  Their per-module *models*
   (lock models, perf sites) ride the same cache by content hash; their
   *findings* are always assembled fresh, because one edge anywhere can
   change a whole-program verdict (a LOCK001 cycle, a PERF001 chain);
6. **persist** the cache: one JSON file mapping module name to
   ``{hash, summary, findings[, concurrency][, perf]}`` plus a config
   fingerprint covering the analysis version, the **enabled pack set and
   per-pack rule versions**, the unit declarations and the layer
   contracts — so toggling ``--deep/--concurrency/--perf/--arch`` (or
   bumping any pack) invalidates everything, while a one-module edit
   re-analyzes only that module and its importers.

Counters (:class:`DeepStats`) expose exactly how much work was done —
``modules_analyzed`` vs ``modules_cached``, and ``modules_parsed`` (the
number of source files actually fed to ``ast.parse`` this run; a warm
run with every pack enabled parses zero) — which is what the incremental
tests and the JSON report's ``cache`` block consume.

Cached entries for modules *outside* the current input set are retained
untouched and their summaries still feed the symbol table.  That is what
makes ``repro lint --changed --deep`` sound enough to be useful: the
changed file is re-analyzed against the rest of the project as of its last
full run, at a fraction of the cost.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph
from .config import LintConfig, default_config
from .engine import (Finding, display_path, module_name, suppressed_lines)
from .flowrules import (check_anonymous_raises, check_parallel_rng,
                        check_raise_provenance, check_resource_paths)
from .shapes import ShapeContract, check_call_edges
from .symbols import ModuleSummary, SymbolTable, summarize_module
from .units import UnitDeclarations, check_units, load_declarations

#: Bump when any deep pack's semantics change: stale caches self-invalidate.
#: v2: module summaries grew ``import_sites`` (ARCH input) and the cache
#: fingerprint covers the enabled pack set + per-pack versions.
ANALYSIS_VERSION = "repro-lint-deep/2"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE = ".repro-lint-cache.json"

#: Names of the always-on deep rule packs, for reports and
#: ``--list-rules``.
PACKS = ("FLOW", "SHAPE", "UNIT")

#: The optional whole-program packs.
CONC_PACK = "CONC"
PERF_PACK = "PERF"
ARCH_PACK = "ARCH"


@dataclass
class DeepStats:
    """How much work one deep run actually did."""

    modules_total: int = 0      # modules in the current input set
    modules_analyzed: int = 0   # re-analyzed this run (dirty)
    modules_cached: int = 0     # findings served from the cache (clean)
    modules_retained: int = 0   # cache-only modules kept for resolution
    modules_parsed: int = 0     # files actually ast.parse'd this run
    suppressed: int = 0         # deep findings removed by inline disables
    cache_loaded: bool = False  # a compatible cache file was read
    cache_path: Optional[str] = None
    #: ``{"modules": .., "findings": .., "locks": .., "lock_edges": ..,
    #: "models_reused": .., "models_extracted": ..}`` when the CONC pack
    #: ran this run, else ``None``.
    concurrency: Optional[Dict[str, int]] = None
    #: PERF block (counters + hot-path manifest) when ``--perf`` ran.
    perf: Optional[Dict[str, object]] = None
    #: ARCH block (layer/edge/violation counters) when ``--arch`` ran.
    arch: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        packs = list(PACKS)
        if self.concurrency is not None:
            packs.append(CONC_PACK)
        if self.perf is not None:
            packs.append(PERF_PACK)
        if self.arch is not None:
            packs.append(ARCH_PACK)
        document: Dict[str, object] = {
            "modules_total": self.modules_total,
            "modules_analyzed": self.modules_analyzed,
            "modules_cached": self.modules_cached,
            "modules_retained": self.modules_retained,
            "modules_parsed": self.modules_parsed,
            "suppressed": self.suppressed,
            "cache_loaded": self.cache_loaded,
            "cache_path": self.cache_path,
            "packs": packs,
        }
        if self.concurrency is not None:
            document["concurrency"] = dict(self.concurrency)
        if self.perf is not None:
            document["perf"] = dict(self.perf)
        if self.arch is not None:
            document["arch"] = dict(self.arch)
        return document


@dataclass
class _ModuleState:
    """Working state of one input module during a run."""

    module: str
    path: str
    display: str
    source: str
    content_hash: str
    is_package: bool
    summary: Optional[ModuleSummary] = None
    tree: Optional[ast.Module] = None
    changed: bool = False
    findings: List[Finding] = field(default_factory=list)


def content_hash(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


class DeepAnalyzer:
    """Whole-program analysis with a content-hash incremental cache."""

    def __init__(self, config: Optional[LintConfig] = None,
                 cache_path: Optional[str] = DEFAULT_CACHE,
                 concurrency: bool = False, perf: bool = False,
                 arch: bool = False,
                 hot_profiles: Optional[Sequence[str]] = None) -> None:
        self.config = config if config is not None else default_config()
        self.cache_path = cache_path
        self.concurrency = concurrency
        self.perf = perf
        self.arch = arch
        self.declarations: UnitDeclarations = load_declarations(
            self.config.unit_declarations_path())
        self.hotness = None
        if perf and hot_profiles:
            from .hotness import load_hotness  # ProfileError propagates

            self.hotness = load_hotness(list(hot_profiles))
        self._parses = 0

    # ------------------------------------------------------------------
    def config_fingerprint(self) -> str:
        """Hash of everything besides file content that shapes findings.

        Covers the enabled pack set and each enabled pack's rule version,
        so toggling a tier flag or bumping one pack never serves that
        pack's (or another tier's) stale summaries or models.
        """
        packs = list(PACKS)
        versions: Dict[str, str] = {"deep": ANALYSIS_VERSION}
        if self.concurrency:
            from .concurrency import CONC_PACK_VERSION

            packs.append(CONC_PACK)
            versions["conc"] = CONC_PACK_VERSION
        if self.perf:
            from .perf import PERF_PACK_VERSION

            packs.append(PERF_PACK)
            versions["perf"] = PERF_PACK_VERSION
        if self.arch:
            from .layers import ARCH_PACK_VERSION

            packs.append(ARCH_PACK)
            versions["arch"] = ARCH_PACK_VERSION
        payload = json.dumps({
            "version": ANALYSIS_VERSION,
            "packs": packs,
            "pack_versions": versions,
            "layers": {layer: list(allowed) for layer, allowed
                       in sorted(self.config.layer_contracts().items())},
            "scopes": list(self.declarations.scopes),
            "names": {k: list(v)
                      for k, v in sorted(self.declarations.names.items())},
            "suffixes": {k: list(v) for k, v
                         in sorted(self.declarations.suffixes.items())},
        }, sort_keys=True)
        return content_hash(payload.encode("utf-8"))

    def analyze(self, files: Sequence[str]
                ) -> Tuple[List[Finding], DeepStats]:
        """Deep findings (suppression-filtered) plus run counters."""
        stats = DeepStats(cache_path=self.cache_path)
        self._parses = 0
        cached = self._load_cache(stats)
        states = self._read_modules(files)
        stats.modules_total = len(states)

        # Summaries: reuse for unchanged content, recompute for the rest.
        for state in states.values():
            entry = cached.get(state.module)
            if entry is not None \
                    and entry.get("hash") == state.content_hash:
                try:
                    state.summary = ModuleSummary.from_dict(entry["summary"])
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # corrupt entry: fall through to re-summarize
            state.changed = True
            self._parse(state)
            if state.tree is not None:
                state.summary = summarize_module(
                    state.module, state.display, state.tree,
                    state.source.splitlines(), state.is_package)

        summaries = {state.module: state.summary
                     for state in states.values()
                     if state.summary is not None}
        retained: Dict[str, Dict[str, object]] = {}
        for module, entry in cached.items():
            if module in states:
                continue
            try:
                summaries.setdefault(
                    module, ModuleSummary.from_dict(entry["summary"]))
                retained[module] = entry
            except (KeyError, TypeError, ValueError):
                continue
        stats.modules_retained = len(retained)

        dirty = self._propagate_dirty(states, summaries)
        table = SymbolTable(summaries)
        graph = CallGraph(table)

        findings: List[Finding] = []
        fresh_cache: Dict[str, Dict[str, object]] = dict(retained)
        for module in sorted(states):
            state = states[module]
            if state.summary is None:
                continue  # unparsable: the classic tier reports LINT000
            if module in dirty:
                if state.tree is None:
                    self._parse(state)
                if state.tree is None:
                    continue
                state.findings = self._analyze_module(state, table, graph)
                stats.modules_analyzed += 1
            else:
                entry = cached.get(module, {})
                state.findings = _findings_from_cache(entry)
                stats.modules_cached += 1
            fresh_cache[module] = {
                "hash": state.content_hash,
                "summary": state.summary.as_dict(),
                "findings": [f.as_dict() for f in state.findings],
            }
            findings.extend(self._apply_suppressions(state, stats))

        if self.concurrency:
            findings.extend(self._run_concurrency(
                states, table, cached, dirty, fresh_cache, stats))
        if self.perf:
            findings.extend(self._run_perf(
                states, table, graph, cached, dirty, fresh_cache, stats))
        if self.arch:
            findings.extend(self._run_arch(states, summaries, stats))
        stats.modules_parsed = self._parses
        self._write_cache(fresh_cache)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings, stats

    # ------------------------------------------------------------------
    # Whole-program packs
    # ------------------------------------------------------------------
    def _run_concurrency(self, states: Dict[str, _ModuleState],
                         table: SymbolTable,
                         cached: Dict[str, Dict[str, object]],
                         dirty: Set[str],
                         fresh_cache: Dict[str, Dict[str, object]],
                         stats: DeepStats) -> List[Finding]:
        """The CONC pack: whole-program rules over cacheable lock models.

        LOCK001 is a property of the *current* input set (one new edge
        anywhere can close a cycle whose other edges live in unchanged
        modules), so findings are recomputed every run — but the
        per-module lock *model* is a pure function of module content and
        rides the incremental cache, so a warm run re-parses nothing.
        """
        from .concurrency import (ModuleConcurrency,
                                  extract_module_concurrency,
                                  run_concurrency_models)

        models: Dict[str, ModuleConcurrency] = {}
        sources: Dict[str, Sequence[str]] = {}
        reused = extracted = 0
        for module, state in states.items():
            if state.summary is None:
                continue
            lines = state.source.splitlines()
            model: Optional[ModuleConcurrency] = None
            if module not in dirty:
                raw = cached.get(module, {}).get("concurrency")
                if isinstance(raw, dict):
                    try:
                        model = ModuleConcurrency.from_dict(raw)
                        reused += 1
                    except (KeyError, TypeError, ValueError):
                        model = None
            if model is None:
                if state.tree is None:
                    self._parse(state)
                if state.tree is None:
                    continue
                model = extract_module_concurrency(
                    state.summary, state.tree, lines, state.display)
                extracted += 1
            models[module] = model
            sources[module] = lines
            if module in fresh_cache:
                fresh_cache[module]["concurrency"] = model.as_dict()
        findings, graph = run_concurrency_models(table, models, sources)
        kept = self._filter_suppressed(findings, states, stats)
        stats.concurrency = {
            "modules": len(models),
            "findings": len(kept),
            "locks": len(graph.locks),
            "lock_edges": len(graph.edges),
            "models_reused": reused,
            "models_extracted": extracted,
        }
        _record_concurrency_metrics(stats.concurrency)
        return kept

    def _run_perf(self, states: Dict[str, _ModuleState],
                  table: SymbolTable, graph: CallGraph,
                  cached: Dict[str, Dict[str, object]],
                  dirty: Set[str],
                  fresh_cache: Dict[str, Dict[str, object]],
                  stats: DeepStats) -> List[Finding]:
        """The PERF pack: cacheable per-module sites, fresh assembly."""
        from .perf import ModulePerf, extract_module_perf, run_perf

        perfs: Dict[str, ModulePerf] = {}
        sources: Dict[str, Sequence[str]] = {}
        reused = extracted = 0
        for module, state in states.items():
            if state.summary is None:
                continue
            lines = state.source.splitlines()
            perf: Optional[ModulePerf] = None
            if module not in dirty:
                raw = cached.get(module, {}).get("perf")
                if isinstance(raw, dict):
                    try:
                        perf = ModulePerf.from_dict(raw)
                        reused += 1
                    except (KeyError, TypeError, ValueError):
                        perf = None
            if perf is None:
                if state.tree is None:
                    self._parse(state)
                if state.tree is None:
                    continue
                perf = extract_module_perf(
                    state.summary, state.tree, state.display)
                extracted += 1
            perfs[module] = perf
            sources[module] = lines
            if module in fresh_cache:
                fresh_cache[module]["perf"] = perf.as_dict()
        findings, block = run_perf(table, graph, perfs, sources,
                                   self.hotness)
        kept = self._filter_suppressed(findings, states, stats)
        block["findings"] = len(kept)
        block["hot"] = sum(1 for f in kept if f.severity == "error")
        block["cold"] = len(kept) - int(block["hot"])  # type: ignore[call-overload]
        block["models_reused"] = reused
        block["models_extracted"] = extracted
        stats.perf = block
        _record_perf_metrics(block)
        return kept

    def _run_arch(self, states: Dict[str, _ModuleState],
                  summaries: Dict[str, ModuleSummary],
                  stats: DeepStats) -> List[Finding]:
        """The ARCH pack: layer contracts over the import graph."""
        from .layers import run_arch

        check = [module for module, state in states.items()
                 if state.summary is not None]
        findings, block = run_arch(summaries,
                                   self.config.layer_contracts(), check)
        kept = self._filter_suppressed(findings, states, stats)
        block["findings"] = len(kept)
        block["violations"] = sum(1 for f in kept if f.rule == "ARCH001")
        stats.arch = block
        _record_arch_metrics(block)
        return kept

    def _filter_suppressed(self, findings: List[Finding],
                           states: Dict[str, _ModuleState],
                           stats: DeepStats) -> List[Finding]:
        """Apply inline ``# repro-lint: disable`` to pack findings."""
        kept: List[Finding] = []
        by_display = {state.display: state for state in states.values()}
        cache: Dict[str, Dict[int, Set[str]]] = {}
        for finding in findings:
            state = by_display.get(finding.path)
            if state is not None:
                if finding.path not in cache:
                    cache[finding.path] = suppressed_lines(state.source)
                names = cache[finding.path].get(finding.line, set())
                if "*" in names or finding.rule in names:
                    stats.suppressed += 1
                    continue
            kept.append(finding)
        return kept

    # ------------------------------------------------------------------
    def _read_modules(self, files: Sequence[str]) -> Dict[str, _ModuleState]:
        states: Dict[str, _ModuleState] = {}
        for path in files:
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
                source = data.decode("utf-8")
            except (OSError, UnicodeDecodeError):
                continue  # the classic tier reports LINT000 for these
            module = module_name(path)
            if not module:
                continue
            states[module] = _ModuleState(
                module=module, path=path, display=display_path(path),
                source=source, content_hash=content_hash(data),
                is_package=os.path.basename(path) == "__init__.py")
        return states

    def _parse(self, state: _ModuleState) -> None:
        self._parses += 1
        try:
            state.tree = ast.parse(state.source, filename=state.path)
        except (SyntaxError, ValueError):
            state.tree = None

    @staticmethod
    def _propagate_dirty(states: Dict[str, _ModuleState],
                         summaries: Dict[str, ModuleSummary]) -> Set[str]:
        """Changed modules plus every transitive importer of one."""
        importers: Dict[str, Set[str]] = {}
        for module, summary in summaries.items():
            for dep in summary.imported_modules:
                if dep in summaries and dep != module:
                    importers.setdefault(dep, set()).add(module)
        dirty: Set[str] = {m for m, s in states.items() if s.changed}
        frontier = list(dirty)
        while frontier:
            module = frontier.pop()
            for importer in importers.get(module, ()):
                if importer not in dirty:
                    dirty.add(importer)
                    frontier.append(importer)
        return dirty

    def _analyze_module(self, state: _ModuleState, table: SymbolTable,
                        graph: CallGraph) -> List[Finding]:
        assert state.summary is not None and state.tree is not None
        summary, tree = state.summary, state.tree
        lines = state.source.splitlines()
        findings: List[Finding] = []
        findings.extend(check_parallel_rng(summary, tree, lines, graph))
        findings.extend(check_resource_paths(summary, tree, lines))
        findings.extend(check_raise_provenance(summary, tree, lines))
        findings.extend(check_anonymous_raises(summary, tree, lines))
        findings.extend(check_call_edges(
            state.display, tree, lines,
            lambda written: self._resolve_callee(table, summary.module,
                                                 written),
            {name: fn.contract for name, fn in summary.functions.items()
             if fn.contract is not None}))
        findings.extend(check_units(summary.module, state.display, tree,
                                    lines, self.declarations))
        return findings

    @staticmethod
    def _resolve_callee(table: SymbolTable, module: str, written: str):
        resolved = table.resolve(module, written)
        if resolved is None:
            return None
        fn = table.function(*resolved)
        if fn is None:
            return None
        defining, symbol = resolved
        return fn, f"{defining.split('.')[-1]}.{symbol}"

    @staticmethod
    def _apply_suppressions(state: _ModuleState,
                            stats: DeepStats) -> List[Finding]:
        if not state.findings:
            return []
        table = suppressed_lines(state.source)
        kept: List[Finding] = []
        for finding in state.findings:
            names = table.get(finding.line, set())
            if "*" in names or finding.rule in names:
                stats.suppressed += 1
            else:
                kept.append(finding)
        return kept

    # ------------------------------------------------------------------
    def _load_cache(self, stats: DeepStats) -> Dict[str, Dict[str, object]]:
        if self.cache_path is None or not os.path.isfile(self.cache_path):
            return {}
        try:
            with open(self.cache_path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError):
            return {}
        if not isinstance(document, dict) \
                or document.get("schema") != ANALYSIS_VERSION \
                or document.get("config") != self.config_fingerprint():
            return {}
        modules = document.get("modules")
        if not isinstance(modules, dict):
            return {}
        stats.cache_loaded = True
        return {str(name): entry for name, entry in modules.items()
                if isinstance(entry, dict)}

    def _write_cache(self, modules: Dict[str, Dict[str, object]]) -> None:
        if self.cache_path is None:
            return
        document = {
            "schema": ANALYSIS_VERSION,
            "config": self.config_fingerprint(),
            "modules": {name: modules[name] for name in sorted(modules)},
        }
        try:
            with open(self.cache_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError:
            pass  # a read-only checkout must not break linting


def _record_concurrency_metrics(counts: Dict[str, int]) -> None:
    """Bump ``lint.concurrency.*`` counters, if the obs package is usable.

    The lint package is deliberately dependency-free; observability is a
    best-effort extra (obs pulls numpy transitively via its bench module's
    callers, and a stripped checkout may not ship it at all).
    """
    try:
        from repro.obs import get_metrics
    except ImportError:  # pragma: no cover - stripped environment
        return
    metrics = get_metrics()
    metrics.counter("lint.concurrency.modules").inc(counts["modules"])
    metrics.counter("lint.concurrency.findings").inc(counts["findings"])
    metrics.counter("lint.concurrency.lock_edges").inc(
        counts["lock_edges"])


def _record_perf_metrics(block: Dict[str, object]) -> None:
    """Bump ``lint.perf.*`` counters (same best-effort contract)."""
    try:
        from repro.obs import get_metrics
    except ImportError:  # pragma: no cover - stripped environment
        return
    metrics = get_metrics()
    metrics.counter("lint.perf.findings").inc(int(block["findings"]))  # type: ignore[call-overload]
    metrics.counter("lint.perf.hot_findings").inc(int(block["hot"]))  # type: ignore[call-overload]


def _record_arch_metrics(block: Dict[str, object]) -> None:
    """Bump ``lint.arch.*`` counters (same best-effort contract)."""
    try:
        from repro.obs import get_metrics
    except ImportError:  # pragma: no cover - stripped environment
        return
    metrics = get_metrics()
    metrics.counter("lint.arch.violations").inc(int(block["violations"]))  # type: ignore[call-overload]


def _findings_from_cache(entry: Dict[str, object]) -> List[Finding]:
    raw = entry.get("findings")
    if not isinstance(raw, list):
        return []
    findings: List[Finding] = []
    for item in raw:
        if not isinstance(item, dict):
            continue
        try:
            findings.append(Finding(
                rule=str(item["rule"]), severity=str(item["severity"]),
                path=str(item["path"]), line=int(item["line"]),
                col=int(item["col"]), message=str(item["message"]),
                snippet=str(item.get("snippet", ""))))
        except (KeyError, TypeError, ValueError):
            continue
    return findings


@dataclass(frozen=True)
class DeepRuleInfo:
    """Catalogue row of one deep rule (shape-compatible with ``Rule``)."""

    name: str
    slug: str
    severity: str
    summary: str


#: The deep rules, for ``--list-rules``, ``--select`` and ``--ignore``.
DEEP_RULE_CATALOGUE: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo("FLOW001", "rng-into-parallel-task", "error",
                 "unseeded/shared RNG reaches a parallel_map task "
                 "(cross-module)"),
    DeepRuleInfo("FLOW002", "resource-path-leak", "warning",
                 "Span/pool/file has a CFG path to exit that skips close"),
    DeepRuleInfo("FLOW003", "error-without-provenance", "error",
                 "taxonomy error raised without net/design/stage context"),
    DeepRuleInfo("FLOW004", "anonymous-error-drops-provenance", "warning",
                 "bare ValueError/RuntimeError raised where net/design "
                 "provenance is in scope"),
    DeepRuleInfo("SHAPE001", "shape-contract-mismatch", "error",
                 "argument shape contradicts the callee's repro-shape "
                 "contract"),
    DeepRuleInfo("SHAPE002", "dtype-contract-mismatch", "error",
                 "argument dtype contradicts the callee's repro-shape "
                 "contract"),
    DeepRuleInfo("UNIT001", "unit-mismatch", "error",
                 "ohm/farad/second quantities combined incompatibly"),
)

DEEP_RULE_NAMES: Tuple[str, ...] = tuple(
    info.name for info in DEEP_RULE_CATALOGUE)
