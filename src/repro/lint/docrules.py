"""Non-AST lint rules: internal documentation link checking (DOC001).

This is the engine behind ``tools/check_docs_links.py`` (the standalone
script is now a thin wrapper), folded into the linter so ``repro lint`` is
the single static-analysis entry point.  It scans every markdown file
under a root for inline links/images (``[text](target)``) and reference
definitions (``[label]: target``), resolves relative targets against the
containing file, and reports targets whose file or in-file ``#fragment``
anchor does not exist.  External links (``http(s)://``, ``mailto:``) are
ignored — CI must not depend on the network.

GitHub-style anchors are derived from headings: lowercase, spaces to
hyphens, punctuation dropped.  Fragment checks are best-effort (formatting
inside headings is stripped before slugging).
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .engine import ProjectRule, Finding, display_path, SKIP_DIRS

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
_SCHEME = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, mailto:, ...


def markdown_files(root: str) -> Iterator[str]:
    """Every ``*.md`` under ``root`` (sorted walk, VCS/cache dirs skipped)."""
    if os.path.isfile(root):
        if root.lower().endswith(".md"):
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug of a heading (best-effort)."""
    text = re.sub(r"[`*_]|\[|\]|\([^)]*\)", "", heading).strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", text)


def anchors_of(path: str) -> Set[str]:
    """Anchor slugs available in one markdown file (with -1/-2 dedup)."""
    with open(path, encoding="utf-8") as handle:
        text = FENCE.sub("", handle.read())
    slugs: Set[str] = set()
    counts: Dict[str, int] = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def link_targets(path: str) -> Iterator[Tuple[int, str]]:
    """``(line, target)`` of every internal-looking link in one file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Blank out fenced code (keeping newlines so line numbers survive).
    text = FENCE.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield line, match.group(1)


def check_markdown_tree(root: str) -> List[Tuple[str, int, str]]:
    """Broken internal links under ``root`` as ``(path, line, message)``.

    ``path`` is relative to ``root``; the list is sorted by file then line.
    """
    problems: List[Tuple[str, int, str]] = []
    for path in markdown_files(root):
        rel = os.path.relpath(path, root if os.path.isdir(root)
                              else os.path.dirname(root) or ".")
        for line, target in link_targets(path):
            if _SCHEME.match(target):
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), base))
                if not os.path.exists(resolved):
                    problems.append((rel, line, f"broken link -> {target}"))
                    continue
            else:
                resolved = path
            if fragment and resolved.lower().endswith(".md"):
                if github_slug(fragment) not in anchors_of(resolved):
                    problems.append((rel, line,
                                     f"missing anchor -> {target}"))
    return sorted(problems)


class DocLinkRule(ProjectRule):
    """DOC001 — every internal markdown link must resolve.

    The documentation tree is scanned from the common ancestor of the
    lint input paths (``repro lint src tools`` from the repo root covers
    README, docs/ and every package doc), so a rename that orphans a link
    fails the same gate as a code-invariant violation.
    """

    name = "DOC001"
    slug = "broken-doc-link"
    summary = "internal markdown link to a missing file or anchor"

    def check_project(self, paths: Sequence[str]) -> Iterator[Finding]:
        existing = [os.path.abspath(p) for p in paths if os.path.exists(p)]
        if not existing:
            return
        root = os.path.commonpath(existing)
        if os.path.isfile(root):
            root = os.path.dirname(root) or "."
        for rel, line, message in check_markdown_tree(root):
            yield Finding(
                rule=self.name, severity=self.severity,
                path=display_path(os.path.join(root, rel)),
                line=line, col=0,
                message=f"{message} (documentation must stay navigable; "
                        f"fix the target or the link)")
