"""Project configuration for the linter (``[tool.repro-lint]``).

Rule-pack knobs that used to be hardcoded class attributes — the DET003
wall-clock exemption list, discovery excludes, the unit-declarations file
for UNIT001 — live in ``pyproject.toml`` under ``[tool.repro-lint]`` so a
policy change is a config edit, not a source edit:

.. code-block:: toml

    [tool.repro-lint]
    det003-exempt = ["obs", "cli", "bench", "tools"]
    exclude = ["examples/scratch_*.py"]
    unit-declarations = "src/repro/lint/units.json"

    [tool.repro-lint.layers]
    obs = []
    nn = ["obs", "robustness"]

The ``layers`` sub-table declares the architecture contract the ARCH
pack (``repro lint --arch``) enforces: each key is a layer (top-level
package under ``repro``) and its value the layers it may import at
module scope.

``tomllib`` (Python 3.11+) parses the file when available; on older
interpreters a deliberately tiny fallback parser reads just the subset this
section uses (string and string-list values), so the linter stays
dependency-free on every supported Python.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: The pyproject section owning lint configuration.
CONFIG_SECTION = "repro-lint"

#: DET003 exemption default — matches the historical hardcoded tuple.
DEFAULT_DET003_EXEMPT = ("obs", "cli", "bench", "tools")


@dataclass(frozen=True)
class LintConfig:
    """Resolved ``[tool.repro-lint]`` settings (defaults when absent)."""

    det003_exempt: Tuple[str, ...] = DEFAULT_DET003_EXEMPT
    exclude: Tuple[str, ...] = ()
    unit_declarations: Optional[str] = None
    #: ``(layer, allowed layers)`` pairs from [tool.repro-lint.layers]
    #: (a tuple-of-pairs keeps the dataclass hashable/frozen).
    layers: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: Directory the config was loaded from (anchors relative paths).
    root: str = "."

    def layer_contracts(self) -> Dict[str, Tuple[str, ...]]:
        """The layer-contract table as a plain dict (ARCH pack input)."""
        return {layer: allowed for layer, allowed in self.layers}

    def unit_declarations_path(self) -> Optional[str]:
        """The unit-declarations path resolved against the config root."""
        if self.unit_declarations is None:
            return None
        if os.path.isabs(self.unit_declarations):
            return self.unit_declarations
        return os.path.join(self.root, self.unit_declarations)


class ConfigError(ValueError):
    """``[tool.repro-lint]`` exists but cannot be used."""


def load_config(start_dir: str = ".") -> LintConfig:
    """The :class:`LintConfig` of the pyproject nearest to ``start_dir``.

    Walks upward from ``start_dir`` to the filesystem root looking for a
    ``pyproject.toml``; a missing file (or a file without the section)
    yields the defaults.  Malformed values raise :class:`ConfigError` —
    silently ignoring a typo'd config would un-exempt or un-exclude
    nothing visibly.
    """
    directory = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return config_from_pyproject(candidate)
        parent = os.path.dirname(directory)
        if parent == directory:
            return LintConfig()
        directory = parent


def config_from_pyproject(path: str) -> LintConfig:
    """Parse one pyproject file into a :class:`LintConfig`."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise ConfigError(f"cannot read {path!r}: {exc}") from exc
    section = _tool_section(text, path)
    config = LintConfig(root=os.path.dirname(os.path.abspath(path)))
    if not section:
        return config
    det003 = _string_list(section, "det003-exempt", path)
    exclude = _string_list(section, "exclude", path)
    declarations = section.get("unit-declarations")
    if declarations is not None and not isinstance(declarations, str):
        raise ConfigError(
            f"{path!r}: [tool.{CONFIG_SECTION}] unit-declarations must be "
            f"a string")
    layers = _layer_table(section, path)
    unknown = sorted(set(section) - {"det003-exempt", "exclude",
                                     "unit-declarations", "layers"})
    if unknown:
        raise ConfigError(
            f"{path!r}: unknown [tool.{CONFIG_SECTION}] key(s): "
            f"{', '.join(unknown)}")
    return LintConfig(
        det003_exempt=tuple(det003) if det003 is not None
        else config.det003_exempt,
        exclude=tuple(exclude) if exclude is not None else (),
        unit_declarations=declarations,
        layers=layers,
        root=config.root)


def _layer_table(section: Dict[str, Any], path: str
                 ) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Validate ``[tool.repro-lint.layers]`` into frozen contract pairs."""
    raw = section.get("layers")
    if raw is None:
        return ()
    if not isinstance(raw, dict):
        raise ConfigError(
            f"{path!r}: [tool.{CONFIG_SECTION}.layers] must be a table of "
            f"layer = [allowed layers] entries")
    pairs: List[Tuple[str, Tuple[str, ...]]] = []
    for layer in sorted(raw):
        allowed = raw[layer]
        if not isinstance(allowed, list) \
                or not all(isinstance(item, str) for item in allowed):
            raise ConfigError(
                f"{path!r}: [tool.{CONFIG_SECTION}.layers] {layer} must be "
                f"a list of layer-name strings")
        pairs.append((str(layer), tuple(sorted(set(allowed)))))
    return tuple(pairs)


def _string_list(section: Dict[str, Any], key: str,
                 path: str) -> Optional[List[str]]:
    value = section.get(key)
    if value is None:
        return None
    if not isinstance(value, list) \
            or not all(isinstance(item, str) for item in value):
        raise ConfigError(
            f"{path!r}: [tool.{CONFIG_SECTION}] {key} must be a list of "
            f"strings")
    return list(value)


def _tool_section(text: str, path: str) -> Dict[str, Any]:
    """The raw ``[tool.repro-lint]`` table of a pyproject document."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return _fallback_section(text)
    try:
        document = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"cannot parse {path!r}: {exc}") from exc
    tool = document.get("tool", {})
    section = tool.get(CONFIG_SECTION, {}) if isinstance(tool, dict) else {}
    return section if isinstance(section, dict) else {}


_HEADER = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_ASSIGN = re.compile(r"^\s*(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.+?)\s*$")
_STRING = re.compile(r'^"(?P<body>[^"]*)"$')


def _fallback_section(text: str) -> Dict[str, Any]:
    """Minimal TOML-subset reader for pre-3.11 interpreters.

    Understands exactly what ``[tool.repro-lint]`` uses: bare string values,
    single-line string lists, and the ``[tool.repro-lint.layers]`` sub-table
    (whose entries become a nested dict, as tomllib would produce).  Anything
    else in the section is surfaced as-is so the validators above reject it
    loudly.
    """
    section: Dict[str, Any] = {}
    target: Optional[Dict[str, Any]] = None
    for line in text.splitlines():
        stripped = line.split("#", 1)[0] if '"' not in line else line
        header = _HEADER.match(stripped)
        if header:
            name = header.group("name").strip()
            if name == f"tool.{CONFIG_SECTION}":
                target = section
            elif name == f"tool.{CONFIG_SECTION}.layers":
                target = section.setdefault("layers", {})
            else:
                target = None
            continue
        if target is None:
            continue
        assign = _ASSIGN.match(stripped)
        if assign is None:
            continue
        target[assign.group("key")] = _parse_value(assign.group("value"))
    return section


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    string = _STRING.match(raw)
    if string:
        return string.group("body")
    if raw.startswith("[") and raw.endswith("]"):
        body = raw[1:-1].strip()
        if not body:
            return []
        items = [item.strip() for item in body.split(",") if item.strip()]
        parsed = []
        for item in items:
            match = _STRING.match(item)
            parsed.append(match.group("body") if match else item)
        return parsed
    return raw


# Single default instance, loaded lazily by the runner so import order does
# not pin the working directory.
_cached: Optional[LintConfig] = None


def default_config(refresh: bool = False) -> LintConfig:
    """Process-wide config, loaded from the cwd's pyproject once."""
    global _cached
    if _cached is None or refresh:
        _cached = load_config(".")
    return _cached
