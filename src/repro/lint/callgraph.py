"""Project call graph over module summaries.

Nodes are ``(module, qualname)`` pairs of summarized functions; edges are
the call sites each function makes, resolved through the
:class:`~repro.lint.symbols.SymbolTable` (so aliased imports and package
re-exports become real edges instead of dead ends).  The graph is built
once per deep run from the summary set and answers the reachability
questions the FLOW pack asks — most importantly FLOW001's "does this task
function transitively reach an unseeded RNG creation site?".

Unresolvable calls (stdlib, third-party, dynamic dispatch) simply produce
no edge: the graph under-approximates the true call relation, which for
"find a path to a bad site" queries is the conservative, low-noise side.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .symbols import FunctionSummary, SymbolTable

#: One graph node: (defining module, function qualname).
Node = Tuple[str, str]


class CallGraph:
    """Resolved call edges plus bounded path queries."""

    #: Paths longer than this are abandoned (defensive recursion bound).
    MAX_DEPTH = 24

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[Node, List[Node]] = {}
        for module, summary in table.summaries.items():
            for qualname, fn in summary.functions.items():
                node = (module, qualname)
                targets: List[Node] = []
                seen: Set[Node] = set()
                for call in fn.calls:
                    resolved = table.resolve(module, call.name)
                    if resolved is None or resolved in seen:
                        continue
                    seen.add(resolved)
                    targets.append(resolved)
                self.edges[node] = targets

    def function(self, node: Node) -> Optional[FunctionSummary]:
        return self.table.function(*node)

    def successors(self, node: Node) -> List[Node]:
        return self.edges.get(node, [])

    def reachable_from(self, start: Node) -> Set[Node]:
        """Every node reachable from ``start`` (including itself)."""
        seen: Set[Node] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
        return seen

    def find_path(self, start: Node,
                  predicate: Callable[[Node, FunctionSummary], bool]
                  ) -> Optional[List[Node]]:
        """Call chain from ``start`` to the first node satisfying
        ``predicate``, or ``None``.

        Depth-first with a visited set; chains are capped at
        :attr:`MAX_DEPTH` hops, deep enough for any real chain in this
        repo and shallow enough that pathological graphs stay cheap.
        """
        stack: List[Tuple[Node, List[Node]]] = [(start, [start])]
        visited: Set[Node] = set()
        while stack:
            node, chain = stack.pop()
            if node in visited or len(chain) > self.MAX_DEPTH:
                continue
            visited.add(node)
            fn = self.function(node)
            if fn is None:
                continue
            if predicate(node, fn):
                return chain
            for succ in self.successors(node):
                if succ not in visited:
                    stack.append((succ, chain + [succ]))
        return None


def display_chain(chain: List[Node]) -> str:
    """``mod.fn -> mod.fn`` rendering with short module basenames."""
    return " -> ".join(f"{module.split('.')[-1]}.{symbol}"
                       for module, symbol in chain)
