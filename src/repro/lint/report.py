"""Text and JSON renderers for lint results.

The JSON document (schema ``repro-lint/4``) is the machine interface CI
consumes and archives; it is rendered with sorted keys and a stable field
set so reports diff cleanly across runs.  Version 2 added the deep-tier
block: ``packs`` (which analysis packs exist) and ``cache`` (the
incremental-analysis counters — how many modules were re-analyzed vs
served from the summary cache), both ``null``-free only when ``--deep``
ran.  Version 3 adds the ``concurrency`` block — the CONC pack's
whole-program counters (modules swept, lock nodes, lock-order edges,
findings) when ``--concurrency`` ran, else ``null`` — and lists ``CONC``
in ``packs`` for such runs.  Version 4 adds the ``perf`` block (the PERF
pack's counters, the profile sources and hot threshold, and the
**hot-path manifest** — one row per profiled span with its attributed
function and exclusive seconds) and the ``arch`` block (layer-contract
counters), each ``null`` unless its pack ran, plus ``PERF``/``ARCH`` in
``packs``.  The text renderer is for humans at the terminal: one
``path:line:col: RULE severity: message`` row per finding plus a summary
line.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .engine import LintResult, Rule

REPORT_SCHEMA = "repro-lint/4"


def render_text(result: LintResult) -> str:
    """Human-readable report: one row per finding plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.severity}: {finding.message}")
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.rule} at {entry.path} "
                     f"({entry.snippet!r}) no longer matches — remove it")
    tail = (f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s)")
    extras: List[str] = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.deep is not None:
        extras.append(f"deep: {result.deep.modules_analyzed} analyzed, "
                      f"{result.deep.modules_cached} from cache")
        if result.deep.concurrency is not None:
            conc = result.deep.concurrency
            extras.append(f"concurrency: {conc['locks']} lock(s), "
                          f"{conc['lock_edges']} order edge(s)")
        if result.deep.perf is not None:
            perf = result.deep.perf
            sources = perf.get("profile_sources")
            n_sources = len(sources) if isinstance(sources, list) else 0
            extras.append(f"perf: {perf['hot']} hot / {perf['cold']} cold "
                          f"finding(s) from {n_sources} profile(s)")
        if result.deep.arch is not None:
            arch = result.deep.arch
            extras.append(f"arch: {arch['violations']} violation(s) over "
                          f"{arch['edges']} layer edge(s)")
    if extras:
        tail += " (" + ", ".join(extras) + ")"
    lines.append(tail if result.findings else f"clean: {tail}")
    return "\n".join(lines)


def report_document(result: LintResult) -> Dict[str, object]:
    """The ``repro-lint/4`` report as a JSON-safe dict."""
    deep: Optional[Dict[str, object]] = None
    packs: List[str] = []
    concurrency: Optional[Dict[str, object]] = None
    perf: Optional[Dict[str, object]] = None
    arch: Optional[Dict[str, object]] = None
    if result.deep is not None:
        stats = result.deep.as_dict()
        packs = list(stats.pop("packs", []))
        raw_conc = stats.pop("concurrency", None)
        if isinstance(raw_conc, dict):
            concurrency = raw_conc
        raw_perf = stats.pop("perf", None)
        if isinstance(raw_perf, dict):
            perf = raw_perf
        raw_arch = stats.pop("arch", None)
        if isinstance(raw_arch, dict):
            arch = raw_arch
        deep = stats
    return {
        "schema": REPORT_SCHEMA,
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "counts": result.counts(),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": [entry.as_dict()
                           for entry in result.stale_baseline],
        "packs": packs,
        "cache": deep,
        "concurrency": concurrency,
        "perf": perf,
        "arch": arch,
        "exit_code": result.exit_code,
    }


def render_json(result: LintResult) -> str:
    """Canonical JSON rendering (sorted keys, 2-space indent, newline)."""
    return json.dumps(report_document(result), indent=2, sort_keys=True) + "\n"


def rule_catalogue(rules: Sequence[Rule]) -> str:
    """``--list-rules`` table: name, severity, one-line summary."""
    lines = [f"{rule.name}  {rule.slug:<26} {rule.severity:<8} "
             f"{rule.summary}" for rule in rules]
    return "\n".join(lines)
