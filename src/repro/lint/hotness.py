"""Profile ingestion for the PERF pack: ``module.function → exclusive s``.

The PERF rules are *profile-guided*: a structural anti-pattern inside a
function the profile says is hot is an error worth failing CI over, the
same pattern in a cold utility is a warning.  Both the lint pack and
``repro report --hot`` rank from the data this module loads, so humans
and the linter always argue from the same numbers.

Two source formats, auto-detected per file:

* **REPRO_TRACE JSONL** — one tracer span per line.  Parent links are
  real (each span records the name of its enclosing span), so exclusive
  time is computed exactly: per-name total wall minus the total wall of
  spans naming it as parent.
* **BENCH_<date>.json** — a bench report whose ``observability.stages``
  block holds per-span aggregates (count/wall) with nesting lost.  The
  static span tree declared in :mod:`repro.obs.attribution` substitutes:
  ``exclusive(s) = wall(s) − Σ wall(declared child present)``, clamped at
  zero.

Span names become functions through the attribution tables
(:func:`repro.obs.attribution.span_function`).  The lint package stays
stdlib-only: the obs import is deferred and a stripped checkout without
``repro.obs`` degrades to an empty profile instead of an ImportError.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["HOT_MIN_SECONDS", "HOT_FRACTION", "HotSpot", "HotnessProfile",
           "ProfileError", "load_hotness", "discover_default_profile"]

#: Absolute floor: functions below this many exclusive seconds are never
#: hot, however small the workload.
HOT_MIN_SECONDS = 0.01

#: Relative floor: a function is hot when its exclusive seconds reach
#: this fraction of the profile's total exclusive time.
HOT_FRACTION = 0.01


class ProfileError(ValueError):
    """A named profile file exists but cannot be understood."""


@dataclass(frozen=True)
class HotSpot:
    """One span name's aggregated cost, attributed to a function."""

    span: str
    module: Optional[str]    # defining module, when attributed
    qualname: Optional[str]  # function qualname, when attributed
    calls: int
    wall_s: float            # inclusive
    exclusive_s: float       # inclusive minus child spans

    @property
    def function(self) -> Optional[str]:
        if self.module is None or self.qualname is None:
            return None
        return f"{self.module}.{self.qualname}"


class HotnessProfile:
    """Loaded profile: hot spots by span, plus the hotness predicate."""

    def __init__(self, spots: Sequence[HotSpot],
                 sources: Sequence[str]) -> None:
        self.spots: Tuple[HotSpot, ...] = tuple(
            sorted(spots, key=lambda s: (-s.exclusive_s, s.span)))
        self.sources: Tuple[str, ...] = tuple(sources)
        self.total_exclusive_s: float = sum(s.exclusive_s
                                            for s in self.spots)

    def __bool__(self) -> bool:
        return bool(self.spots)

    @property
    def threshold_s(self) -> float:
        """Exclusive seconds above which a function counts as hot."""
        return max(HOT_MIN_SECONDS, HOT_FRACTION * self.total_exclusive_s)

    def hot_functions(self) -> Dict[Tuple[str, str], HotSpot]:
        """``(module, qualname) → costliest hot spot`` over the threshold."""
        out: Dict[Tuple[str, str], HotSpot] = {}
        for spot in self.spots:
            if spot.module is None or spot.qualname is None:
                continue
            if spot.exclusive_s < self.threshold_s:
                continue
            key = (spot.module, spot.qualname)
            if key not in out:  # spots are sorted costliest-first
                out[key] = spot
        return out

    def top(self, n: int) -> List[HotSpot]:
        """The ``n`` costliest spots by exclusive seconds."""
        return list(self.spots[: max(n, 0)])

    def manifest(self) -> List[Dict[str, object]]:
        """The hot-path manifest rows for the JSON report (stable order)."""
        rows: List[Dict[str, object]] = []
        for spot in self.spots:
            rows.append({
                "span": spot.span,
                "function": spot.function,
                "calls": spot.calls,
                "wall_s": round(spot.wall_s, 9),
                "exclusive_s": round(spot.exclusive_s, 9),
                "hot": spot.exclusive_s >= self.threshold_s,
            })
        return rows


def load_hotness(paths: Sequence[str]) -> HotnessProfile:
    """Load and merge one profile per path (trace JSONL or BENCH json).

    Merging takes the *maximum* exclusive seconds per span across sources,
    so a function hot in any supplied profile stays hot.  Raises
    :class:`ProfileError` for unreadable or unrecognizable files — a typo'd
    ``--hot-profile`` must not silently mean "everything is cold".
    """
    merged: Dict[str, Tuple[int, float, float]] = {}
    for path in paths:
        for span, calls, wall, exclusive in _load_one(path):
            known = merged.get(span)
            if known is None or exclusive > known[2]:
                merged[span] = (calls, wall, exclusive)
    spots = [_attribute(span, calls, wall, exclusive)
             for span, (calls, wall, exclusive) in merged.items()]
    return HotnessProfile(spots, sources=list(paths))


def discover_default_profile(directory: str = ".") -> Optional[str]:
    """The newest committed ``BENCH_*.json`` in a directory, if any.

    Bench filenames embed an ISO date, so the lexicographic maximum is the
    newest baseline — the profile CI self-application ranks against when
    no ``--hot-profile`` is given.
    """
    try:
        names = sorted(name for name in os.listdir(directory)
                       if name.startswith("BENCH_")
                       and name.endswith(".json"))
    except OSError:
        return None
    if not names:
        return None
    return os.path.join(directory, names[-1])


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _load_one(path: str) -> List[Tuple[str, int, float, float]]:
    """``(span, calls, wall_s, exclusive_s)`` rows of one profile file."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise ProfileError(f"cannot read profile {path!r}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ProfileError(f"profile {path!r} is empty")
    document: Optional[Dict[str, object]] = None
    if stripped.startswith("{"):
        try:
            parsed = json.loads(text)
        except ValueError:
            parsed = None  # multi-line JSONL whose first span parses alone
        if isinstance(parsed, dict) and "observability" in parsed:
            document = parsed
    if document is not None:
        return _load_bench(document, path)
    return _load_trace(text, path)


def _load_bench(document: Dict[str, object],
                path: str) -> List[Tuple[str, int, float, float]]:
    observability = document.get("observability")
    stages = observability.get("stages") \
        if isinstance(observability, dict) else None
    if not isinstance(stages, dict):
        raise ProfileError(
            f"profile {path!r} has no observability.stages block")
    walls: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for span, stats in stages.items():
        if not isinstance(stats, dict):
            continue
        try:
            walls[str(span)] = float(stats["wall_s"])  # type: ignore[arg-type]
            counts[str(span)] = int(stats.get("count", 0))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            continue
    rows: List[Tuple[str, int, float, float]] = []
    for span, wall in walls.items():
        children = _declared_children(span)
        child_wall = sum(walls.get(child, 0.0) for child in children)
        rows.append((span, counts.get(span, 0), wall,
                     max(wall - child_wall, 0.0)))
    return rows


def _load_trace(text: str, path: str) -> List[Tuple[str, int, float, float]]:
    walls: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    child_wall: Dict[str, float] = {}
    parsed_any = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except ValueError:
            continue
        if not isinstance(raw, dict) or "name" not in raw:
            continue
        try:
            name = str(raw["name"])
            wall = float(raw.get("wall_s", 0.0))
        except (TypeError, ValueError):
            continue
        parsed_any = True
        walls[name] = walls.get(name, 0.0) + wall
        counts[name] = counts.get(name, 0) + 1
        parent = raw.get("parent")
        if isinstance(parent, str) and parent:
            child_wall[parent] = child_wall.get(parent, 0.0) + wall
    if not parsed_any:
        raise ProfileError(
            f"profile {path!r} is neither a BENCH report nor trace JSONL")
    return [(name, counts[name], wall,
             max(wall - child_wall.get(name, 0.0), 0.0))
            for name, wall in walls.items()]


def _declared_children(span: str) -> List[str]:
    try:
        from repro.obs.attribution import span_children
    except ImportError:  # pragma: no cover - stripped checkout
        return []
    return span_children(span)


def _attribute(span: str, calls: int, wall: float,
               exclusive: float) -> HotSpot:
    target: Optional[Tuple[str, str]] = None
    try:
        from repro.obs.attribution import span_function
    except ImportError:  # pragma: no cover - stripped checkout
        span_function = None  # type: ignore[assignment]
    if span_function is not None:
        target = span_function(span)
    module, qualname = target if target is not None else (None, None)
    return HotSpot(span=span, module=module, qualname=qualname, calls=calls,
                   wall_s=wall, exclusive_s=exclusive)
