"""Command-line interface for the GNNTrans reproduction.

Installed as the ``repro`` console script.  Subcommands cover the full
user workflow without writing Python:

``repro dataset``      generate a benchmark dataset with golden labels
``repro train``        train GNNTrans (or a baseline) on a dataset file
``repro evaluate``     report R^2 / max-error of a trained model
``repro spef-timing``  golden wire timing for every net of a SPEF file
``repro sta``          full or incremental/ECO timing of a benchmark design
``repro benchmarks``   list the Table II benchmark suite
``repro bench``        run the pinned perf workload, write ``BENCH_<date>.json``
``repro serve``        run the fault-tolerant timing service (docs/SERVING.md)
``repro lint``         run the repo's AST invariant linter (docs/LINTING.md)

Example session::

    repro dataset -o ds.npz --train PCI_BRIDGE DMA --test WB_DMA --scale 1200
    repro train -d ds.npz -o model.npz --plan PlanB --epochs 40
    repro evaluate -d ds.npz -m model.npz --nontree
    repro spef-timing design.spef --input-slew 20
    repro bench --quick

Observability: ``repro report --profile`` appends a per-stage timing table,
``repro report --json`` emits the same stage timings and counters as JSON,
and setting ``REPRO_TRACE=trace.jsonl`` streams every span of any command
to a JSONL file (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.config import PLANS


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNNTrans wire-timing estimation (DATE 2023 reproduction)")
    sub = parser.add_subparsers(title="commands")

    p = sub.add_parser("dataset", help="generate a dataset with golden labels")
    p.add_argument("-o", "--output", required=True, help="output .npz path")
    p.add_argument("--train", nargs="+", default=["PCI_BRIDGE", "DMA"],
                   help="training benchmark names")
    p.add_argument("--test", nargs="+", default=["WB_DMA"],
                   help="test benchmark names")
    p.add_argument("--scale", type=int, default=1200,
                   help="design down-scale factor (1 = paper size)")
    p.add_argument("--nets", type=int, default=40,
                   help="max sampled nets per design")
    p.add_argument("--no-si", action="store_true",
                   help="label without crosstalk injection")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for golden labeling (0 = all "
                        "cores; capped at core count); results are "
                        "jobs-invariant")
    p.set_defaults(handler=_cmd_dataset)

    p = sub.add_parser("train", help="train an estimator on a dataset file")
    p.add_argument("-d", "--dataset", required=True)
    p.add_argument("-o", "--output", required=True, help="model .npz path")
    p.add_argument("--plan", choices=sorted(PLANS), default="PlanB")
    p.add_argument("--model", choices=["gnntrans", "gcnii", "graphsage",
                                       "gat", "transformer"],
                   default="gnntrans")
    p.add_argument("--epochs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a trained model")
    p.add_argument("-d", "--dataset", required=True)
    p.add_argument("-m", "--model", required=True)
    p.add_argument("--plan", choices=sorted(PLANS), default="PlanB",
                   help="plan the model was trained with")
    p.add_argument("--nontree", action="store_true",
                   help="evaluate the non-tree subset (Table III)")
    p.add_argument("--per-design", action="store_true",
                   help="report one row per test design")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for inference (0 = all cores; "
                        "capped at core count)")
    p.set_defaults(handler=_cmd_evaluate)

    p = sub.add_parser("spef-timing",
                       help="golden wire timing for a SPEF file")
    p.add_argument("spef", help="input SPEF path")
    p.add_argument("--input-slew", type=float, default=20.0,
                   help="driver transition time in ps")
    p.add_argument("--drive-res", type=float, default=100.0,
                   help="driver Thevenin resistance in ohms")
    p.add_argument("--no-si", action="store_true",
                   help="ignore coupling (quiet aggressors)")
    p.add_argument("--lenient", action="store_true",
                   help="skip malformed *D_NET blocks instead of aborting")
    p.set_defaults(handler=_cmd_spef_timing)

    p = sub.add_parser("export-design",
                       help="write a benchmark as Verilog + SPEF + Liberty")
    p.add_argument("benchmark", help="Table II benchmark name")
    p.add_argument("-o", "--outdir", required=True)
    p.add_argument("--scale", type=int, default=1200)
    p.set_defaults(handler=_cmd_export_design)

    p = sub.add_parser("report",
                       help="STA timing report from Verilog + SPEF + Liberty")
    p.add_argument("--verilog")
    p.add_argument("--spef")
    p.add_argument("--lib")
    p.add_argument("--hot", metavar="PROFILE", action="append",
                   default=None,
                   help="instead of an STA report, print the hottest "
                        "functions by exclusive seconds from a BENCH_*.json "
                        "or REPRO_TRACE JSONL profile (repeatable; profiles "
                        "are merged)")
    p.add_argument("--top", type=int, default=10,
                   help="with --hot: number of functions to show")
    p.add_argument("--engine",
                   choices=["golden", "elmore", "d2m", "awe", "fallback"],
                   default="golden")
    p.add_argument("--paths", type=int, default=20,
                   help="number of timing paths to sample")
    p.add_argument("--clock", type=float, default=1500.0,
                   help="clock period in ps (paper setting: 1.5 ns)")
    p.add_argument("--sdc", help="SDC constraints file "
                                 "(overrides --clock and launch slew)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", action="store_true",
                   help="append a per-stage timing profile (tracer spans)")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON report (stage "
                        "timings + counters) instead of the text report")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for path analysis (0 = all cores; "
                        "capped at core count); arrival times are "
                        "jobs-invariant")
    p.set_defaults(handler=_cmd_report)

    p = sub.add_parser(
        "sta",
        help="full or incremental (ECO) timing of a benchmark design")
    p.add_argument("benchmark", nargs="?", default="WB_DMA",
                   help="Table II benchmark name (default: WB_DMA)")
    p.add_argument("--scale", type=int, default=1200,
                   help="design down-scale factor (1 = paper size)")
    p.add_argument("--paths", type=int, default=16,
                   help="number of timing paths to sample")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=["golden", "elmore", "d2m", "awe"],
                   default="golden", help="wire-timing engine")
    p.add_argument("--incremental", action="store_true",
                   help="time through the ECO replay engine (stage memo + "
                        "dirty propagation; see docs/ECO.md)")
    p.add_argument("--edits", metavar="EDITS_JSON",
                   help="with --incremental: replay this edit script "
                        "(schema repro-eco-edits/1), re-timing only the "
                        "affected cones")
    p.add_argument("--verify", action="store_true",
                   help="after replay, check results are bitwise identical "
                        "to a cold full pass (exit 1 on violation)")
    p.set_defaults(handler=_cmd_sta)

    p = sub.add_parser("benchmarks", help="list the Table II suite")
    p.set_defaults(handler=_cmd_benchmarks)

    p = sub.add_parser(
        "bench",
        help="run the pinned end-to-end perf workload, write BENCH_<date>.json")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized workload (seconds instead of minutes)")
    p.add_argument("--serve", action="store_true",
                   help="load-generate against the timing service instead "
                        "of the pipeline workload; reports p50/p99 latency "
                        "and nets/s (see docs/SERVING.md)")
    p.add_argument("--eco", action="store_true",
                   help="run the incremental-retiming micro-workload (one "
                        "full pass, then k single-net edits) instead of "
                        "the pipeline workload; see docs/ECO.md")
    p.add_argument("--host", default=None,
                   help="with --serve: target an already-running server "
                        "instead of an in-process one")
    p.add_argument("--port", type=int, default=None,
                   help="with --serve: port of the external server")
    p.add_argument("-o", "--outdir", default=".",
                   help="directory for BENCH_<date>.json (default: cwd, "
                        "i.e. the repo root when run from it)")
    p.add_argument("--date", help="override the date stamp in the filename "
                                  "(YYYY-MM-DD; default: today)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the parallel stages (0 = all "
                        "cores; capped at core count); recorded in the "
                        "report's workload block")
    p.set_defaults(handler=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the timing-estimation service (see docs/SERVING.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8731,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--workers", type=int, default=2,
                   help="estimation worker threads")
    p.add_argument("-m", "--model", default=None,
                   help="trained estimator .npz to serve as the first tier "
                        "(requires --dataset for the feature scaler)")
    p.add_argument("-d", "--dataset", default=None,
                   help="dataset .npz the model was trained on (restores "
                        "the feature scaler)")
    p.add_argument("--plan", choices=sorted(PLANS), default="PlanB",
                   help="plan the model was trained with")
    p.add_argument("--net-timeout", type=float, default=0.25,
                   help="per-net tier timeout in seconds")
    p.add_argument("--max-queue", type=int, default=256,
                   help="admission queue bound (backpressure beyond it)")
    p.add_argument("--default-deadline", type=float, default=2.0,
                   help="seconds granted to requests that name no deadline")
    p.add_argument("--persist-cache",
                   help="directory for the disk-persistent eigensolve cache "
                        "(also REPRO_SOLVE_CACHE_DIR)")
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "lint",
        help="run the repo's AST invariant linter (see docs/LINTING.md)")
    p.add_argument("paths", nargs="*", default=["src", "tools"],
                   help="files/directories to lint (default: src tools)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule names to run exclusively "
                        "(e.g. ERR001,ERR002)")
    p.add_argument("--ignore", default=None,
                   help="comma-separated rule names to skip")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   dest="fmt", help="report format (json is repro-lint/4)")
    p.add_argument("--baseline", default=None,
                   help="baseline file of grandfathered findings (default: "
                        "lint-baseline.json when it exists)")
    p.add_argument("--deep", action="store_true",
                   help="run the whole-program analysis tier (FLOW/SHAPE/"
                        "UNIT packs) with the incremental summary cache")
    p.add_argument("--concurrency", action="store_true",
                   help="also run the CONC pack (lock-order, guarded-by, "
                        "thread-escape); implies --deep")
    p.add_argument("--perf", action="store_true",
                   help="also run the profile-guided PERF pack (scalar "
                        "solves in net loops, per-iteration allocation, "
                        "cache bypasses); implies --deep")
    p.add_argument("--arch", action="store_true",
                   help="also run the ARCH pack (layer contracts from "
                        "[tool.repro-lint.layers]); implies --deep")
    p.add_argument("--hot-profile", action="append", default=[],
                   metavar="PATH",
                   help="with --perf: BENCH_*.json or REPRO_TRACE JSONL "
                        "profile ranking findings by measured cost "
                        "(repeatable; default: newest BENCH_*.json in the "
                        "working directory)")
    p.add_argument("--changed", action="store_true",
                   help="lint only files changed vs the git merge base "
                        "(fast path for PR builds)")
    p.add_argument("--exclude", action="append", default=[],
                   metavar="GLOB",
                   help="glob of files to skip (repeatable; merged with "
                        "[tool.repro-lint] exclude)")
    p.add_argument("--cache", default=None, metavar="PATH",
                   help="deep-tier cache file (default: "
                        ".repro-lint-cache.json; 'off' disables)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write the current findings to the baseline file "
                        "and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("-o", "--output",
                   help="also write the report to this file")
    p.set_defaults(handler=_cmd_lint)
    return parser


# ----------------------------------------------------------------------
def _cli_jobs(requested: int) -> int:
    """Resolve a ``--jobs`` value to the worker count actually used.

    ``0`` means "all cores"; explicit requests are capped at the machine's
    core count — oversubscribing a CPU-bound pool only adds contention,
    and results are jobs-invariant either way.
    """
    from .parallel import resolve_jobs

    return resolve_jobs(requested)


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .data import generate_dataset, save_dataset

    dataset = generate_dataset(
        train_names=args.train, test_names=args.test, scale=args.scale,
        nets_per_design=args.nets, si_mode=not args.no_si, seed=args.seed,
        n_jobs=_cli_jobs(args.jobs))
    save_dataset(args.output, dataset)
    print(f"wrote {args.output}: {len(dataset.train)} train nets "
          f"({dataset.num_train_paths} paths), {len(dataset.test)} test nets "
          f"({dataset.num_test_paths} paths)")
    if dataset.skipped:
        print(f"skipped {len(dataset.skipped)} pathological net(s):")
        for record in dataset.skipped:
            print(f"  {record.design}/{record.net}: {record.reason}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .baselines import make_baseline_factory
    from .core import WireTimingEstimator
    from .data import load_dataset, train_val_split

    dataset = load_dataset(args.dataset)
    config = replace(PLANS[args.plan], epochs=args.epochs, seed=args.seed)
    factory = None
    if args.model != "gnntrans":
        factory = make_baseline_factory(args.model)
    estimator = WireTimingEstimator(config, model_factory=factory)
    train, val = train_val_split(dataset.train, 0.1, seed=args.seed)
    history = estimator.fit(train, val_samples=val, epochs=args.epochs)
    estimator.save(args.output)
    print(f"trained {args.model} ({args.plan}) for {len(history)} epochs; "
          f"final loss {history.final_train_loss:.5f}; wrote {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import WireTimingEstimator
    from .data import load_dataset, nontree_only
    from .features import NUM_NODE_FEATURES, NUM_PATH_FEATURES

    dataset = load_dataset(args.dataset)
    estimator = WireTimingEstimator(PLANS[args.plan])
    estimator.load(args.model, NUM_NODE_FEATURES, NUM_PATH_FEATURES)
    samples = dataset.test
    if args.nontree:
        samples = nontree_only(samples)
    if not samples:
        print("no samples in the requested subset", file=sys.stderr)
        return 1
    jobs = _cli_jobs(args.jobs)
    if args.per_design:
        from .data import by_design

        for design, group in sorted(by_design(samples).items()):
            print(f"{design:<12} {estimator.evaluate(group, jobs=jobs)}")
    print(f"{'overall':<12} {estimator.evaluate(samples, jobs=jobs)}")
    return 0


def _cmd_spef_timing(args: argparse.Namespace) -> int:
    from .analysis import GoldenTimer
    from .rcnet import SPEFError, load_spef

    try:
        design = load_spef(args.spef, strict=not args.lenient)
    except (OSError, SPEFError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    timer = GoldenTimer(drive_resistance=args.drive_res,
                        si_mode=not args.no_si)
    print(f"design {design.design!r}: {len(design)} nets "
          f"(input slew {args.input_slew} ps, Rdrv {args.drive_res} ohm)")
    for skip in design.skipped:
        print(f"skipped net {skip.name!r} (line {skip.line}): {skip.reason}",
              file=sys.stderr)
    for net in design.nets:
        result = timer.analyze(net, args.input_slew * 1e-12)
        for timing in result.sink_timings:
            sink_name = net.nodes[timing.sink].name
            print(f"{net.name:<20} {sink_name:<24} "
                  f"delay {timing.delay / 1e-12:8.3f} ps   "
                  f"slew {timing.slew / 1e-12:8.3f} ps")
    return 0


def _cmd_export_design(args: argparse.Namespace) -> int:
    import os

    from .design import export_design, generate_benchmark
    from .liberty import make_default_library, save_liberty

    library = make_default_library()
    try:
        netlist = generate_benchmark(args.benchmark, library, args.scale)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    os.makedirs(args.outdir, exist_ok=True)
    verilog_text, spef_text = export_design(netlist)
    with open(os.path.join(args.outdir, "netlist.v"), "w") as handle:
        handle.write(verilog_text)
    with open(os.path.join(args.outdir, "parasitics.spef"), "w") as handle:
        handle.write(spef_text)
    save_liberty(os.path.join(args.outdir, "cells.lib"), library)
    print(f"wrote netlist.v, parasitics.spef, cells.lib to {args.outdir} "
          f"({netlist.num_cells} cells, {netlist.num_nets} nets)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.hot:
        return _report_hot(args.hot, args.top)
    missing = [flag for flag, value in (("--verilog", args.verilog),
                                        ("--spef", args.spef),
                                        ("--lib", args.lib))
               if value is None]
    if missing:
        print(f"error: {', '.join(missing)} required (or use --hot "
              f"PROFILE for a hot-function report)", file=sys.stderr)
        return 2

    import numpy as np

    from .design import (AWEWireModel, D2MWireModel, ElmoreWireModel,
                         GoldenWireModel, STAEngine, format_design_report,
                         import_design, sample_timing_paths)
    from .design.interchange import InterchangeError
    from .design.verilog import VerilogError
    from .liberty import LibertyError, load_liberty
    from .obs import get_tracer
    from .rcnet import SPEFError

    from .robustness import default_fallback_chain

    tracer = get_tracer()
    if args.profile or args.json:
        # Structured stage timings are wanted: record spans for this run.
        tracer.reset()
        tracer.enable()

    engines = {"golden": GoldenWireModel, "elmore": ElmoreWireModel,
               "d2m": D2MWireModel, "awe": AWEWireModel,
               "fallback": default_fallback_chain}
    try:
        library = load_liberty(args.lib)
        with open(args.verilog) as handle:
            verilog_text = handle.read()
        with open(args.spef) as handle:
            spef_text = handle.read()
        netlist = import_design(verilog_text, spef_text, library)
    except (OSError, LibertyError, SPEFError, VerilogError,
            InterchangeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    clock_period = args.clock * 1e-12
    launch_slew = 20e-12
    if args.sdc:
        from .design.sdc import SDCError as _SDCError
        from .design.sdc import parse_sdc

        try:
            with open(args.sdc) as handle:
                constraints = parse_sdc(handle.read())
        except (OSError, _SDCError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        clock_period = constraints.clock_period
        launch_slew = constraints.input_transition
    for path in sample_timing_paths(netlist, args.paths,
                                    np.random.default_rng(args.seed)):
        netlist.add_path(path)
    if not netlist.paths:
        print("error: no launch-to-capture paths found", file=sys.stderr)
        return 1
    wire_model = engines[args.engine]()
    report = STAEngine(netlist, wire_model,
                       launch_slew=launch_slew).analyze_design(
                           jobs=_cli_jobs(args.jobs))
    if args.json:
        from .obs import dump_json, observability_document

        document = observability_document(extra={
            "schema": "repro-report/1",
            "design": report.design,
            "wire_model": report.wire_model,
            "clock_period_s": clock_period,
            "gate_seconds": report.gate_seconds,
            "wire_seconds": report.wire_seconds,
            "paths": [{"name": p.path_name, "arrival_s": p.arrival,
                       "gate_s": p.gate_delay_total,
                       "wire_s": p.wire_delay_total,
                       "stages": len(p.stages)} for p in report.paths],
        })
        if hasattr(wire_model, "counters"):
            document["fallback_tiers"] = wire_model.counters()
        print(dump_json(document))
        return 0
    print(format_design_report(report, top=10, clock_period=clock_period))
    if hasattr(wire_model, "degradation_report"):
        print()
        print(wire_model.degradation_report())
    if args.profile:
        from .obs import aggregate_spans, format_profile

        print()
        print(format_profile(aggregate_spans(tracer.spans),
                             title=f"per-stage profile ({report.design}, "
                                   f"{report.wire_model})"))
    return 0


def _report_hot(profiles: List[str], top: int) -> int:
    """``repro report --hot``: top functions by exclusive seconds."""
    from .lint.hotness import ProfileError, load_hotness

    try:
        hotness = load_hotness(profiles)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not hotness:
        print("no spans found in the given profile(s)", file=sys.stderr)
        return 1
    spots = hotness.top(max(top, 1))
    print(f"hot functions ({', '.join(hotness.sources)}; "
          f"threshold {hotness.threshold_s:.3f}s)")
    header = (f"  {'exclusive_s':>11}  {'wall_s':>9}  {'calls':>7}  "
              f"{'span':<24} function")
    print(header)
    for spot in spots:
        where = (f"{spot.module}.{spot.qualname}" if spot.module
                 else "(harness)")
        marker = "*" if spot.exclusive_s >= hotness.threshold_s else " "
        print(f"{marker} {spot.exclusive_s:>11.4f}  {spot.wall_s:>9.4f}  "
              f"{spot.calls:>7d}  {spot.span:<24} {where}")
    print(f"  (* = hot: above threshold; {len(hotness.spots)} span(s) "
          f"total)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .obs import (DEFAULT_WORKLOAD, QUICK_WORKLOAD, format_bench_summary,
                      run_bench, write_bench_report)

    if args.serve and args.eco:
        print("error: --serve and --eco are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.serve:
        return _cmd_bench_serve(args)
    if args.eco:
        return _cmd_bench_eco(args)
    workload = QUICK_WORKLOAD if args.quick else DEFAULT_WORKLOAD
    jobs = _cli_jobs(args.jobs)
    if jobs != workload.jobs:
        workload = replace(workload, jobs=jobs)
    document = run_bench(workload)
    try:
        path = write_bench_report(document, out_dir=args.outdir,
                                  date=args.date)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_bench_summary(document))
    print(f"wrote {path}")
    return 0


def _cmd_bench_eco(args: argparse.Namespace) -> int:
    from .obs import (DEFAULT_ECO_WORKLOAD, QUICK_ECO_WORKLOAD,
                      format_eco_summary, run_eco_bench, write_bench_report)

    workload = QUICK_ECO_WORKLOAD if args.quick else DEFAULT_ECO_WORKLOAD
    document = run_eco_bench(workload)
    try:
        path = write_bench_report(document, out_dir=args.outdir,
                                  date=args.date)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_eco_summary(document))
    print(f"wrote {path}")
    return 0 if document["results"]["eco"]["parity_ok"] else 1


def _cmd_sta(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from .design import (AWEWireModel, D2MWireModel, ECOTimingEngine,
                         ElmoreWireModel, GoldenWireModel, STAEngine,
                         apply_edit_command, generate_benchmark,
                         load_edit_script, sample_timing_paths)
    from .liberty import make_default_library
    from .robustness.errors import EstimationError

    if args.edits and not args.incremental:
        print("error: --edits requires --incremental", file=sys.stderr)
        return 2
    engines = {"golden": GoldenWireModel, "elmore": ElmoreWireModel,
               "d2m": D2MWireModel, "awe": AWEWireModel}
    library = make_default_library()
    try:
        netlist = generate_benchmark(args.benchmark, library, args.scale)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rng = np.random.default_rng(args.seed)
    for path in sample_timing_paths(netlist, args.paths, rng):
        netlist.add_path(path)
    if not netlist.paths:
        print("error: no launch-to-capture paths found", file=sys.stderr)
        return 1
    wire_model = engines[args.engine]()

    if not args.incremental:
        report = STAEngine(netlist, wire_model).analyze_design()
        worst = max(report.paths, key=lambda p: p.arrival)
        print(f"{netlist.name}: {len(report.paths)} paths via "
              f"{report.wire_model}; worst arrival "
              f"{worst.arrival / 1e-12:.1f} ps ({worst.path_name})")
        return 0

    engine = ECOTimingEngine(netlist, wire_model)
    engine.full_pass()
    print(f"{netlist.name}: full pass over {len(netlist.paths)} paths "
          f"({engine.engine.misses} stages timed)")
    if args.edits:
        try:
            with open(args.edits) as handle:
                document = json.load(handle)
            commands = load_edit_script(document)
        except (OSError, json.JSONDecodeError, EstimationError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for command in commands:
            try:
                edit = apply_edit_command(netlist, library, command)
                outcome = engine.apply(edit)
            except EstimationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"  {edit.summary()}: retimed {outcome.cone_size} "
                  f"path(s), reused {outcome.stages_reused} stage(s), "
                  f"dropped {outcome.stale_entries_dropped} memo "
                  f"entr(y/ies)")
        worst = max(engine.results, key=lambda p: p.arrival)
        print(f"after {len(commands)} edit(s): worst arrival "
              f"{worst.arrival / 1e-12:.1f} ps ({worst.path_name})")
    if args.verify:
        problems = engine.verify_parity()
        if problems:
            print(f"PARITY VIOLATION ({len(problems)} mismatches):",
                  file=sys.stderr)
            for problem in problems[:10]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("parity ok: bitwise identical to a cold full pass")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .obs import write_bench_report
    from .serve import (QUICK_SERVE_WORKLOAD, THROUGHPUT_SERVE_WORKLOAD,
                        format_serve_summary, run_serve_bench)

    workload = QUICK_SERVE_WORKLOAD if args.quick \
        else THROUGHPUT_SERVE_WORKLOAD
    document = run_serve_bench(workload, host=args.host, port=args.port)
    try:
        path = write_bench_report(document, out_dir=args.outdir,
                                  date=args.date)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_serve_summary(document))
    print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server
    from .serve.admission import AdmissionConfig

    learned = None
    if args.model:
        if not args.dataset:
            print("error: --model needs --dataset (the dataset .npz "
                  "carries the feature scaler)", file=sys.stderr)
            return 2
        from .core import WireTimingEstimator
        from .core.estimator import LearnedWireModel
        from .data import load_dataset
        from .features import NUM_NODE_FEATURES, NUM_PATH_FEATURES

        try:
            dataset = load_dataset(args.dataset)
            estimator = WireTimingEstimator(PLANS[args.plan])
            estimator.load(args.model, NUM_NODE_FEATURES, NUM_PATH_FEATURES)
        except (OSError, KeyError, ValueError) as exc:
            print(f"error: cannot load model/dataset: {exc}",
                  file=sys.stderr)
            return 1
        if dataset.scaler is None:
            print("error: dataset carries no feature scaler",
                  file=sys.stderr)
            return 1
        learned = LearnedWireModel(estimator, dataset.scaler)
    admission = AdmissionConfig(max_queue=args.max_queue,
                                default_deadline_s=args.default_deadline)
    config = ServeConfig(host=args.host, port=args.port,
                         workers=args.workers,
                         net_timeout_s=args.net_timeout,
                         persist_cache_dir=args.persist_cache,
                         admission=admission)
    return run_server(config, learned=learned)


def _git_changed_files() -> Optional[List[str]]:
    """Changed files vs the merge base (plus the working tree), or ``None``.

    ``None`` means git could not answer (not a checkout, no HEAD, ...);
    the caller falls back to a full run rather than guessing.
    """
    import subprocess

    def _run(cmd: List[str]) -> Optional[List[str]]:
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0:
            return None
        return [line.strip() for line in proc.stdout.splitlines()
                if line.strip()]

    names = _run(["git", "diff", "--name-only", "HEAD"])
    if names is None:
        return None
    changed = set(names)
    for ref in ("origin/main", "main", "master"):
        base = _run(["git", "merge-base", "HEAD", ref])
        if not base:
            continue
        against = _run(["git", "diff", "--name-only", f"{base[0]}..HEAD"])
        if against is not None:
            changed.update(against)
        break
    return sorted(changed)


def _restrict_to_changed(paths: List[str],
                         changed: List[str]) -> List[str]:
    """Changed ``.py`` files that live under one of the requested paths."""
    import os.path

    roots = [os.path.normpath(p) for p in paths]
    kept: List[str] = []
    for name in changed:
        if not name.endswith(".py") or not os.path.isfile(name):
            continue
        normal = os.path.normpath(name)
        for root in roots:
            if root == os.curdir or normal == root \
                    or normal.startswith(root + os.sep):
                kept.append(name)
                break
    return kept


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (DEFAULT_BASELINE, BaselineError, ConfigError,
                       DeclarationError, DeepAnalyzer, LintRunner,
                       default_config, default_rules, load_baseline,
                       render_json, render_text, rule_catalogue,
                       write_baseline)
    from .lint.concurrency import CONC_RULE_CATALOGUE, CONC_RULE_NAMES
    from .lint.deep import DEEP_RULE_CATALOGUE, DEEP_RULE_NAMES
    from .lint.hotness import ProfileError, discover_default_profile
    from .lint.layers import ARCH_RULE_CATALOGUE, ARCH_RULE_NAMES
    from .lint.perf import PERF_RULE_CATALOGUE, PERF_RULE_NAMES

    rules = default_rules()
    if args.list_rules:
        print(rule_catalogue(list(rules) + list(DEEP_RULE_CATALOGUE)
                             + list(CONC_RULE_CATALOGUE)
                             + list(PERF_RULE_CATALOGUE)
                             + list(ARCH_RULE_CATALOGUE)))
        return 0

    def _names(raw: Optional[str]) -> Optional[List[str]]:
        if raw is None:
            return None
        return [part.strip() for part in raw.split(",") if part.strip()]

    try:
        config = default_config(refresh=True)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        runner = LintRunner(rules, select=_names(args.select),
                            ignore=_names(args.ignore),
                            exclude=tuple(config.exclude)
                            + tuple(args.exclude),
                            extra_rule_names=DEEP_RULE_NAMES
                            + CONC_RULE_NAMES + PERF_RULE_NAMES
                            + ARCH_RULE_NAMES)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deep = None
    if args.deep or args.concurrency or args.perf or args.arch:
        conc = bool(args.concurrency)
        profiles = list(args.hot_profile)
        if args.perf and not profiles:
            discovered = discover_default_profile()
            if discovered is not None:
                profiles = [discovered]
                print(f"note: --perf ranking findings against {discovered} "
                      f"(pass --hot-profile to override)", file=sys.stderr)
        extras = dict(concurrency=conc, perf=bool(args.perf),
                      arch=bool(args.arch), hot_profiles=profiles)
        try:
            if args.cache == "off":
                deep = DeepAnalyzer(config=config, cache_path=None,
                                    **extras)
            elif args.cache:
                deep = DeepAnalyzer(config=config, cache_path=args.cache,
                                    **extras)
            else:
                deep = DeepAnalyzer(config=config, **extras)
        except (DeclarationError, ProfileError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    paths = list(args.paths)
    changed_mode = False
    if args.changed:
        changed = _git_changed_files()
        if changed is None:
            print("warning: --changed needs a git checkout; "
                  "linting everything", file=sys.stderr)
        else:
            paths = _restrict_to_changed(paths, changed)
            changed_mode = True
            if not paths:
                print("clean: no changed python files under the "
                      "requested paths")
                return 0
    baseline_path = args.baseline or DEFAULT_BASELINE
    try:
        baseline = [] if args.write_baseline else load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = runner.run(paths, baseline=baseline, deep=deep)
    if changed_mode:
        # A restricted file set cannot see most baselined findings, so
        # "stale entry" would be a false alarm here.
        result.stale_baseline = []
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"wrote {len(result.findings)} finding(s) to {baseline_path}; "
              f"add a justification to every entry")
        return 0
    report = render_json(result) if args.fmt == "json" else \
        render_text(result) + "\n"
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}",
                  file=sys.stderr)
            return 2
    print(report, end="")
    return result.exit_code


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    from .bench import format_table
    from .design import PAPER_BENCHMARKS

    rows = [[s.split, s.name, s.cells, s.nets, s.nontree_nets, s.ffs, s.paths]
            for s in PAPER_BENCHMARKS.values()]
    print(format_table(
        ["split", "benchmark", "#cells", "#nets", "#non-tree", "#FFs", "#CPs"],
        rows, title="Table II benchmark suite (paper-size statistics)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
