"""Ordered, crash-tolerant process-pool map with deterministic seeding.

Design constraints, in order of importance:

1. **Determinism** — ``parallel_map(fn, items, jobs=N)`` must return exactly
   what ``[fn(x) for x in items]`` returns, for any ``N``.  Results are
   collected by task index, never by completion order, and per-task RNG
   streams come from :func:`spawn_seeds` (``SeedSequence.spawn``) so they do
   not depend on how tasks land on workers.
2. **Crash containment** — a worker process dying mid-task (segfault, OOM
   kill, ``os._exit``) must not kill an hours-long run.  The crash becomes a
   typed :class:`~repro.robustness.errors.WorkerError` and, by default, the
   affected tasks are retried serially in the parent — a degradation tier in
   the spirit of :class:`~repro.robustness.fallback.FallbackChain`, recorded
   in the caller-supplied ``failures`` list and the ``parallel.*`` counters
   rather than silent.
3. **Spawn safety** — ``fn``, ``initializer`` and every item must be
   picklable module-level objects; the map works under any multiprocessing
   start method (the ``spawn`` method is exercised in the test-suite).

Ordinary exceptions raised *by* ``fn`` inside a worker are re-raised in the
parent exactly as the serial loop would raise them; only process death is
treated specially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, List, Optional, Sequence,
                    Tuple, TypeVar)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext

import numpy as np

from ..obs import get_metrics, get_tracer
from ..robustness.errors import WorkerError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the multiprocessing start method.
MP_CONTEXT_ENV = "REPRO_MP_CONTEXT"

_TASKS = get_metrics().counter("parallel.tasks")
_CRASHES = get_metrics().counter("parallel.worker_crashes")
_RETRIES = get_metrics().counter("parallel.serial_retries")
_JOBS_GAUGE = get_metrics().gauge("parallel.jobs")


@dataclass(frozen=True)
class MapFailure:
    """Record of one worker crash observed while serving a task.

    ``recovered`` tells whether the in-parent serial retry produced the
    result (the run continued bit-identically) or the task's error was
    re-raised to the caller.
    """

    index: int
    reason: str
    recovered: bool


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a user-facing ``--jobs`` value to a worker count.

    ``None`` and ``0`` mean "all cores"; negative values are rejected.  The
    result is never larger than the machine's CPU count — more workers than
    cores only adds memory pressure for this CPU-bound pipeline.
    """
    cores = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cores
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(jobs, cores)


def spawn_seeds(seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences of one workload seed.

    ``SeedSequence.spawn`` guarantees statistically independent streams that
    depend only on ``(seed, child index)`` — never on worker assignment or
    completion order — which is what makes ``--jobs N`` and ``--jobs 1``
    datasets identical.  Arithmetic offsets (``seed + i``) do not: adjacent
    seeds produce correlated generators and collide across stages.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return np.random.SeedSequence(seed).spawn(count)


def worker_context(name: Optional[str] = None) -> "BaseContext":
    """The multiprocessing context used for worker pools.

    Resolution order: explicit ``name`` argument, the :data:`MP_CONTEXT_ENV`
    environment variable, then ``"fork"`` where available (fast start, no
    re-import of numpy per worker) with ``"spawn"`` as the portable default.
    Everything shipped to workers is picklable, so any method works.
    """
    import multiprocessing

    if name is None:
        name = os.environ.get(MP_CONTEXT_ENV)
    if name is None:
        name = "fork" if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
    return multiprocessing.get_context(name)


def parallel_map(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1, *,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Tuple = (),
                 context: Optional[str] = None,
                 retry_crashed: bool = True,
                 failures: Optional[List[MapFailure]] = None,
                 label: str = "map") -> List[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Parameters
    ----------
    fn:
        Module-level (picklable) callable applied to each item.
    items:
        Task inputs; results come back in the same order.
    jobs:
        Worker processes.  ``jobs <= 1`` (or fewer than two items) runs the
        plain in-process loop — byte-for-byte the serial semantics, no pool.
    initializer, initargs:
        Optional per-worker setup hook (ships shared read-only state once
        per worker instead of once per task).
    context:
        Multiprocessing start-method name; see :func:`worker_context`.
    retry_crashed:
        When a worker dies mid-task: ``True`` re-runs the affected tasks
        serially in the parent (the degradation tier), ``False`` raises the
        typed :class:`~repro.robustness.errors.WorkerError` immediately.
    failures:
        Optional list collecting one :class:`MapFailure` per crash-affected
        task, for caller-side reporting.
    label:
        Span/metric label for observability (``parallel.<label>``).

    Raises
    ------
    WorkerError
        A worker crashed and ``retry_crashed`` is false.
    Exception
        Any exception ``fn`` itself raises, exactly like the serial loop.
    """
    items = list(items)
    _TASKS.inc(len(items))
    if jobs is None or jobs <= 0:
        jobs = resolve_jobs(jobs)
    jobs = max(1, min(jobs, len(items)))
    with get_tracer().span(f"parallel.{label}", jobs=jobs, tasks=len(items)):
        if jobs <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(item) for item in items]
        _JOBS_GAUGE.set(jobs)
        return _pool_map(fn, items, jobs, initializer, initargs, context,
                         retry_crashed, failures)


def _pool_map(fn: Callable[[T], R], items: Sequence[T], jobs: int,
              initializer: Optional[Callable[..., None]],
              initargs: Tuple[Any, ...], context: Optional[str],
              retry_crashed: bool,
              failures: Optional[List[MapFailure]]) -> List[R]:
    mp_context = worker_context(context)
    results: List[Any] = [None] * len(items)
    crashed: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context,
                             initializer=initializer,
                             initargs=initargs) as pool:
        futures = {index: pool.submit(fn, item)
                   for index, item in enumerate(items)}
        for index in range(len(items)):
            try:
                results[index] = futures[index].result()
            except BrokenProcessPool as exc:
                # The dying worker takes the whole pool down; every task
                # that has not returned yet lands here.  Contain, record,
                # and let the serial tier below finish the job.
                _CRASHES.inc()
                crashed.append(index)
                if not retry_crashed:
                    error = WorkerError(
                        f"worker process died while serving task {index}: "
                        f"{exc}", task_index=index, cause=exc)
                    if failures is not None:
                        failures.append(MapFailure(index, str(error),
                                                   recovered=False))
                    raise error from exc
    if crashed:
        if initializer is not None:
            initializer(*initargs)
        for index in crashed:
            _RETRIES.inc()
            if failures is not None:
                failures.append(MapFailure(
                    index, "worker process died; task re-run serially "
                           "in the parent", recovered=True))
            results[index] = fn(items[index])
    return results
