"""Parallel execution layer for the golden-label pipeline.

The paper exists because sign-off timing of every routed net is too slow;
the reproduction's own bottleneck is the same stage — golden transient
labeling — running as a serial single-process loop.  This package provides
the process-pool machinery that dataset generation, batch evaluation and
STA use to scale across cores while staying *bit-identical* to the serial
path:

* :func:`parallel_map` — ordered, spawn-safe process-pool map with typed
  worker-crash degradation (:class:`~repro.robustness.errors.WorkerError`
  plus an in-parent serial retry) instead of an aborted run;
* :func:`spawn_seeds` — independent per-task RNG streams derived from one
  workload seed via ``numpy.random.SeedSequence.spawn``, so results do not
  depend on the worker count;
* :func:`resolve_jobs` — normalizes a user-facing ``--jobs`` value.
"""

from .pool import (MapFailure, parallel_map, resolve_jobs, spawn_seeds,
                   worker_context)

__all__ = ["parallel_map", "spawn_seeds", "resolve_jobs", "MapFailure",
           "worker_context"]
