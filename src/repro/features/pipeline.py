"""Feature pipeline: per-net graph samples and standardization.

A :class:`NetSample` is the fully numeric view of one RC net that every
model in this repo (GNNTrans and all baselines) consumes: node feature
matrix ``X``, resistance-weighted adjacency ``A``, per-path feature vectors
``H`` with node-membership index lists, and golden slew/delay labels in
picoseconds (Fig. 5 of the paper, in data-structure form).

:class:`FeatureScaler` standardizes node and path features with statistics
fitted on the training split only, as proper ML hygiene requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.simulator import GoldenTimer, WireTimingResult
from ..obs import get_metrics, get_tracer
from ..rcnet.graph import RCNet
from ..rcnet.paths import WirePath, extract_wire_paths
from .node_features import NUM_NODE_FEATURES, extract_node_features
from .path_features import (NUM_PATH_FEATURES, NetAnalysis, NetContext,
                            extract_path_features)

_PS = 1e-12
# Resistance scale (ohms) dividing the weighted adjacency so the GNN
# aggregation weights land near unity.
ADJACENCY_RESISTANCE_SCALE = 100.0

_SAMPLES_BUILT = get_metrics().counter("features.samples_built")


@dataclass
class PathRecord:
    """One wire path of a sample: node membership, features and labels.

    ``input_slew_ps`` keeps the *raw* driver transition (also present,
    standardized, inside ``features``) so estimators can predict the slew
    degradation ``label_slew - input_slew_ps`` and reconstruct absolute
    slew at inference time.
    """

    sink: int
    node_indices: Tuple[int, ...]
    features: np.ndarray          # (NUM_PATH_FEATURES,)
    label_slew: float             # golden wire slew, ps
    label_delay: float            # golden wire delay, ps
    input_slew_ps: float = 0.0    # raw driver transition, ps


@dataclass
class NetSample:
    """Fully numeric training/evaluation sample for one net."""

    name: str
    design: str
    is_tree: bool
    node_features: np.ndarray     # (N, NUM_NODE_FEATURES)
    adjacency: np.ndarray         # (N, N) scaled resistance weights
    paths: List[PathRecord] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """(slews, delays) label vectors in picoseconds."""
        slews = np.array([p.label_slew for p in self.paths])
        delays = np.array([p.label_delay for p in self.paths])
        return slews, delays


def build_adjacency(net: RCNet,
                    scale: float = ADJACENCY_RESISTANCE_SCALE) -> np.ndarray:
    """Resistance-weighted adjacency matrix of Section III-B, rescaled.

    Entries are resistance values divided by ``scale`` so typical weights
    are O(1); zero means "no direct resistance".
    """
    # repro-shape: -> (n, n):f64
    return net.weighted_adjacency() / scale


def build_net_sample(net: RCNet, context: NetContext, design: str = "",
                     timer: Optional[GoldenTimer] = None,
                     paths: Optional[Sequence[WirePath]] = None,
                     labeled: bool = True,
                     golden: Optional[WireTimingResult] = None,
                     analysis: Optional[NetAnalysis] = None) -> NetSample:
    """Extract features (and, by default, golden labels) for one net.

    Parameters
    ----------
    net:
        The RC net.
    context:
        Driver/receiver cells and input slew (see :class:`NetContext`).
    design:
        Owning design name, carried through for per-benchmark reporting.
    timer:
        Golden timer used for labels; a default SI-mode timer is built from
        the drive cell's output resistance when omitted.
    paths:
        Pre-extracted wire paths (computed when omitted).
    labeled:
        When ``False`` the golden timer is skipped entirely and label
        fields are NaN — the inference-time path used when the estimator
        serves as a wire model inside STA.
    golden:
        Pre-computed golden timing for this net (the batched labeler of
        :func:`repro.analysis.batch.golden_analyze_many` supplies it);
        when omitted the timer runs here.  Ignored when ``labeled`` is
        ``False``.
    analysis:
        Pre-computed per-net analytic vectors for the path features (from
        :func:`repro.features.path_features.analyze_nets_for_features`);
        computed here, bitwise identically, when omitted.
    """
    paths = list(paths) if paths is not None else extract_wire_paths(net)
    sink_loads = context.sink_loads()
    if not labeled:
        golden = None
    elif golden is None:
        timer = timer or GoldenTimer(
            drive_resistance=context.drive_cell.drive_resistance)
        golden = timer.analyze(net, context.input_slew, sink_loads)

    node_features = extract_node_features(net)
    path_features = extract_path_features(net, paths, context,
                                          analysis=analysis)
    adjacency = build_adjacency(net)

    records: List[PathRecord] = []
    for row, path in enumerate(paths):
        if golden is not None:
            timing = golden.timing_for(path.sink)
            label_slew, label_delay = timing.slew / _PS, timing.delay / _PS
        else:
            label_slew = label_delay = float("nan")
        records.append(PathRecord(
            sink=path.sink,
            node_indices=path.nodes,
            features=path_features[row],
            label_slew=label_slew,
            label_delay=label_delay,
            input_slew_ps=context.input_slew / _PS,
        ))
    _SAMPLES_BUILT.inc()
    return NetSample(
        name=net.name,
        design=design,
        is_tree=net.is_tree(),
        node_features=node_features,
        adjacency=adjacency,
        paths=records,
    )


class FeatureScaler:
    """Standardizes node and path features to zero mean / unit variance.

    Statistics are fitted on a training set of samples and then applied to
    any split; constant features keep their value but are centered.
    """

    def __init__(self) -> None:
        self.node_mean: Optional[np.ndarray] = None
        self.node_std: Optional[np.ndarray] = None
        self.path_mean: Optional[np.ndarray] = None
        self.path_std: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self.node_mean is not None

    def fit(self, samples: Sequence[NetSample]) -> "FeatureScaler":
        """Fit per-dimension statistics over every node/path in ``samples``."""
        if not samples:
            raise ValueError("cannot fit scaler on an empty sample list")
        with get_tracer().span("features.scaler_fit", samples=len(samples)):
            nodes = np.vstack([s.node_features for s in samples])
            paths = np.vstack([p.features for s in samples for p in s.paths])
            self.node_mean = nodes.mean(axis=0)
            self.node_std = _safe_std(nodes)
            self.path_mean = paths.mean(axis=0)
            self.path_std = _safe_std(paths)
        return self

    def transform(self, samples: Sequence[NetSample]) -> List[NetSample]:
        """Return standardized copies of ``samples`` (inputs untouched)."""
        if not self.fitted:
            raise RuntimeError("FeatureScaler.transform called before fit")
        out: List[NetSample] = []
        for sample in samples:
            node_features = (sample.node_features - self.node_mean) / self.node_std
            paths = [replace(p, features=(p.features - self.path_mean) / self.path_std)
                     for p in sample.paths]
            out.append(replace(sample, node_features=node_features, paths=paths))
        return out

    def fit_transform(self, samples: Sequence[NetSample]) -> List[NetSample]:
        return self.fit(samples).transform(samples)

    # -- persistence -----------------------------------------------------
    def state(self) -> dict:
        if not self.fitted:
            raise RuntimeError("scaler not fitted")
        return {
            "node_mean": self.node_mean, "node_std": self.node_std,
            "path_mean": self.path_mean, "path_std": self.path_std,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FeatureScaler":
        scaler = cls()
        scaler.node_mean = np.asarray(state["node_mean"], dtype=np.float64)
        scaler.node_std = np.asarray(state["node_std"], dtype=np.float64)
        scaler.path_mean = np.asarray(state["path_mean"], dtype=np.float64)
        scaler.path_std = np.asarray(state["path_std"], dtype=np.float64)
        return scaler


def _safe_std(matrix: np.ndarray) -> np.ndarray:
    # repro-shape: matrix=(n, f):f64 -> (f,):f64
    std = matrix.std(axis=0)
    std[std < 1e-12] = 1.0
    return std
