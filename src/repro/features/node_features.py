"""Node (capacitance) feature extraction — the "Node" half of Table I.

Each RC-graph node gets an 8-dimensional raw feature vector:

==  =====================  =============================================
 #  Table I name           Definition used here
==  =====================  =============================================
 0  capacitance value      grounded + coupling capacitance at the node
 1  num of input nodes     neighbors electrically closer to the source
 2  num of output nodes    neighbors electrically farther from the source
 3  tot input cap          summed capacitance of the input neighbors
 4  tot output cap         summed capacitance of the output neighbors
 5  num of connect. res    degree (number of incident resistances)
 6  tot input res          summed resistance of edges toward the source
 7  tot output res         summed resistance of edges away from the source
==  =====================  =============================================

Direction is defined by resistance distance from the source (Dijkstra), so
the definitions extend cleanly to non-tree nets: a neighbor is an *input*
when it sits closer to the source than the node itself.

Values are expressed in the library's natural units (fF, kOhm) so they land
near unity before standardization.
"""

from __future__ import annotations

import numpy as np

from ..analysis.mna import capacitance_vector
from ..rcnet.graph import RCNet
from ..rcnet.paths import shortest_path_tree

NODE_FEATURE_NAMES = (
    "cap_value",
    "num_input_nodes",
    "num_output_nodes",
    "tot_input_cap",
    "tot_output_cap",
    "num_connected_res",
    "tot_input_res",
    "tot_output_res",
)

NUM_NODE_FEATURES = len(NODE_FEATURE_NAMES)

_FF = 1e-15
_KOHM = 1e3


def extract_node_features(net: RCNet) -> np.ndarray:
    """Raw node feature matrix ``X`` of shape ``(num_nodes, 8)``.

    Rows follow node indices; see the module docstring for columns.
    """
    # repro-shape: -> (n, 8):f64
    caps = capacitance_vector(net)  # grounded + quiet coupling caps
    dist, _, _ = shortest_path_tree(net)
    features = np.zeros((net.num_nodes, NUM_NODE_FEATURES), dtype=np.float64)
    for i in range(net.num_nodes):
        features[i, 0] = caps[i] / _FF
        features[i, 5] = net.degree(i)
        for neighbor, edge_index in net.adjacency[i]:
            resistance = net.edges[edge_index].resistance
            if dist[neighbor] <= dist[i] and neighbor != i:
                features[i, 1] += 1.0
                features[i, 3] += caps[neighbor] / _FF
                features[i, 6] += resistance / _KOHM
            else:
                features[i, 2] += 1.0
                features[i, 4] += caps[neighbor] / _FF
                features[i, 7] += resistance / _KOHM
    return features
