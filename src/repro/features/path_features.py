"""Wire-path feature extraction — the "Path" half of Table I.

Each wire path gets a 10-dimensional raw feature vector:

==  ====================  ================================================
 #  Table I name          Definition used here
==  ====================  ================================================
 0  downstream cap        Elmore downstream capacitance at the first
                          stage node of the path (the load the driver
                          sees down this route), fF
 1  stage delay           largest Elmore stage delay along the path, ps
 2  input slew            driver output transition time, ps
 3  dir. of drive cell    drive strength of the driving cell
 4  func. of drive cell   integer function encoding of the driving cell
 5  dir. of load cell     drive strength of the receiving cell
 6  func. of load cell    integer function encoding of the receiving cell
 7  ceff of load cell     effective (pin) capacitance of the receiver, fF
 8  Elmore delay          wire path Elmore delay, ps
 9  D2M delay             wire path D2M delay, ps
==  ====================  ================================================

The paper computes downstream capacitance and stage delays "through the
Elmore delay calculation"; we use the exact generalizations from
:mod:`repro.analysis` so the definitions hold on non-tree nets too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.d2m import d2m_from_moments
from ..analysis.elmore import downstream_caps, stage_delays
from ..analysis.mna import ReducedSystem, reduce_source
from ..analysis.moments import cached_moments, stacked_moments
from ..liberty.cell import Cell
from ..rcnet.graph import RCNet
from ..rcnet.paths import WirePath
from ..robustness.errors import EstimationError, InputError

PATH_FEATURE_NAMES = (
    "downstream_cap",
    "max_stage_delay",
    "input_slew",
    "drive_strength_driver",
    "function_driver",
    "drive_strength_load",
    "function_load",
    "ceff_load",
    "elmore_delay",
    "d2m_delay",
)

NUM_PATH_FEATURES = len(PATH_FEATURE_NAMES)

_FF = 1e-15
_PS = 1e-12


@dataclass(frozen=True)
class NetContext:
    """Electrical context a net is embedded in.

    Attributes
    ----------
    input_slew:
        Driver output transition time in seconds.
    drive_cell:
        The cell driving the net.
    load_cells:
        Receiving cells, aligned with ``net.sinks``.
    """

    input_slew: float
    drive_cell: Cell
    load_cells: Sequence[Cell]

    def sink_loads(self) -> np.ndarray:
        """Receiver pin capacitances in farads, aligned with the sinks."""
        return np.array([cell.input_cap for cell in self.load_cells])


@dataclass(frozen=True)
class NetAnalysis:
    """Precomputed per-net analytic vectors behind the path features.

    All three vectors are indexed by original node index.  ``elmore`` and
    ``d2m`` are delays in seconds; ``downstream`` is downstream capacitance
    in farads.  Produced either scalarly by :func:`analyze_net_features` or
    in size-grouped stacks by :func:`analyze_nets_for_features`; the two
    agree bitwise.
    """

    elmore: np.ndarray        # (n,) seconds
    d2m: np.ndarray           # (n,) seconds
    downstream: np.ndarray    # (n,) farads


def analyze_net_features(net: RCNet,
                         sink_loads: Optional[np.ndarray] = None) -> NetAnalysis:
    """Per-net analytic vectors from a single two-moment computation.

    One :func:`~repro.analysis.moments.cached_moments` call yields both the
    Elmore vector (``-m[0]``, bitwise equal to
    :func:`~repro.analysis.elmore.elmore_delays`) and the D2M metric, so
    feature extraction performs one reduction and two solves per net
    instead of two reductions and three solves — and zero of either when
    the solve cache has already seen the net.
    """
    m = cached_moments(net, order=2, sink_loads=sink_loads)
    elmore = -m[0]
    elmore[net.source] = 0.0    # undo the -0.0 the negation puts at the source
    return NetAnalysis(
        elmore=elmore,
        d2m=d2m_from_moments(m),
        downstream=downstream_caps(net, sink_loads=sink_loads),
    )


def analyze_nets_for_features(
        items: Sequence[Tuple[RCNet, Optional[np.ndarray]]],
) -> List[Optional[NetAnalysis]]:
    """Batch :func:`analyze_net_features` over many ``(net, sink_loads)``.

    Reduced systems are grouped by node count and pushed through
    :func:`~repro.analysis.moments.stacked_moments`, so each slice matches
    the scalar path bitwise.  Entries whose reduction or whose group solve
    fails come back ``None`` — the caller's scalar path recomputes (and
    re-raises the original error) for those nets, keeping per-net error
    isolation identical to the unbatched pipeline.
    """
    analyses: List[Optional[NetAnalysis]] = [None] * len(items)
    groups: Dict[int, List[Tuple[int, ReducedSystem]]] = {}
    for idx, (net, loads) in enumerate(items):
        try:
            system = reduce_source(net, None, loads)
        except EstimationError:
            continue
        groups.setdefault(len(system.nodes), []).append((idx, system))
    for size in sorted(groups):
        members = groups[size]
        g_stack = np.stack([system.g for _, system in members])
        caps_stack = np.stack([system.caps for _, system in members])
        try:
            stacked = stacked_moments(g_stack, caps_stack, 2)
        except np.linalg.LinAlgError:
            continue    # a singular member poisons the stack: all go scalar
        for row, (idx, system) in enumerate(members):
            net, loads = items[idx]
            m = np.zeros((2, net.num_nodes), dtype=np.float64)
            m[:, system.nodes] = stacked[row]
            elmore = -m[0]
            elmore[net.source] = 0.0
            analyses[idx] = NetAnalysis(
                elmore=elmore,
                d2m=d2m_from_moments(m),
                downstream=downstream_caps(net, sink_loads=loads),
            )
    return analyses


def extract_path_features(net: RCNet, paths: Sequence[WirePath],
                          context: NetContext,
                          analysis: Optional[NetAnalysis] = None) -> np.ndarray:
    """Raw path feature matrix ``H`` of shape ``(num_paths, 10)``.

    ``paths`` must be ordered like ``net.sinks`` (the order produced by
    :func:`repro.rcnet.paths.extract_wire_paths`).  ``analysis`` optionally
    supplies the per-net vectors precomputed by
    :func:`analyze_nets_for_features`; when omitted they are computed here,
    bitwise identically.
    """
    # repro-shape: -> (p, 10):f64
    if len(context.load_cells) != net.num_sinks:
        raise InputError(
            f"context has {len(context.load_cells)} load cells for "
            f"{net.num_sinks} sinks", net=net.name, stage="features")
    sink_loads = context.sink_loads()
    if analysis is None:
        analysis = analyze_net_features(net, sink_loads=sink_loads)
    elmore, d2m, downstream = analysis.elmore, analysis.d2m, analysis.downstream
    sink_position = {sink: i for i, sink in enumerate(net.sinks)}

    features = np.zeros((len(paths), NUM_PATH_FEATURES), dtype=np.float64)
    for row, path in enumerate(paths):
        load_cell = context.load_cells[sink_position[path.sink]]
        stages = stage_delays(net, path, sink_loads=sink_loads,
                              downstream=downstream)
        first_stage_node = path.nodes[1] if len(path.nodes) > 1 else path.nodes[0]
        features[row, 0] = downstream[first_stage_node] / _FF
        features[row, 1] = (stages.max() if stages.size else 0.0) / _PS
        features[row, 2] = context.input_slew / _PS
        features[row, 3] = context.drive_cell.drive_strength
        features[row, 4] = context.drive_cell.function_id
        features[row, 5] = load_cell.drive_strength
        features[row, 6] = load_cell.function_id
        features[row, 7] = load_cell.input_cap / _FF
        features[row, 8] = elmore[path.sink] / _PS
        features[row, 9] = d2m[path.sink] / _PS
    return features
