"""Feature extraction implementing Table I of the paper.

Raw node features come from the RC parasitics, raw path features from
Elmore/D2M analysis plus the driving and receiving cells; both are packaged
into per-net :class:`NetSample` objects and standardized with a
training-set-fitted :class:`FeatureScaler`.
"""

from .node_features import (NODE_FEATURE_NAMES, NUM_NODE_FEATURES,
                            extract_node_features)
from .path_features import (NUM_PATH_FEATURES, PATH_FEATURE_NAMES,
                            NetContext, extract_path_features)
from .pipeline import (ADJACENCY_RESISTANCE_SCALE, FeatureScaler, NetSample,
                       PathRecord, build_adjacency, build_net_sample)

__all__ = [
    "NODE_FEATURE_NAMES", "NUM_NODE_FEATURES", "extract_node_features",
    "PATH_FEATURE_NAMES", "NUM_PATH_FEATURES", "NetContext",
    "extract_path_features",
    "NetSample", "PathRecord", "FeatureScaler", "build_net_sample",
    "build_adjacency", "ADJACENCY_RESISTANCE_SCALE",
]
