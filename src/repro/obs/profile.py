"""Per-stage aggregation of span streams and the ``--profile`` table.

A raw trace holds one span per timed region instance (one per net, per
epoch, per design ...); :func:`aggregate_spans` folds them into one
:class:`StageProfile` per span *name* — call count, total/mean/max wall
time, total CPU time — which is what humans read (``repro report
--profile``) and what ``BENCH_*.json`` stores per stage.

Rendering is self-contained (no dependency on :mod:`repro.bench`) so the
observability package stays importable without pulling in the model stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

from .tracer import Span


@dataclass
class StageProfile:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    max_wall_s: float = 0.0

    @property
    def mean_wall_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        self.wall_s += span.wall_s
        self.cpu_s += span.cpu_s
        if span.wall_s > self.max_wall_s:
            self.max_wall_s = span.wall_s

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "wall_s": self.wall_s,
                "cpu_s": self.cpu_s, "mean_wall_s": self.mean_wall_s,
                "max_wall_s": self.max_wall_s}


def aggregate_spans(spans: Iterable[Span]) -> Dict[str, StageProfile]:
    """Fold spans into one :class:`StageProfile` per span name.

    The result preserves first-seen order (pipeline order for a
    single-threaded run).
    """
    profiles: Dict[str, StageProfile] = {}
    for span in spans:
        profile = profiles.get(span.name)
        if profile is None:
            profile = profiles[span.name] = StageProfile(span.name)
        profile.add(span)
    return profiles


def format_profile(profiles: Dict[str, StageProfile],
                   title: str = "per-stage profile") -> str:
    """Aligned text table of a :func:`aggregate_spans` result."""
    headers = ["stage", "calls", "wall(s)", "cpu(s)", "mean(ms)", "max(ms)"]
    rows: List[List[str]] = []
    for profile in sorted(profiles.values(), key=lambda p: -p.wall_s):
        rows.append([
            profile.name, str(profile.count),
            f"{profile.wall_s:.3f}", f"{profile.cpu_s:.3f}",
            f"{profile.mean_wall_s * 1e3:.2f}",
            f"{profile.max_wall_s * 1e3:.2f}",
        ])
    if not rows:
        return f"{title}: no spans recorded (is the tracer enabled?)"
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [title,
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
