"""Runtime lock-order watchdog: the dynamic half of ``lint --concurrency``.

The static tier (:mod:`repro.lint.concurrency`) proves the *source* never
spells two locks in contradictory orders; this module checks the same
invariant against *observed* acquisitions, catching whatever the static
model cannot see (locks passed through data structures, orders that only
materialize under chaos-gate fault injection).

The contract is deliberately tiny:

* :func:`named_lock` is the factory every shared structure in this repo
  uses instead of a bare ``threading.Lock()``.  In normal runs it returns
  exactly ``threading.Lock()`` — zero overhead, nothing recorded.  When
  the :data:`WATCHDOG_ENV` environment variable is truthy *at creation
  time*, it returns a :class:`WatchedLock` that reports every acquisition
  to the process-wide :class:`LockOrderWatchdog`.
* The watchdog keeps a per-thread stack of held watched locks and a
  global edge set ``outer-name -> inner-name``.  Before an acquisition
  would *add* an edge whose reverse is already on record, it raises
  :class:`LockOrderInversion` — before blocking, so the offending ``with``
  fails cleanly instead of deadlocking the test run.
* Lock *names* match the static analyzer's node ids
  (``"PredictionCache._lock"`` for instance locks, the dotted module path
  for module-level locks), so a test can assert that the union of observed
  edges and the static :class:`~repro.lint.concurrency.LockGraph` stays
  acyclic.

Known (accepted) race: the inversion check and the edge recording are two
steps, so two threads racing to create the *first* contradictory pair may
both get past the check.  The watchdog is a test/debug instrument, not a
deadlock preventer — the cross-check test's acyclicity assertion still
fails the run afterwards.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["WATCHDOG_ENV", "LockOrderInversion", "LockOrderWatchdog",
           "WatchedLock", "get_lock_watchdog", "named_lock",
           "watchdog_enabled"]

#: Environment variable gating :func:`named_lock` instrumentation.
WATCHDOG_ENV = "REPRO_LOCK_WATCHDOG"


class LockOrderInversion(RuntimeError):
    """Observed acquisition contradicts a previously recorded order."""

    def __init__(self, outer: str, inner: str,
                 prior_site: Optional[str]) -> None:
        where = f" (first recorded at {prior_site})" if prior_site else ""
        super().__init__(
            f"lock-order inversion: acquiring {inner!r} while holding "
            f"{outer!r}, but the order {inner!r} -> {outer!r} was "
            f"observed earlier{where}")
        self.outer = outer
        self.inner = inner


class LockOrderWatchdog:
    """Records observed acquisition edges; raises on inversions."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()  # plain: guards the edge table only
        #: (outer, inner) -> "thread-name" of the first observation.
        self._edges: Dict[Tuple[str, str], str] = {}
        self._held = threading.local()

    # -- per-thread held stack ------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- hooks called by WatchedLock ------------------------------------
    def check_acquire(self, name: str) -> None:
        """Raise before a would-be acquisition that inverts a known edge.

        Called *before* the underlying blocking acquire: raising here
        leaves nothing half-acquired (the ``with`` body never runs) and
        fires even when the contradictory schedule would have deadlocked.
        """
        stack = self._stack()
        if not stack:
            return
        with self._mutex:
            for outer in stack:
                if outer == name:
                    continue  # re-entrant RLock use: not an ordering edge
                site = self._edges.get((name, outer))
                if site is not None:
                    raise LockOrderInversion(outer, name, site)

    def note_acquired(self, name: str) -> None:
        """Record edges held-stack -> ``name``; push it.  Never raises."""
        stack = self._stack()
        with self._mutex:
            for outer in stack:
                if outer != name:
                    self._edges.setdefault(
                        (outer, name), threading.current_thread().name)
        stack.append(name)

    def note_released(self, name: str) -> None:
        """Pop the most recent acquisition of ``name``.  Never raises."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- inspection ------------------------------------------------------
    def edges(self) -> Dict[Tuple[str, str], str]:
        """Copy of the observed ``(outer, inner) -> first-thread`` table."""
        with self._mutex:
            return dict(self._edges)

    def reset(self) -> None:
        """Drop recorded edges (tests isolate themselves with this)."""
        with self._mutex:
            self._edges.clear()


class WatchedLock:
    """Delegating lock wrapper reporting acquisitions to the watchdog.

    Wraps whatever ``factory`` builds (``threading.Lock`` by default) and
    forwards the full lock protocol.  The three underscore hooks at the
    bottom are what ``threading.Condition`` uses when handed a foreign
    lock object, so a watched lock can back a condition variable.
    """

    def __init__(self, name: str, watchdog: LockOrderWatchdog,
                 factory: Callable[[], object] = threading.Lock) -> None:
        self.name = name
        self._watchdog = watchdog
        self._inner = factory()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._watchdog.check_acquire(self.name)
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired:
            self._watchdog.note_acquired(self.name)
        return bool(acquired)

    def release(self) -> None:
        self._inner.release()  # type: ignore[attr-defined]
        self._watchdog.note_released(self.name)

    def locked(self) -> bool:
        return bool(self._inner.locked())  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<WatchedLock {self.name!r} wrapping {self._inner!r}>"

    # -- threading.Condition compatibility ------------------------------
    def _release_save(self) -> object:
        inner = self._inner
        if hasattr(inner, "_release_save"):
            state = inner._release_save()  # type: ignore[attr-defined]
        else:
            inner.release()  # type: ignore[attr-defined]
            state = None
        self._watchdog.note_released(self.name)
        return state

    def _acquire_restore(self, state: object) -> None:
        inner = self._inner
        self._watchdog.check_acquire(self.name)
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(state)  # type: ignore[attr-defined]
        else:
            inner.acquire()  # type: ignore[attr-defined]
        self._watchdog.note_acquired(self.name)

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return bool(inner._is_owned())  # type: ignore[attr-defined]
        # A plain Lock is "owned" iff it cannot be re-acquired right now.
        if inner.acquire(False):  # type: ignore[attr-defined]
            inner.release()  # type: ignore[attr-defined]
            return False
        return True


_GLOBAL_WATCHDOG = LockOrderWatchdog()


def get_lock_watchdog() -> LockOrderWatchdog:
    """The process-wide watchdog behind every :class:`WatchedLock`."""
    return _GLOBAL_WATCHDOG


def watchdog_enabled() -> bool:
    """Whether :data:`WATCHDOG_ENV` currently asks for instrumented locks."""
    return os.environ.get(WATCHDOG_ENV, "").strip().lower() \
        not in ("", "0", "false", "no", "off")


def named_lock(name: str,
               factory: Callable[[], object] = threading.Lock) -> object:
    """A lock for a shared structure, instrumented when the env asks.

    ``name`` must be the static analyzer's node id for the lock (class
    attribute ``"ClassName._lock"``, or the dotted module path of a
    module-level lock) — that is what makes observed orders comparable to
    the static lock-order graph.  The gate is evaluated at *creation*
    time: structures built before the environment variable is set keep
    plain locks, which the chaos-gate tests handle by constructing the
    service after setting the variable.
    """
    if watchdog_enabled():
        return WatchedLock(name, _GLOBAL_WATCHDOG, factory)
    return factory()
