"""Span → function attribution: which code a tracer span measures.

Span names are *stage* labels ("sta.analyze_design", "train.epoch") chosen
for report readability, not code identity.  Profile consumers that reason
about *code* — the PERF lint pack's hotness ranking and ``repro report
--hot`` — need the reverse mapping: the dotted ``module.qualname`` of the
function whose body each span wraps.  That mapping is declared here, next
to the tracer, so adding or renaming a span and updating its attribution
is one review away from each other (``tests/obs/test_attribution.py``
fails when the two drift apart).

Two tables:

* :data:`SPAN_FUNCTIONS` — exact span name → ``(module, qualname)``.
  Dynamic families ("bench.<stage>", "parallel.<label>") match by prefix
  via :data:`SPAN_FAMILIES`.
* :data:`SPAN_CHILDREN` — the static nesting of span names, used to turn
  *inclusive* stage walls (the aggregated ``observability.stages`` block
  of a BENCH report, where parent links are lost) back into *exclusive*
  seconds: ``exclusive(s) = wall(s) - sum(wall(child) for child present)``.
  Raw ``REPRO_TRACE`` JSONL keeps real parent links and does not need it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["SPAN_FUNCTIONS", "SPAN_FAMILIES", "SPAN_CHILDREN",
           "span_function", "span_children"]

#: Exact span name → (defining module, function qualname).  The qualname
#: convention matches the lint symbol table: ``Class.method`` for methods,
#: the bare name for module-level functions.
SPAN_FUNCTIONS: Dict[str, Tuple[str, str]] = {
    "dataset.generate": ("repro.data.generate", "generate_dataset"),
    "dataset.design": ("repro.data.generate", "_design_tasks"),
    "simulate.net": ("repro.analysis.simulator", "GoldenTimer.analyze"),
    "simulate.decompose": ("repro.analysis.simulator",
                           "TransientSolution.__init__"),
    "simulate.batch": ("repro.analysis.batch", "golden_analyze_many"),
    "features.scaler_fit": ("repro.features.pipeline", "FeatureScaler.fit"),
    "estimator.fit": ("repro.core.estimator", "WireTimingEstimator.fit"),
    "estimator.evaluate": ("repro.core.estimator",
                           "WireTimingEstimator.evaluate"),
    "train.epoch": ("repro.nn.trainer", "Trainer.fit"),
    "sta.analyze_design": ("repro.design.sta", "STAEngine.analyze_design"),
}

#: Dynamic span families, matched by prefix when no exact entry exists.
#: ``None`` marks harness spans (the bench stage clock) that wrap other
#: people's code and must not become hot roots themselves.
SPAN_FAMILIES: Dict[str, Optional[Tuple[str, str]]] = {
    "bench.": None,
    "parallel.": ("repro.parallel.pool", "parallel_map"),
}

#: Static span nesting: parent name → child names that may appear inside
#: it.  Only consulted for aggregated stage profiles; a child absent from
#: a profile simply contributes nothing.
SPAN_CHILDREN: Dict[str, Tuple[str, ...]] = {
    "bench.dataset": ("dataset.generate",),
    "bench.train": ("estimator.fit",),
    "bench.evaluate": ("estimator.evaluate",),
    "bench.sta": ("sta.analyze_design",),
    "dataset.generate": ("parallel.generate_designs", "dataset.design"),
    "dataset.design": ("simulate.batch", "simulate.net"),
    "estimator.fit": ("features.scaler_fit", "train.epoch"),
    "sta.analyze_design": ("simulate.net", "simulate.batch"),
    "simulate.net": ("simulate.decompose",),
}


def span_function(name: str) -> Optional[Tuple[str, str]]:
    """``(module, qualname)`` measured by a span name, or ``None``.

    ``None`` means the span is unattributed (unknown name) or a declared
    harness span; either way it cannot seed a hot path.
    """
    exact = SPAN_FUNCTIONS.get(name)
    if exact is not None:
        return exact
    for prefix, target in SPAN_FAMILIES.items():
        if name.startswith(prefix):
            return target
    return None


def span_children(name: str) -> List[str]:
    """Declared child span names of ``name`` (empty when a leaf)."""
    return list(SPAN_CHILDREN.get(name, ()))
