"""Typed counters, gauges and histograms for pipeline health accounting.

Unlike spans (see :mod:`repro.obs.tracer`), metrics are *always on*: a
counter increment is one lock round-trip plus an integer addition, cheap
enough for the hottest loops (threshold-crossing searches, per-net MNA
assembly).  The process-wide :class:`MetricRegistry` is reachable through
:func:`get_metrics`; modules get-or-create their instruments by dotted
name:

* ``Counter`` — monotone event counts (nets simulated, fallback-tier hits,
  cache hits, skipped samples);
* ``Gauge`` — last-written values (current learning rate, dataset size);
* ``Histogram`` — value distributions with power-of-two buckets plus exact
  count/sum/min/max (MNA solve sizes, per-tier latencies).

``registry.snapshot()`` returns a plain JSON-safe dict, the layout embedded
in ``BENCH_*.json`` and emitted by ``repro report --json``.

Thread safety: serve worker threads increment the same instruments
concurrently, and ``self.count += 1`` is a read-modify-write the GIL may
split across threads.  Counters and histograms therefore carry a plain
per-instrument ``threading.Lock`` (deliberately *not* a watched
:func:`~repro.obs.lockwatch.named_lock` — instrument locks are innermost
leaves and would only add noise to the lock-order graph); gauges are a
single atomic store/load and stay lock-free.  The registry's own
get-or-create/reset/snapshot paths run under its watched lock.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

from .lockwatch import named_lock


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0  # repro-guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        with self._lock:
            return self.value


class Gauge:
    """Last-written scalar value (``None`` until first set).

    Lock-free on purpose: ``set``/``snapshot`` are one store / one load of
    a single reference, which CPython performs atomically — there is no
    read-modify-write to split.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None

    def snapshot(self) -> Optional[float]:
        return self.value


class Histogram:
    """Distribution summary: exact count/sum/min/max + log2 buckets.

    Buckets are keyed by ``ceil(log2(value))`` so each one covers a factor
    of two of the positive axis; zero and negative observations land in the
    dedicated ``"<=0"`` bucket.  This gives a fixed-size, merge-friendly
    digest without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0          # repro-guarded-by: _lock
        self.total = 0.0        # repro-guarded-by: _lock
        self.min = math.inf     # repro-guarded-by: _lock
        self.max = -math.inf    # repro-guarded-by: _lock
        self.buckets: Dict[str, int] = {}  # repro-guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            key = "<=0" if value <= 0.0 else str(math.ceil(math.log2(value)))
            self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from the log2 buckets.

        Exact ``min``/``max`` anchor the tails; interior quantiles
        interpolate geometrically inside the covering power-of-two bucket,
        which bounds the relative error at sqrt(2).  That is the precision
        contract of this digest: good enough for p50/p99 latency
        reporting without storing samples.  NaN when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if not self.count:
                return float("nan")
            target = q / 100.0 * self.count
            # Buckets in ascending value order: "<=0" first, then exponent.
            ordered = sorted(self.buckets.items(),
                             key=lambda kv: -math.inf if kv[0] == "<=0"
                             else int(kv[0]))
            seen = 0
            for key, count in ordered:
                seen += count
                if seen >= target:
                    if key == "<=0":
                        return min(self.min, 0.0)
                    exponent = int(key)
                    low = max(2.0 ** (exponent - 1), self.min)
                    high = min(2.0 ** exponent, self.max)
                    if high <= low:
                        return high
                    # Position of the target inside this bucket, 0..1.
                    frac = 1.0 - (seen - target) / count
                    return low * (high / low) ** frac
            return self.max

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = -math.inf
            self.buckets.clear()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "buckets": {}}
            # self.mean would re-take the (non-reentrant) lock: inline it.
            return {"count": self.count, "sum": self.total, "min": self.min,
                    "max": self.max, "mean": self.total / self.count,
                    "buckets": dict(self.buckets)}


class MetricRegistry:
    """Get-or-create store of named instruments.

    Instruments are created on first use and *zeroed in place* by
    :meth:`reset`, so module-level references cached at import time stay
    valid across resets (the ``repro bench`` runner resets between stages).
    Every access to the instrument maps runs under the registry lock —
    including the get path, because a lock-free ``dict.get`` racing a
    concurrent ``setdefault`` is exactly the pattern the concurrency lint
    tier exists to reject.  Hot loops cache their instrument references at
    import time, so the get path is not on any per-net fast path.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}      # repro-guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}          # repro-guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # repro-guarded-by: _lock
        self._lock = named_lock("MetricRegistry._lock")

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters.setdefault(name, Counter(name))
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges.setdefault(name, Gauge(name))
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms.setdefault(name, Histogram(name))
            return metric

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for metric in group.values():
                    metric.reset()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view: ``{"counters": .., "gauges": .., "histograms": ..}``.

        Untouched instruments (zero counters, unset gauges, empty
        histograms) are omitted so snapshots only show what actually ran.
        Each instrument is snapshotted through its own locked method, so a
        concurrent ``observe`` never yields a torn count/sum pair.
        """
        with self._lock:
            counters = {n: c.snapshot()
                        for n, c in sorted(self._counters.items())}
            gauges = {n: g.snapshot()
                      for n, g in sorted(self._gauges.items())}
            histograms = {n: h.snapshot()
                          for n, h in sorted(self._histograms.items())}
        return {
            "counters": {n: v for n, v in counters.items() if v},
            "gauges": {n: v for n, v in gauges.items() if v is not None},
            "histograms": {n: v for n, v in histograms.items()
                           if v["count"]},
        }


_GLOBAL_REGISTRY = MetricRegistry()


def get_metrics() -> MetricRegistry:
    """The process-wide registry used by all built-in instrumentation."""
    return _GLOBAL_REGISTRY
