"""Span-based structured tracing with wall/CPU time and provenance.

A :class:`Span` records one timed region of the pipeline — "simulate one
net", "train one epoch", "run STA over a design" — with both wall-clock and
CPU time, its nesting depth/parent, and free-form provenance attributes
(``net=``, ``design=``, ...) mirroring the error provenance carried by
:mod:`repro.robustness.errors`.

The :class:`Tracer` is deliberately zero-dependency (stdlib only) and
**disabled by default**: ``Tracer.span`` on a disabled tracer returns a
shared no-op context manager, so instrumented hot paths pay one attribute
check and nothing else.  Enable it explicitly (``get_tracer().enable()``),
through the CLI (``repro bench``, ``repro report --profile``) or through the
``REPRO_TRACE=path.jsonl`` environment hook, which streams every finished
span to a JSONL file.

Example::

    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.enable()
    with tracer.span("dataset.design", design="WB_DMA") as span:
        ...
        span.set(nets=40)
    print(tracer.spans[-1].wall_s)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO, Union

#: Environment variable that, when set to a path, enables the global tracer
#: at import time and streams finished spans to that path as JSONL.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Default bound on the in-memory span buffer; the oldest spans are dropped
#: (and counted in :attr:`Tracer.dropped`) once the buffer is full, so a
#: long-running traced process cannot grow without bound.
DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One finished timed region.

    Attributes
    ----------
    name:
        Stage name, dot-separated by convention (``"sta.analyze_design"``).
    wall_s, cpu_s:
        Elapsed wall-clock and process CPU time in seconds.
    start_wall:
        Wall-clock start, seconds from an arbitrary monotonic origin
        (``time.perf_counter``); useful for ordering, not for dates.
    depth:
        Nesting depth at the time the span was opened (0 = top level).
    parent:
        Name of the enclosing span, or ``None`` at top level.
    attrs:
        Provenance attributes (``net``, ``design``, ``epoch``, sizes ...).
    """

    name: str
    wall_s: float
    cpu_s: float
    start_wall: float
    depth: int = 0
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (the JSONL record layout)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "start_wall": self.start_wall,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": _jsonable(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (JSONL round-trip)."""
        return cls(
            name=str(record["name"]),
            wall_s=float(record["wall_s"]),
            cpu_s=float(record["cpu_s"]),
            start_wall=float(record.get("start_wall", 0.0)),
            depth=int(record.get("depth", 0)),
            parent=record.get("parent"),
            attrs=dict(record.get("attrs", {})),
        )


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-serializable scalars."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, bool, int, float)) or value is None:
            out[key] = value
        elif hasattr(value, "item"):  # numpy scalar without importing numpy
            out[key] = value.item()
        else:
            out[key] = str(value)
    return out


class _NullSpan:
    """Shared no-op span returned by a disabled tracer (zero overhead)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start_wall", "_start_cpu",
                 "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach extra attributes (visible once the span finishes)."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.process_time() - self._start_cpu
        stack = self._tracer._stack
        if stack and stack[-1] == self._name:
            stack.pop()
        self._tracer._record(Span(
            name=self._name, wall_s=wall, cpu_s=cpu,
            start_wall=self._start_wall, depth=self._depth,
            parent=self._parent, attrs=self._attrs))
        return False


class Tracer:
    """Collects nested :class:`Span` records; cheap no-op while disabled.

    Parameters
    ----------
    enabled:
        Initial state.  Disabled (the default) makes :meth:`span` return the
        shared :data:`NULL_SPAN` immediately.
    max_spans:
        Bound on the in-memory buffer; overflow drops the oldest spans and
        increments :attr:`dropped`.
    jsonl_path:
        When given, every finished span is also appended to this file as one
        JSON object per line (the ``REPRO_TRACE`` streaming mode).
    """

    def __init__(self, enabled: bool = False,
                 max_spans: int = DEFAULT_MAX_SPANS,
                 jsonl_path: Optional[str] = None) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._stack: List[str] = []
        self._jsonl_path = jsonl_path
        self._jsonl_file: Optional[TextIO] = None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Union[_NullSpan, _LiveSpan]:
        """Open a timed region; use as a context manager.

        On a disabled tracer this returns the shared no-op span, costing a
        single attribute check plus the (empty) kwargs dict.
        """
        if not self.enabled:
            return NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def _record(self, span: Span) -> None:
        self.spans.append(span)
        if len(self.spans) > self.max_spans:
            overflow = len(self.spans) - self.max_spans
            del self.spans[:overflow]
            self.dropped += overflow
        if self._jsonl_path is not None:
            self._write_jsonl(span)

    def _write_jsonl(self, span: Span) -> None:
        if self._jsonl_path is None:
            return
        if self._jsonl_file is None:
            self._jsonl_file = open(self._jsonl_path, "a")
        json.dump(span.to_dict(), self._jsonl_file)
        self._jsonl_file.write("\n")
        self._jsonl_file.flush()

    # ------------------------------------------------------------------
    def enable(self, jsonl_path: Optional[str] = None) -> None:
        """Turn tracing on (optionally streaming spans to a JSONL file)."""
        self.enabled = True
        if jsonl_path is not None and jsonl_path != self._jsonl_path:
            self.close()
            self._jsonl_path = jsonl_path

    def disable(self) -> None:
        """Turn tracing off; buffered spans stay readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all buffered spans and clear the nesting stack."""
        self.spans.clear()
        self._stack.clear()
        self.dropped = 0

    def close(self) -> None:
        """Close the JSONL stream, if one is open."""
        if self._jsonl_file is not None:
            self._jsonl_file.close()
            self._jsonl_file = None

    @property
    def current_depth(self) -> int:
        """Nesting depth of the innermost open span."""
        return len(self._stack)


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by all built-in instrumentation."""
    return _GLOBAL_TRACER


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Enable the global tracer if ``REPRO_TRACE`` is set; returns whether.

    Called once at :mod:`repro.obs` import time; safe to call again (e.g.
    from tests) with a custom ``environ`` mapping.
    """
    env = os.environ if environ is None else environ
    path = env.get(TRACE_ENV_VAR, "").strip()
    if not path:
        return False
    _GLOBAL_TRACER.enable(jsonl_path=path)
    return True
