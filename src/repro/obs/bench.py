"""The ``repro bench`` end-to-end workload and ``BENCH_*.json`` schema.

This is the repo's performance baseline: one pinned workload that exercises
every stage a future optimization PR could speed up — dataset generation
(golden transient labeling), training, evaluation (pure inference), and STA
over the fallback chain — timed per stage in both wall-clock and CPU
seconds, and written to ``BENCH_<date>.json`` at the repo root.

A PR proving a speedup runs ``repro bench`` before and after its change and
diffs the two files; `docs/OBSERVABILITY.md` documents the workflow and the
schema, and :func:`validate_bench_report` enforces the schema in CI.

The heavy pipeline imports happen inside :func:`run_bench`, keeping
:mod:`repro.obs` importable without the model stack.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .export import dump_json, observability_document
from .metrics import get_metrics
from .tracer import get_tracer

#: Schema identifier stamped into every report; bump on layout changes.
BENCH_SCHEMA = "repro-bench/1"

#: Stage names every schema-valid report must time, in pipeline order.
REQUIRED_STAGES = ("dataset", "train", "evaluate", "sta")

#: Required stages/results per workload mode.  ``workload.mode`` is
#: ``"pipeline"`` (implied when absent, so pre-serve reports stay valid),
#: ``"serve"`` (``repro bench --serve`` load-generation reports), or
#: ``"eco"`` (``repro bench --eco`` incremental-retiming reports).
MODE_REQUIRED_STAGES = {
    "pipeline": REQUIRED_STAGES,
    "serve": ("serve",),
    "eco": ("full_pass", "eco_replay"),
}

#: Required ``results`` sections per workload mode.
MODE_RESULT_SECTIONS = {
    "pipeline": ("dataset", "train", "evaluate", "sta"),
    "serve": ("serve",),
    "eco": ("eco",),
}


@dataclass(frozen=True)
class BenchWorkload:
    """Pinned definition of one benchmark workload.

    Every field that affects runtime is explicit here and serialized into
    the report, so two ``BENCH_*.json`` files are comparable only when
    their workloads match — the validator and the diff workflow both check
    this block first.
    """

    name: str
    train_names: Tuple[str, ...]
    test_names: Tuple[str, ...]
    scale: int
    nets_per_design: int
    epochs: int
    plan: str = "PlanB"
    sta_paths: int = 12
    seed: int = 7
    si_mode: bool = True
    #: Worker processes for the parallel stages (dataset labeling,
    #: evaluation, STA).  Results are jobs-invariant; only the timings
    #: change, which is why comparable reports must pin the same value.
    jobs: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "train_names": list(self.train_names),
            "test_names": list(self.test_names),
            "scale": self.scale,
            "nets_per_design": self.nets_per_design,
            "epochs": self.epochs,
            "plan": self.plan,
            "sta_paths": self.sta_paths,
            "seed": self.seed,
            "si_mode": self.si_mode,
            "jobs": self.jobs,
        }


#: The standard baseline workload (a few minutes on a laptop CPU).
DEFAULT_WORKLOAD = BenchWorkload(
    name="default", train_names=("PCI_BRIDGE", "DMA"),
    test_names=("WB_DMA",), scale=1200, nets_per_design=24, epochs=12,
    sta_paths=12)

#: CI smoke workload (seconds, not minutes); same shape, tiny sizes.
QUICK_WORKLOAD = BenchWorkload(
    name="quick", train_names=("PCI_BRIDGE",), test_names=("WB_DMA",),
    scale=3200, nets_per_design=6, epochs=2, sta_paths=4)


@dataclass(frozen=True)
class ECOBenchWorkload:
    """Pinned ``repro bench --eco`` micro-workload.

    One design, one full timing pass, then ``edits`` single-net R/C
    edits replayed through :class:`~repro.design.eco.ECOTimingEngine`.
    The headline number is ``speedup_vs_full``: how much cheaper one
    edit replay is than re-running the whole pass — the quantity an
    incremental-timing regression would degrade.
    """

    name: str
    benchmark: str
    scale: int
    sta_paths: int
    edits: int
    seed: int = 7
    jobs: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": "eco",
            "name": self.name,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "sta_paths": self.sta_paths,
            "edits": self.edits,
            "seed": self.seed,
            "jobs": self.jobs,
        }


#: Standard ECO baseline: a mid-size design, enough paths for real cones.
DEFAULT_ECO_WORKLOAD = ECOBenchWorkload(
    name="eco", benchmark="WB_DMA", scale=1200, sta_paths=32, edits=10)

#: CI smoke variant (seconds): smaller design, fewer edits.
QUICK_ECO_WORKLOAD = ECOBenchWorkload(
    name="eco-quick", benchmark="WB_DMA", scale=3200, sta_paths=16, edits=5)


@dataclass
class StageTiming:
    """Wall/CPU seconds of one top-level bench stage."""

    name: str
    wall_s: float
    cpu_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "wall_s": self.wall_s, "cpu_s": self.cpu_s}


class _StageClock:
    """Times the four top-level stages with wall + CPU clocks."""

    def __init__(self) -> None:
        self.stages: List[StageTiming] = []

    def run(self, name: str, fn: Callable[[], Any]) -> Any:
        tracer = get_tracer()
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        with tracer.span(f"bench.{name}"):
            result = fn()
        self.stages.append(StageTiming(
            name=name,
            wall_s=time.perf_counter() - start_wall,
            cpu_s=time.process_time() - start_cpu))
        return result


def bench_filename(date: Optional[str] = None) -> str:
    """``BENCH_<YYYY-MM-DD>.json`` for today (or the given date string)."""
    return f"BENCH_{date or time.strftime('%Y-%m-%d')}.json"


def run_bench(workload: BenchWorkload = DEFAULT_WORKLOAD,
              trace: bool = True) -> Dict[str, Any]:
    """Run the pinned workload and return the ``BENCH`` report document.

    Resets the global metric registry and (when ``trace`` is true) enables
    and resets the global tracer for the duration, so the report's
    observability section describes exactly this run.
    """
    from dataclasses import replace as _replace

    from ..core import WireTimingEstimator
    from ..core.config import PLANS
    from ..data import generate_dataset, train_val_split
    from ..design import STAEngine, generate_benchmark, sample_timing_paths
    from ..liberty import make_default_library
    from ..robustness import default_fallback_chain

    import numpy as np

    tracer = get_tracer()
    registry = get_metrics()
    registry.reset()
    was_enabled = tracer.enabled
    if trace:
        tracer.reset()
        tracer.enable()
    try:
        clock = _StageClock()

        dataset = clock.run("dataset", lambda: generate_dataset(
            train_names=list(workload.train_names),
            test_names=list(workload.test_names),
            scale=workload.scale,
            nets_per_design=workload.nets_per_design,
            si_mode=workload.si_mode,
            seed=workload.seed,
            n_jobs=workload.jobs))

        config = _replace(PLANS[workload.plan], epochs=workload.epochs,
                          seed=workload.seed)
        estimator = WireTimingEstimator(config)
        train, val = train_val_split(dataset.train, 0.1, seed=workload.seed)

        history = clock.run("train", lambda: estimator.fit(
            train, val_samples=val, epochs=workload.epochs, verbose=False))

        eval_metrics = clock.run("evaluate",
                                 lambda: estimator.evaluate(
                                     dataset.test, jobs=workload.jobs))
        throughput = estimator.throughput(dataset.test)

        def _sta() -> Tuple[Any, Any]:
            library = make_default_library()
            netlist = generate_benchmark(workload.test_names[0], library,
                                         workload.scale)
            rng = np.random.default_rng(workload.seed)
            for path in sample_timing_paths(netlist, workload.sta_paths, rng):
                netlist.add_path(path)
            chain = default_fallback_chain()
            report = STAEngine(netlist, chain).analyze_design(
                jobs=workload.jobs)
            return report, chain

        sta_report, chain = clock.run("sta", _sta)
        # Tier counts come from the report's per-stage provenance rather
        # than chain.stats: with jobs > 1 the chain instances that served
        # nets live in worker processes, but every serve is recorded in
        # its StageTiming.tier, so this matches chain.counters() exactly
        # on a serial run and stays correct on a parallel one.
        from collections import Counter as _Counter

        tier_counts = _Counter(stage.tier for path in sta_report.paths
                               for stage in path.stages)
        fallback_tiers = {name: tier_counts.get(name, 0)
                          for name in chain.tier_names}
        degraded_nets = sum(count for name, count in fallback_tiers.items()
                            if name != chain.tier_names[0])

        import platform

        from ..parallel import worker_context

        document: Dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "environment": {
                "python": sys.version.split()[0],
                "platform": platform.platform(),
                "numpy": np.__version__,
                # Resolved multiprocessing start method (REPRO_MP_CONTEXT)
                # and job count: timings are only comparable between runs
                # that used the same execution configuration, and the
                # compare tool checks this block.
                "mp_start_method": worker_context().get_start_method(),
                "jobs": workload.jobs,
            },
            "workload": workload.to_dict(),
            "stages": [stage.to_dict() for stage in clock.stages],
            "results": {
                "dataset": {
                    "train_nets": len(dataset.train),
                    "test_nets": len(dataset.test),
                    "train_paths": dataset.num_train_paths,
                    "test_paths": dataset.num_test_paths,
                    "skipped_nets": len(dataset.skipped),
                },
                "train": {
                    "epochs_run": len(history),
                    "final_train_loss": history.final_train_loss,
                    "best_val_loss": history.best_val_loss,
                    "diverged": history.diverged is not None,
                },
                "evaluate": {
                    "r2_slew": eval_metrics.r2_slew,
                    "r2_delay": eval_metrics.r2_delay,
                    "max_err_slew_ps": eval_metrics.max_err_slew_ps,
                    "max_err_delay_ps": eval_metrics.max_err_delay_ps,
                    "num_paths": eval_metrics.num_paths,
                    "throughput_nets_per_s": throughput,
                },
                "sta": {
                    "design": sta_report.design,
                    "wire_model": sta_report.wire_model,
                    "paths": len(sta_report.paths),
                    "gate_seconds": sta_report.gate_seconds,
                    "wire_seconds": sta_report.wire_seconds,
                    "fallback_tiers": fallback_tiers,
                    "degraded_nets": degraded_nets,
                },
            },
            "observability": observability_document(tracer, registry),
        }
        return document
    finally:
        tracer.enabled = was_enabled


def run_eco_bench(workload: ECOBenchWorkload = DEFAULT_ECO_WORKLOAD,
                  trace: bool = True) -> Dict[str, Any]:
    """Run the ECO micro-workload and return its ``BENCH`` document.

    Stage ``full_pass`` times the baseline analysis of every recorded
    path (which also warms the incremental stage memo); stage
    ``eco_replay`` applies ``workload.edits`` single-net R/C edits and
    re-times only each edit's fanout cone.  Afterwards the incremental
    results are verified bitwise against a cold full STA pass —
    ``results.eco.parity_ok`` — so the speedup number can never come
    from silently wrong timing.
    """
    import platform

    import numpy as np

    from ..design import (ECOTimingEngine, GoldenWireModel,
                          generate_benchmark, sample_timing_paths)
    from ..liberty import make_default_library
    from ..parallel import worker_context

    tracer = get_tracer()
    registry = get_metrics()
    registry.reset()
    was_enabled = tracer.enabled
    if trace:
        tracer.reset()
        tracer.enable()
    try:
        clock = _StageClock()
        library = make_default_library()
        netlist = generate_benchmark(workload.benchmark, library,
                                     workload.scale)
        rng = np.random.default_rng(workload.seed)
        for path in sample_timing_paths(netlist, workload.sta_paths, rng):
            netlist.add_path(path)
        engine = ECOTimingEngine(netlist, GoldenWireModel())
        clock.run("full_pass", engine.full_pass)

        # Single-net edits over nets that actually carry timing paths —
        # an edit with an empty cone would flatter the speedup.
        path_nets = sorted({stage.net for path in netlist.paths
                            for stage in path.stages})
        order = [int(i) for i in rng.permutation(len(path_nets))]
        replay_times: List[float] = []
        outcomes: List[Any] = []

        def _replay() -> None:
            for count in range(workload.edits):
                net = path_nets[order[count % len(order)]]
                edit = netlist.scale_net_rc(net, r_factor=1.05,
                                            c_factor=0.95)
                start = time.perf_counter()
                outcomes.append(engine.apply(edit))
                replay_times.append(time.perf_counter() - start)

        clock.run("eco_replay", _replay)
        parity_problems = engine.verify_parity()

        full_pass_s = clock.stages[0].wall_s
        mean_replay = sum(replay_times) / len(replay_times) \
            if replay_times else float("nan")
        document: Dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "environment": {
                "python": sys.version.split()[0],
                "platform": platform.platform(),
                "numpy": np.__version__,
                "mp_start_method": worker_context().get_start_method(),
                "jobs": workload.jobs,
            },
            "workload": workload.to_dict(),
            "stages": [stage.to_dict() for stage in clock.stages],
            "results": {
                "eco": {
                    "design": netlist.name,
                    "paths": len(netlist.paths),
                    "edits_applied": len(outcomes),
                    "paths_retimed": sum(o.cone_size for o in outcomes),
                    "stages_reused": sum(o.stages_reused for o in outcomes),
                    "full_pass_s": full_pass_s,
                    "edit_replay_mean_s": mean_replay,
                    "edit_replay_max_s": max(replay_times)
                    if replay_times else float("nan"),
                    "speedup_vs_full": full_pass_s / mean_replay
                    if replay_times and mean_replay > 0.0 else float("nan"),
                    "parity_ok": not parity_problems,
                    "parity_problems": len(parity_problems),
                },
            },
            "observability": observability_document(tracer, registry),
        }
        return document
    finally:
        tracer.enabled = was_enabled


def format_eco_summary(document: Dict[str, Any]) -> str:
    """Short human-readable digest printed after ``repro bench --eco``."""
    eco = document["results"]["eco"]
    lines = [f"eco bench workload {document['workload']['name']!r} "
             f"({document['created_utc']})"]
    for stage in document["stages"]:
        lines.append(f"  {stage['name']:<11} wall {stage['wall_s']:8.3f}s  "
                     f"cpu {stage['cpu_s']:8.3f}s")
    lines.append(f"  {eco['edits_applied']} edits on {eco['design']!r} "
                 f"({eco['paths']} paths): retimed {eco['paths_retimed']} "
                 f"paths, reused {eco['stages_reused']} stages")
    lines.append(f"  replay mean {eco['edit_replay_mean_s'] * 1e3:.1f} ms "
                 f"(max {eco['edit_replay_max_s'] * 1e3:.1f} ms), "
                 f"{eco['speedup_vs_full']:.1f}x vs full pass, parity "
                 f"{'ok' if eco['parity_ok'] else 'VIOLATED'}")
    return "\n".join(lines)


def write_bench_report(document: Dict[str, Any], out_dir: str = ".",
                       date: Optional[str] = None) -> str:
    """Validate and write a report as ``<out_dir>/BENCH_<date>.json``."""
    import os

    problems = validate_bench_report(document)
    if problems:
        raise ValueError("refusing to write schema-invalid bench report: "
                         + "; ".join(problems))
    path = os.path.join(out_dir, bench_filename(date))
    dump_json(document, path=path)
    return path


def validate_bench_report(document: Any) -> List[str]:
    """Schema check; returns a list of problems (empty = valid).

    Deliberately dependency-free (no jsonschema): checks the schema id,
    the presence and types of the top-level blocks, and that every
    :data:`REQUIRED_STAGES` entry is timed with finite non-negative
    wall/CPU seconds.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"report must be a JSON object, got {type(document).__name__}"]
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA!r}, "
                        f"got {document.get('schema')!r}")
    for block in ("created_utc", "workload", "stages", "results",
                  "observability"):
        if block not in document:
            problems.append(f"missing top-level block {block!r}")
    workload = document.get("workload")
    if workload is not None and not isinstance(workload, dict):
        problems.append("'workload' must be an object")
    mode = "pipeline"
    if isinstance(workload, dict):
        mode = str(workload.get("mode", "pipeline"))
        if mode not in MODE_REQUIRED_STAGES:
            problems.append(f"unknown workload mode {mode!r}")
            mode = "pipeline"
    required_stages = MODE_REQUIRED_STAGES[mode]
    stages = document.get("stages")
    if isinstance(stages, list):
        timed: Dict[str, Dict[str, Any]] = {}
        for entry in stages:
            if not isinstance(entry, dict) or "name" not in entry:
                problems.append(f"malformed stage entry: {entry!r}")
                continue
            timed[entry["name"]] = entry
        for name in required_stages:
            entry = timed.get(name)
            if entry is None:
                problems.append(f"missing required stage {name!r}")
                continue
            for clock in ("wall_s", "cpu_s"):
                value = entry.get(clock)
                ok = (isinstance(value, (int, float))
                      and not isinstance(value, bool)
                      and value >= 0.0 and value == value
                      and value != float("inf"))
                if not ok:
                    problems.append(
                        f"stage {name!r} has invalid {clock}: {value!r}")
    elif "stages" in document:
        problems.append("'stages' must be a list")
    results = document.get("results")
    if isinstance(results, dict):
        for section in MODE_RESULT_SECTIONS[mode]:
            if section not in results:
                problems.append(f"missing results section {section!r}")
        if mode == "serve":
            serve = results.get("serve")
            if isinstance(serve, dict):
                for field_name in ("requests_sent", "lost_requests",
                                   "throughput_nets_per_s", "latency_ms"):
                    if field_name not in serve:
                        problems.append(
                            f"serve results missing {field_name!r}")
            elif serve is not None:
                problems.append("'results.serve' must be an object")
        if mode == "eco":
            eco = results.get("eco")
            if isinstance(eco, dict):
                for field_name in ("paths", "edits_applied", "paths_retimed",
                                   "stages_reused", "full_pass_s",
                                   "edit_replay_mean_s", "speedup_vs_full",
                                   "parity_ok"):
                    if field_name not in eco:
                        problems.append(f"eco results missing {field_name!r}")
                if eco.get("parity_ok") is False:
                    problems.append("eco results report a parity violation")
            elif eco is not None:
                problems.append("'results.eco' must be an object")
    elif "results" in document:
        problems.append("'results' must be an object")
    return problems


def format_bench_summary(document: Dict[str, Any]) -> str:
    """Short human-readable digest printed after ``repro bench``."""
    lines = [f"bench workload {document['workload']['name']!r} "
             f"({document['created_utc']})"]
    total_wall = 0.0
    for stage in document["stages"]:
        lines.append(f"  {stage['name']:<10} wall {stage['wall_s']:8.3f}s  "
                     f"cpu {stage['cpu_s']:8.3f}s")
        total_wall += stage["wall_s"]
    lines.append(f"  {'total':<10} wall {total_wall:8.3f}s")
    ev = document["results"]["evaluate"]
    lines.append(f"  eval R2 slew/delay {ev['r2_slew']:.3f}/"
                 f"{ev['r2_delay']:.3f}, "
                 f"inference {ev['throughput_nets_per_s']:.1f} nets/s")
    sta = document["results"]["sta"]
    lines.append(f"  sta {sta['paths']} paths, gate/wire "
                 f"{sta['gate_seconds']:.3f}/{sta['wire_seconds']:.3f}s, "
                 f"tiers {sta['fallback_tiers']}")
    return "\n".join(lines)
