"""Observability: structured tracing, metrics, exporters, perf baseline.

Zero-dependency (stdlib-only) instrumentation layer used throughout the
pipeline's hot paths.  Four modules:

* :mod:`~repro.obs.tracer` — span-based stage timers with wall/CPU time,
  nesting and net/design provenance; disabled by default with a near-zero
  no-op cost, enabled via :func:`get_tracer`, the CLI, or the
  ``REPRO_TRACE=path.jsonl`` environment hook (streams spans as JSONL);
* :mod:`~repro.obs.metrics` — always-on typed counters, gauges and
  histograms (nets simulated, fallback-tier hits, MNA solve sizes, ...)
  behind a process-wide :func:`get_metrics` registry;
* :mod:`~repro.obs.profile` / :mod:`~repro.obs.export` — per-stage
  aggregation, the ``repro report --profile`` table, and JSON/JSONL
  serialization;
* :mod:`~repro.obs.bench` — the pinned ``repro bench`` workload that
  writes the repo's ``BENCH_<date>.json`` performance baseline
  (schema-validated; see `docs/OBSERVABILITY.md`).

Instrumentation convention: hot loops touch only counters (one integer
add); per-net / per-epoch / per-design granularity gets spans, which cost
nothing while the tracer is disabled.
"""

from .tracer import (NULL_SPAN, TRACE_ENV_VAR, Span, Tracer,
                     configure_from_env, get_tracer)
from .attribution import (SPAN_CHILDREN, SPAN_FAMILIES, SPAN_FUNCTIONS,
                          span_children, span_function)
from .lockwatch import (WATCHDOG_ENV, LockOrderInversion, LockOrderWatchdog,
                        WatchedLock, get_lock_watchdog, named_lock,
                        watchdog_enabled)
from .metrics import (Counter, Gauge, Histogram, MetricRegistry, get_metrics)
from .profile import StageProfile, aggregate_spans, format_profile
from .export import (dump_json, load_trace, observability_document,
                     write_trace)
from .bench import (BENCH_SCHEMA, DEFAULT_ECO_WORKLOAD, DEFAULT_WORKLOAD,
                    QUICK_ECO_WORKLOAD, QUICK_WORKLOAD, REQUIRED_STAGES,
                    BenchWorkload, ECOBenchWorkload, bench_filename,
                    format_bench_summary, format_eco_summary, run_bench,
                    run_eco_bench, validate_bench_report, write_bench_report)

__all__ = [
    "Span", "Tracer", "get_tracer", "configure_from_env", "NULL_SPAN",
    "TRACE_ENV_VAR",
    "SPAN_CHILDREN", "SPAN_FAMILIES", "SPAN_FUNCTIONS", "span_children",
    "span_function",
    "WATCHDOG_ENV", "LockOrderInversion", "LockOrderWatchdog",
    "WatchedLock", "get_lock_watchdog", "named_lock", "watchdog_enabled",
    "Counter", "Gauge", "Histogram", "MetricRegistry", "get_metrics",
    "StageProfile", "aggregate_spans", "format_profile",
    "write_trace", "load_trace", "observability_document", "dump_json",
    "BenchWorkload", "BENCH_SCHEMA", "REQUIRED_STAGES", "DEFAULT_WORKLOAD",
    "QUICK_WORKLOAD", "run_bench", "write_bench_report",
    "validate_bench_report", "bench_filename", "format_bench_summary",
    "ECOBenchWorkload", "DEFAULT_ECO_WORKLOAD", "QUICK_ECO_WORKLOAD",
    "run_eco_bench", "format_eco_summary",
]

# Opt-in environment hook: REPRO_TRACE=path.jsonl enables the global tracer
# and streams every finished span to that file.
configure_from_env()
