"""JSON / JSONL serialization for spans and metric snapshots.

Two interchange formats:

* **JSONL traces** — one :class:`~repro.obs.tracer.Span` dict per line,
  the format streamed by ``REPRO_TRACE=path.jsonl`` and written in bulk by
  :func:`write_trace`; :func:`load_trace` round-trips it.
* **JSON documents** — a single object bundling aggregated stage timings
  and a metric snapshot (:func:`observability_document`), embedded in
  ``BENCH_*.json`` and printed by ``repro report --json``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .metrics import MetricRegistry, get_metrics
from .profile import aggregate_spans
from .tracer import Span, Tracer, get_tracer


def write_trace(spans: Iterable[Span], path: str) -> int:
    """Write spans to ``path`` as JSONL; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            json.dump(span.to_dict(), handle)
            handle.write("\n")
            count += 1
    return count


def load_trace(path: str) -> List[Span]:
    """Read a JSONL trace back into :class:`Span` objects.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number.
    """
    spans: List[Span] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace record: {exc}") from exc
    return spans


def observability_document(tracer: Optional[Tracer] = None,
                           registry: Optional[MetricRegistry] = None,
                           extra: Optional[Dict[str, Any]] = None
                           ) -> Dict[str, Any]:
    """One JSON-safe object with aggregated stages + metric snapshot.

    This is the shared payload of ``repro report --json`` and the
    ``observability`` section of ``BENCH_*.json``: per-span-name aggregate
    timings (count, wall, CPU), the dropped-span count, and the full
    counter/gauge/histogram snapshot.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics()
    document: Dict[str, Any] = {
        "stages": {name: profile.to_dict() for name, profile
                   in aggregate_spans(tracer.spans).items()},
        "spans_recorded": len(tracer.spans),
        "spans_dropped": tracer.dropped,
        "metrics": registry.snapshot(),
    }
    if extra:
        document.update(extra)
    return document


def dump_json(document: Dict[str, Any], path: Optional[str] = None,
              indent: int = 2) -> str:
    """Serialize a document (optionally also writing it to ``path``)."""
    text = json.dumps(document, indent=indent, sort_keys=False)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text
