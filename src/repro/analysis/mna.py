"""Modified nodal analysis (MNA) matrix assembly for RC nets.

Everything downstream — Elmore delays, higher-order moments and the golden
transient simulator — consumes the matrices built here:

* ``G``: the conductance (Laplacian) matrix over net nodes;
* ``C``: the diagonal capacitance matrix (optionally including coupling
  capacitance mapped to ground, with a Miller factor for SI analysis);
* reduced versions with the source node eliminated, used when the source is
  driven by an ideal voltage (wire-only delay) or a Thevenin driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import math

import numpy as np

from ..obs import get_metrics
from ..rcnet.graph import RCNet
from ..robustness.errors import InputError, NumericalError
from ..robustness.guards import MAX_CONDITION, check_conditioning

__all__ = ["conductance_matrix", "capacitance_vector", "ReducedSystem",
           "reduce_source", "transfer_resistance_matrix"]

# Always-on health counters; MNA assembly sits under every analysis engine,
# so these stay counter-cheap (see repro.obs.metrics).
_ASSEMBLIES = get_metrics().counter("mna.assemblies")
_REDUCTIONS = get_metrics().counter("mna.reductions")
_INVERSIONS = get_metrics().counter("mna.inversions")
_SOLVE_SIZE = get_metrics().histogram("mna.solve_size")


def conductance_matrix(net: RCNet) -> np.ndarray:
    """Full ``n x n`` Laplacian of edge conductances.

    Symmetric positive semi-definite with zero row sums; singular until a
    reference (the driven source) is eliminated.  Raises
    :class:`~repro.robustness.errors.InputError` on corrupt (non-finite or
    non-positive) resistance values, which would otherwise poison every
    downstream engine silently.
    """
    # repro-shape: -> (n, n):f64
    _ASSEMBLIES.inc()
    n = net.num_nodes
    g = np.zeros((n, n), dtype=np.float64)
    for edge in net.edges:
        if not (math.isfinite(edge.resistance) and edge.resistance > 0.0):
            raise InputError(
                f"edge ({edge.u}, {edge.v}) has invalid resistance "
                f"{edge.resistance!r}", net=net.name, stage="mna-assembly")
        conductance = 1.0 / edge.resistance
        g[edge.u, edge.u] += conductance
        g[edge.v, edge.v] += conductance
        g[edge.u, edge.v] -= conductance
        g[edge.v, edge.u] -= conductance
    return g


def capacitance_vector(net: RCNet, miller_factor: Optional[float] = None,
                       sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-node total capacitance to ground, in farads.

    Parameters
    ----------
    net:
        The RC net.
    miller_factor:
        When ``None``, coupling caps are grounded quietly (factor 1).  When
        given, each coupling cap is scaled by ``1 + miller_factor * activity``
        — the standard Miller approximation of a switching aggressor used by
        sign-off SI analysis.
    sink_loads:
        Optional extra load capacitance per sink (e.g. receiver pin caps),
        aligned with ``net.sinks``.
    """
    # repro-shape: sink_loads=(s,):f64 -> (n,):f64
    caps = net.cap_vector()
    for coupling in net.couplings:
        if miller_factor is None:
            caps[coupling.victim] += coupling.cap
        else:
            caps[coupling.victim] += coupling.cap * (
                1.0 + miller_factor * coupling.activity)
    if sink_loads is not None:
        sink_loads = np.asarray(sink_loads, dtype=np.float64)
        if sink_loads.shape != (net.num_sinks,):
            raise InputError(
                f"sink_loads must have shape ({net.num_sinks},), "
                f"got {sink_loads.shape}",
                net=net.name, stage="mna-assembly")
        for sink, load in zip(net.sinks, sink_loads):
            caps[sink] += load
    if not np.all(np.isfinite(caps)):
        raise InputError("net has non-finite capacitance", net=net.name,
                         stage="mna-assembly")
    return caps


@dataclass
class ReducedSystem:
    """MNA system with the source node eliminated (held at the input voltage).

    The state equation is ``C dv/dt = -G v + g_src * u(t)`` where ``v`` holds
    the non-source node voltages, ``u`` is the source-node voltage and
    ``g_src[i]`` is the direct conductance from node ``i`` to the source.

    Attributes
    ----------
    g:
        Reduced conductance matrix (symmetric positive definite).
    caps:
        Per-node capacitance vector (diagonal of the C matrix).
    source_conductance:
        Coupling vector from the source voltage into each retained node.
    index_map:
        ``index_map[original_node] = reduced_index`` (source maps to -1).
    nodes:
        Original indices of the retained nodes, in reduced order.
    """

    g: np.ndarray
    caps: np.ndarray
    source_conductance: np.ndarray
    index_map: np.ndarray
    nodes: np.ndarray

    def reduced_index(self, node: int) -> int:
        """Reduced index of an original node (raises for the source)."""
        idx = int(self.index_map[node])
        if idx < 0:
            raise ValueError(f"node {node} is the eliminated source")
        return idx


def reduce_source(net: RCNet, miller_factor: Optional[float] = None,
                  sink_loads: Optional[np.ndarray] = None) -> ReducedSystem:
    """Eliminate the source node from the full MNA system.

    With the source voltage treated as a known input, the remaining system
    is non-singular; its inverse's entries are the transfer resistances used
    by Elmore/moment analysis.
    """
    n = net.num_nodes
    if n < 2:
        raise InputError("cannot reduce a single-node net", net=net.name,
                         stage="mna-reduce")
    _REDUCTIONS.inc()
    full_g = conductance_matrix(net)
    caps = capacitance_vector(net, miller_factor, sink_loads)
    keep = np.array([i for i in range(n) if i != net.source], dtype=np.intp)
    index_map = np.full(n, -1, dtype=np.intp)
    index_map[keep] = np.arange(n - 1)
    g = full_g[np.ix_(keep, keep)]
    source_conductance = -full_g[keep, net.source]
    return ReducedSystem(
        g=g,
        caps=caps[keep],
        source_conductance=source_conductance,
        index_map=index_map,
        nodes=keep,
    )


def transfer_resistance_matrix(system: ReducedSystem,
                               max_condition: float = MAX_CONDITION
                               ) -> np.ndarray:
    """Dense inverse of the reduced conductance matrix.

    Entry ``(i, j)`` is the voltage at node ``i`` per unit current injected
    at node ``j`` with the source grounded — the *transfer resistance* that
    generalizes "shared path resistance" to non-tree nets.

    The reduced matrix is symmetric positive definite on healthy nets; a
    condition number beyond ``max_condition`` means the inverse carries no
    usable precision and raises a typed
    :class:`~repro.robustness.errors.NumericalError` instead of returning
    garbage.
    """
    # repro-shape: -> (m, m):f64
    _INVERSIONS.inc()
    _SOLVE_SIZE.observe(system.g.shape[0])
    check_conditioning(system.g, what="reduced conductance matrix",
                       stage="mna-solve", limit=max_condition)
    try:
        return np.linalg.inv(system.g)
    except np.linalg.LinAlgError as exc:
        raise NumericalError(f"reduced conductance matrix is singular: {exc}",
                             stage="mna-solve", cause=exc) from exc
