"""Wire-timing analysis engines: MNA, Elmore, moments, D2M, golden simulator.

This subpackage provides both the *feature generators* (Elmore downstream
capacitance, stage delays, D2M — the engineered quantities of Table I) and
the *golden reference* (an exact transient solver standing in for PrimeTime
SI, see DESIGN.md for the substitution argument).  The batched spectral
solver in :mod:`repro.analysis.batch` runs the same computations over
size-grouped stacks of nets, bitwise identically to the scalar paths
(docs/PERFORMANCE.md).
"""

from .mna import (ReducedSystem, capacitance_vector, conductance_matrix,
                  reduce_source, transfer_resistance_matrix)
from .elmore import (downstream_caps, elmore_delay_to_sink, elmore_delays,
                     path_elmore_delay, stage_delays)
from .moments import moments, reduced_moments, stacked_moments
from .d2m import d2m_delay_to_sink, d2m_delays, d2m_from_moments
from .awe import TwoPoleModel, awe2_delays, awe2_timing, fit_two_pole
from .cache import (SolveCache, configure_solve_cache, get_solve_cache,
                    solve_key)
from .simulator import (EigenSolve, GoldenTimer, SinkTiming,
                        TransientSolution, WireTimingResult, eigendecompose)
from .batch import (BatchedEigenEngine, GoldenNetJob, SolveRequest,
                    WirePrimeRequest, golden_analyze_many, prime_awe,
                    prime_solve_cache)

__all__ = [
    "conductance_matrix", "capacitance_vector", "reduce_source",
    "transfer_resistance_matrix", "ReducedSystem",
    "elmore_delays", "elmore_delay_to_sink", "downstream_caps",
    "stage_delays", "path_elmore_delay",
    "moments", "reduced_moments", "stacked_moments",
    "d2m_delays", "d2m_delay_to_sink", "d2m_from_moments",
    "awe2_delays", "awe2_timing", "fit_two_pole", "TwoPoleModel",
    "GoldenTimer", "TransientSolution", "WireTimingResult", "SinkTiming",
    "EigenSolve", "eigendecompose",
    "SolveCache", "get_solve_cache", "configure_solve_cache", "solve_key",
    "BatchedEigenEngine", "SolveRequest", "GoldenNetJob",
    "golden_analyze_many", "WirePrimeRequest", "prime_awe",
    "prime_solve_cache",
]
