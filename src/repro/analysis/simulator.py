"""Golden wire-timing reference: exact transient simulation of the RC net.

This module substitutes for the paper's sign-off timer (PrimeTime SI).  A
sign-off timer's wire delay is, at its core, the solution of the net's MNA
system driven by the driver output waveform; we compute that solution
*exactly*:

1. assemble ``C dv/dt = -G v + b u(t)`` with a Thevenin driver (ramp source
   behind a drive resistance) and, in SI mode, Miller-factor-scaled coupling
   capacitance modelling aggressor activity;
2. symmetrize with ``y = C^{1/2} v`` and eigendecompose the resulting
   symmetric positive-definite operator once per net — the decomposition is
   hoisted into a reusable :class:`EigenSolve` and memoized across queries
   (and across content-identical nets) by :mod:`repro.analysis.cache`;
3. evaluate the closed-form modal response to the piecewise-linear input at
   any time point, and bisect threshold crossings to sub-femtosecond
   tolerance.

Because the response is evaluated in closed form, the resulting delays and
slews are exact for the modelled circuit — a true golden reference, free of
integration error.

Units: resistances are ohms, capacitances farads, voltages volts, and every
time quantity (input slew, ramp time, horizon, delays, slews) is seconds —
matching the ``lint-units.json`` vocabulary.  Eigenvalues of the
symmetrized operator are 1/seconds.

The crossing search is shared with the batched engine
(:mod:`repro.analysis.batch`): :meth:`TransientSolution.bracket_crossings`
scans one net, and :func:`lockstep_crossings` bisects any number of nets'
bracketed pairs in one flat vectorized loop with per-pair freeze masks, so
a batch of one is bitwise identical to a batch of many.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics, get_tracer
from ..rcnet.graph import OHM, RCNet
from ..robustness.errors import InputError, NumericalError
from ..robustness.guards import require_finite, symmetric_condition
from .cache import get_solve_cache, solve_key
from .elmore import elmore_delays
from .mna import capacitance_vector, conductance_matrix

# Always-on health counters (one integer add each; see repro.obs.metrics).
_NETS_ANALYZED = get_metrics().counter("simulator.nets_analyzed")
_DECOMPOSITIONS = get_metrics().counter("simulator.eigendecompositions")
_CAP_RETRIES = get_metrics().counter("simulator.cap_floor_retries")
_CROSSINGS = get_metrics().counter("simulator.crossing_searches")
_MATRIX_SIZE = get_metrics().histogram("simulator.matrix_size")

_MIN_CAP = 1e-20  # Farads; regularizes pure-junction (zero-cap) nodes.
# Numerical-health policy of the symmetrized operator: when its condition
# number exceeds _MAX_CONDITION, the minimum-cap floor is escalated by
# _CAP_ESCALATION (stiffening the fastest modes) up to _MAX_CAP_RETRIES
# times before the net is declared numerically hopeless.
_MAX_CONDITION = 1e12
_CAP_ESCALATION = 1e3
_MAX_CAP_RETRIES = 3


@dataclass(frozen=True)
class SinkTiming:
    """Golden timing of one wire path (source to one sink)."""

    sink: int
    delay: float
    slew: float


@dataclass
class WireTimingResult:
    """Golden timing of a whole net.

    Attributes
    ----------
    net_name:
        Name of the analyzed net.
    source_slew:
        Slew measured at the net source node (after the driver), seconds.
    sink_timings:
        One :class:`SinkTiming` per sink, aligned with ``net.sinks``.
    """

    net_name: str
    source_slew: float
    sink_timings: List[SinkTiming] = field(default_factory=list)

    def timing_for(self, sink: int) -> SinkTiming:
        for timing in self.sink_timings:
            if timing.sink == sink:
                return timing
        raise KeyError(f"no timing recorded for sink {sink}")

    def delays(self) -> np.ndarray:
        return np.array([t.delay for t in self.sink_timings])

    def slews(self) -> np.ndarray:
        return np.array([t.slew for t in self.sink_timings])


@dataclass(frozen=True)
class EigenSolve:
    """Reusable eigendecomposition of one net's symmetrized MNA operator.

    This is the expensive part of a :class:`TransientSolution` — everything
    that depends only on (topology, R, C, driver) and not on the input
    waveform.  Repeated timing queries on the same net (STA path
    re-analysis, throughput loops, separate slew models) reuse one
    ``EigenSolve`` instead of re-decomposing; the
    :mod:`~repro.analysis.cache` LRU shares it across content-identical
    nets.  Treat all arrays as immutable.
    """

    caps: np.ndarray          # cap vector after the _MIN_CAP floor, farads
    inv_sqrt_c: np.ndarray    # C^{-1/2} diagonal
    eigenvalues: np.ndarray   # of C^{-1/2} (G + g_drv e e^T) C^{-1/2}
    q: np.ndarray             # orthonormal eigenvectors, columns


def eigendecompose(net: RCNet, g: np.ndarray,
                   caps: np.ndarray) -> EigenSolve:
    """Eigendecompose the symmetrized operator, with regularized retry.

    Starting from the ``_MIN_CAP`` floor, the cap floor is escalated
    whenever the operator is too ill-conditioned for the closed-form
    solution to carry precision; a net that stays hopeless after
    ``_MAX_CAP_RETRIES`` escalations raises a typed
    :class:`~repro.robustness.errors.NumericalError` carrying its name.
    """
    require_finite(caps, "capacitance vector", net=net.name,
                   stage="simulate")
    _DECOMPOSITIONS.inc()
    _MATRIX_SIZE.observe(net.num_nodes)
    min_cap = _MIN_CAP
    condition = float("inf")
    for attempt in range(_MAX_CAP_RETRIES + 1):
        if attempt:
            _CAP_RETRIES.inc()
        floored = np.maximum(caps, min_cap)
        inv_sqrt_c = 1.0 / np.sqrt(floored)
        m = (inv_sqrt_c[:, None] * g) * inv_sqrt_c[None, :]
        m = 0.5 * (m + m.T)  # enforce exact symmetry before eigh
        try:
            eigenvalues, q = np.linalg.eigh(m)
        except np.linalg.LinAlgError:
            min_cap *= _CAP_ESCALATION
            continue
        condition = symmetric_condition(eigenvalues)
        if condition <= _MAX_CONDITION:
            return EigenSolve(floored, inv_sqrt_c, eigenvalues, q)
        min_cap *= _CAP_ESCALATION
    raise NumericalError(
        f"symmetrized MNA operator stays ill-conditioned "
        f"(cond={condition:.3e}) after {_MAX_CAP_RETRIES} cap-floor "
        f"escalations", net=net.name, stage="simulate")


class TransientSolution:
    """Closed-form modal solution of one net's transient response.

    Construction performs the eigendecomposition (unless a precomputed
    :class:`EigenSolve` is supplied); :meth:`voltage_at` then evaluates any
    node voltage at any time exactly.
    """

    def __init__(self, net: RCNet, drive_resistance: float, vdd: float,
                 ramp_time: float, caps: np.ndarray,
                 injection: Optional[np.ndarray] = None,
                 solve: Optional[EigenSolve] = None) -> None:
        if not (math.isfinite(drive_resistance) and drive_resistance > 0.0):
            raise InputError("drive_resistance must be positive and finite",
                             net=net.name, stage="simulate")
        if not (math.isfinite(ramp_time) and ramp_time > 0.0):
            raise InputError("ramp_time must be positive and finite",
                             net=net.name, stage="simulate")
        self.net = net
        self.vdd = vdd
        self.ramp_time = ramp_time

        g_drv = 1.0 / drive_resistance
        b = np.zeros(net.num_nodes)
        b[net.source] = g_drv

        if solve is None:
            g = conductance_matrix(net)
            g[net.source, net.source] += g_drv
            with get_tracer().span("simulate.decompose", net=net.name,
                                   nodes=net.num_nodes):
                solve = eigendecompose(net, g, caps)
        self.solve = solve
        inv_sqrt_c, q = solve.inv_sqrt_c, solve.q
        # G + g_drv e e^T is PD, so all eigenvalues are strictly positive;
        # clamp against roundoff.
        self._lam = np.maximum(solve.eigenvalues, 1e-6 / ramp_time * 1e-6)
        self._q = q
        self._beta = q.T @ (inv_sqrt_c * b)
        self._inv_sqrt_c = inv_sqrt_c
        self._slope = vdd / ramp_time
        # Aggressor charge injection (amperes per node), active during the
        # ramp window.  Modal coordinates: constant forcing term gamma.
        if injection is None:
            self._gamma = np.zeros(net.num_nodes)
        else:
            injection = np.asarray(injection, dtype=np.float64)
            if injection.shape != (net.num_nodes,):
                raise InputError("injection must have one current per node",
                                 net=net.name, stage="simulate")
            self._gamma = q.T @ (inv_sqrt_c * injection)
        # Modal state at the end of the ramp (start state is zero).
        self._z_ramp_end = self._z_during_ramp(ramp_time)

    # -- input waveform -------------------------------------------------
    def input_at(self, t: float) -> float:
        """Driver-side ideal ramp voltage at time ``t``."""
        if t <= 0.0:
            return 0.0
        if t >= self.ramp_time:
            return self.vdd
        return self._slope * t

    # -- modal solutions --------------------------------------------------
    def _z_during_ramp(self, t: float) -> np.ndarray:
        """Modal coordinates during the ramp segment (zero initial state).

        For dz/dt = -lam z + beta * c * t + gamma:
        z(t) = beta*c * (t/lam - (1 - exp(-lam t))/lam^2)
               + gamma * (1 - exp(-lam t))/lam.
        """
        lam = self._lam
        expf = -np.expm1(-lam * t)  # 1 - exp(-lam t), accurate for small args
        return (self._beta * self._slope * (t / lam - expf / lam ** 2)
                + self._gamma * expf / lam)

    def _z_after_ramp(self, t: float) -> np.ndarray:
        """Modal coordinates after the ramp (input held at vdd)."""
        lam = self._lam
        dt = t - self.ramp_time
        decay = np.exp(-lam * dt)
        steady = self._beta * self.vdd / lam
        return steady + (self._z_ramp_end - steady) * decay

    def _modal_at(self, ts: np.ndarray) -> np.ndarray:
        """Modal coordinates at every time in ``ts`` — shape (len(ts), N).

        The batched form of :meth:`_z_during_ramp`/:meth:`_z_after_ramp`;
        one vectorized evaluation replaces a Python-level loop over time
        points, which is what makes the crossing search cheap.
        """
        ts = np.asarray(ts, dtype=np.float64)
        lam = self._lam
        z = np.zeros((ts.size, lam.size))
        ramp = (ts > 0.0) & (ts <= self.ramp_time)
        if np.any(ramp):
            t = ts[ramp, None]
            expf = -np.expm1(-lam[None, :] * t)
            z[ramp] = (self._beta * self._slope * (t / lam - expf / lam ** 2)
                       + self._gamma * expf / lam)
        after = ts > self.ramp_time
        if np.any(after):
            dt = ts[after, None] - self.ramp_time
            decay = np.exp(-lam[None, :] * dt)
            steady = self._beta * self.vdd / lam
            z[after] = steady + (self._z_ramp_end - steady) * decay
        return z

    def voltage_at(self, t: float) -> np.ndarray:
        """Exact node voltage vector at time ``t`` (volts)."""
        if t <= 0.0:
            return np.zeros(self.net.num_nodes)
        z = self._z_during_ramp(t) if t <= self.ramp_time else self._z_after_ramp(t)
        return self._inv_sqrt_c * (self._q @ z)

    def node_voltage_at(self, node: int, t: float) -> float:
        """Exact voltage of one node at time ``t`` (volts)."""
        if t <= 0.0:
            return 0.0
        z = self._z_during_ramp(t) if t <= self.ramp_time else self._z_after_ramp(t)
        return float(self._inv_sqrt_c[node] * (self._q[node] @ z))

    def voltages_at(self, nodes: Sequence[int],
                    ts: np.ndarray) -> np.ndarray:
        """Voltages of ``nodes`` at every time in ``ts`` — shape (T, M)."""
        nodes = np.asarray(nodes, dtype=np.intp)
        z = self._modal_at(ts)
        return (z @ self._q[nodes].T) * self._inv_sqrt_c[nodes]

    # -- crossing search ---------------------------------------------------
    def bracket_crossings(self, nodes: Sequence[int],
                          levels: Sequence[float],
                          horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Bracket every ``(node, level)`` crossing with one coarse scan.

        A 256-point forward sweep over ``[0, horizon]`` finds, for each
        pair, the first grid interval whose right edge is at or above the
        level; returns ``(lo, hi)`` bracket arrays for
        :func:`lockstep_crossings`.  Raises a typed
        :class:`~repro.robustness.errors.NumericalError` for the first
        pair whose voltage never reaches its level within ``horizon``.
        """
        nodes = np.asarray(nodes, dtype=np.intp)
        levels = np.asarray(levels, dtype=np.float64)
        samples = 256
        ts = np.linspace(0.0, horizon, samples + 1)
        scan = self.voltages_at(nodes, ts[1:]) >= levels
        reached = scan.any(axis=0)
        if not np.all(reached):
            bad = int(np.argmin(reached))
            raise NumericalError(
                f"node never reached {levels[bad]:.3f} V within "
                f"{horizon:.3e} s",
                net=self.net.name, sink=int(nodes[bad]), stage="simulate")
        first = scan.argmax(axis=0)
        # Grid point before the first crossing (0.0 at index 0) and the
        # crossing grid point itself.
        return ts[first], ts[1:][first]

    def crossing_times(self, nodes: Sequence[int], levels: Sequence[float],
                       horizon: float, tol: float = 1e-18) -> np.ndarray:
        """First times each ``(node, level)`` pair crosses, batched.

        :meth:`bracket_crossings` brackets every (monotone-in-practice)
        crossing in one vectorized sweep, then all pairs bisect in
        lockstep to ``tol`` seconds through :func:`lockstep_crossings` —
        the same primitive the batched engine runs across many nets, so
        the scalar path is literally a batch of one.
        """
        nodes = np.asarray(nodes, dtype=np.intp)
        levels = np.asarray(levels, dtype=np.float64)
        _CROSSINGS.inc(int(nodes.size))
        lo, hi = self.bracket_crossings(nodes, levels, horizon)
        return lockstep_crossings(
            [CrossingWork(self, nodes, levels, lo, hi)], tol=tol)[0]

    def crossing_time(self, node: int, level: float, horizon: float,
                      tol: float = 1e-18) -> float:
        """First time the node voltage crosses ``level`` volts.

        Single-pair convenience wrapper over :meth:`crossing_times`.
        """
        return float(self.crossing_times([node], [level], horizon, tol)[0])


@dataclass(frozen=True)
class CrossingWork:
    """One solution's bracketed ``(node, level)`` pairs, ready to bisect."""

    solution: TransientSolution
    nodes: np.ndarray    # (p,) node indices
    levels: np.ndarray   # (p,) threshold voltages, volts
    lo: np.ndarray       # (p,) bracket left edges, seconds
    hi: np.ndarray       # (p,) bracket right edges, seconds


def lockstep_crossings(work: Sequence[CrossingWork],
                       tol: float = 1e-18) -> List[np.ndarray]:
    """Bisect all bracketed crossings of all work items in one flat loop.

    Every (node, level) pair refines independently — per-pair freeze masks
    instead of shared early stops — so each answer depends only on its own
    bracket, never on what else shares the batch.  The modal dot products
    run through ``np.add.reduceat`` over ragged per-pair mode segments:
    the one reduction primitive whose per-segment sums are independent of
    neighbouring segments.  A batch of one is therefore bitwise identical
    to any larger batch, which is exactly the invariance the
    batched-vs-scalar property tests pin down.

    Returns one times array per work item, aligned with its pairs.
    """
    counts = [int(item.nodes.size) for item in work]
    if sum(counts) == 0:
        return [np.empty(0) for _ in work]
    # Flatten the (pair, mode) structure: per-mode arrays hold each pair's
    # modal constants back to back; ``offsets`` marks the segment starts.
    lam_p, lam2_p, bs_p, gamma_p, steady_p, zre_p = [], [], [], [], [], []
    rows_p, rt_p, scale_p, level_p, lo_p, hi_p, len_p = [], [], [], [], [], [], []
    for item in work:
        sol = item.solution
        pairs = int(item.nodes.size)
        if pairs == 0:
            continue
        lam = sol._lam
        lam_p.append(np.tile(lam, pairs))
        lam2_p.append(np.tile(lam ** 2, pairs))
        bs_p.append(np.tile(sol._beta * sol._slope, pairs))
        gamma_p.append(np.tile(sol._gamma, pairs))
        steady_p.append(np.tile(sol._beta * sol.vdd / lam, pairs))
        zre_p.append(np.tile(sol._z_ramp_end, pairs))
        rows_p.append(sol._q[item.nodes].ravel())
        rt_p.append(np.full(pairs * lam.size, sol.ramp_time))
        scale_p.append(sol._inv_sqrt_c[item.nodes])
        level_p.append(np.asarray(item.levels, dtype=np.float64))
        lo_p.append(np.asarray(item.lo, dtype=np.float64))
        hi_p.append(np.asarray(item.hi, dtype=np.float64))
        len_p.append(np.full(pairs, lam.size, dtype=np.intp))
    lam_f = np.concatenate(lam_p)
    lam2_f = np.concatenate(lam2_p)
    bs_f = np.concatenate(bs_p)
    gamma_f = np.concatenate(gamma_p)
    steady_f = np.concatenate(steady_p)
    zre_f = np.concatenate(zre_p)
    rows_f = np.concatenate(rows_p)
    rt_f = np.concatenate(rt_p)
    scale = np.concatenate(scale_p)
    level = np.concatenate(level_p)
    lo = np.concatenate(lo_p)
    hi = np.concatenate(hi_p)
    seg_len = np.concatenate(len_p)
    offsets = np.zeros(seg_len.size, dtype=np.intp)
    np.cumsum(seg_len[:-1], out=offsets[1:])
    z = np.empty_like(lam_f)
    active = (hi - lo) > tol
    while np.any(active):
        # Frozen pairs keep evaluating at ``hi`` (their state no longer
        # changes); only active pairs move their brackets.
        mid = np.where(active, 0.5 * (lo + hi), hi)
        t = np.repeat(mid, seg_len)
        ramp = t <= rt_f
        tr = t[ramp]
        lamr = lam_f[ramp]
        expf = -np.expm1(-lamr * tr)
        z[ramp] = (bs_f[ramp] * (tr / lamr - expf / lam2_f[ramp])
                   + gamma_f[ramp] * expf / lamr)
        after = ~ramp
        dt = t[after] - rt_f[after]
        decay = np.exp(-lam_f[after] * dt)
        z[after] = steady_f[after] + (zre_f[after] - steady_f[after]) * decay
        v = np.add.reduceat(z * rows_f, offsets) * scale
        ge = v >= level
        hi = np.where(active & ge, mid, hi)
        lo = np.where(active & ~ge, mid, lo)
        active = (hi - lo) > tol
    times = 0.5 * (lo + hi)
    out: List[np.ndarray] = []
    start = 0
    for count in counts:
        out.append(times[start:start + count])
        start += count
    return out


class GoldenTimer:
    """Sign-off-quality wire timing engine (PrimeTime-SI substitute).

    Parameters
    ----------
    drive_resistance:
        Thevenin resistance of the driving cell, ohms.
    vdd:
        Supply voltage (thresholds are relative, so the value only sets the
        scale), volts.
    si_mode:
        When ``True``, crosstalk is modelled dynamically: every coupling
        capacitance injects aggressor switching current
        ``i = -si_strength * activity * C_c * dV/dt`` at its victim node
        during the input transition (worst-case opposite-phase aggressors,
        the sign-off assumption).  The resulting delay push-out depends on
        *where* on the net each aggressor couples — global structural
        information that no per-path scalar feature carries, which is
        precisely the signal the paper's graph learning exploits.
    si_strength:
        Scale of the aggressor injection (ignored when ``si_mode=False``).
    delay_threshold, slew_low, slew_high:
        Measurement thresholds as fractions of ``vdd``.  Defaults (50%,
        10%, 90%) match common sign-off settings.

    Notes
    -----
    Linear RC nets respond symmetrically to rising and falling inputs, so
    rise and fall timing coincide; the ``transition`` argument of
    :meth:`analyze` exists for API parity with sign-off timers.
    """

    def __init__(self, drive_resistance: float = 100.0 * OHM, vdd: float = 0.8,
                 si_mode: bool = True, si_strength: float = 1.0,
                 delay_threshold: float = 0.5, slew_low: float = 0.1,
                 slew_high: float = 0.9) -> None:
        if not 0.0 < slew_low < delay_threshold < slew_high < 1.0:
            raise ValueError("thresholds must satisfy 0 < low < mid < high < 1")
        if si_strength < 0.0:
            raise ValueError("si_strength must be non-negative")
        self.drive_resistance = drive_resistance
        self.vdd = vdd
        self.si_mode = si_mode
        self.si_strength = si_strength
        self.delay_threshold = delay_threshold
        self.slew_low = slew_low
        self.slew_high = slew_high

    # ------------------------------------------------------------------
    def solve(self, net: RCNet, input_slew: float,
              sink_loads: Optional[Sequence[float]] = None,
              caps: Optional[np.ndarray] = None) -> TransientSolution:
        """Build the closed-form transient solution for one net.

        The eigendecomposition — the only expensive part — is memoized in
        the process-wide :class:`~repro.analysis.cache.SolveCache`, keyed
        by the content of (topology, R, C, driver); repeated queries on the
        same or a content-identical net reuse the stored
        :class:`EigenSolve` bit-identically.
        """
        if not (math.isfinite(input_slew) and input_slew > 0.0):
            raise InputError("input_slew must be positive and finite",
                             net=net.name, stage="simulate")
        if caps is None:
            loads = None if sink_loads is None \
                else np.asarray(sink_loads, dtype=np.float64)
            caps = capacitance_vector(net, miller_factor=None,
                                      sink_loads=loads)
        # The input slew is a 10/90 measurement; the underlying linear ramp
        # spans the full swing, hence the 0.8 factor.
        ramp_time = input_slew / (self.slew_high - self.slew_low)
        injection = None
        if self.si_mode and net.couplings:
            # Opposite-phase aggressors ramping alongside the victim pull
            # charge out of the victim node: i = -C_c * a * Vdd / T_ramp.
            injection = np.zeros(net.num_nodes)
            slope = self.vdd / ramp_time
            for coupling in net.couplings:
                injection[coupling.victim] -= (
                    self.si_strength * coupling.activity * coupling.cap * slope)
        cache = get_solve_cache()
        key = solve_key(net, caps, self.drive_resistance) if cache.enabled \
            else None
        solve = cache.get(key) if key is not None else None
        solution = TransientSolution(net, self.drive_resistance, self.vdd,
                                     ramp_time, caps, injection=injection,
                                     solve=solve)
        if key is not None and solve is None:
            cache.put(key, solution.solve)
        return solution

    def analyze(self, net: RCNet, input_slew: float,
                sink_loads: Optional[Sequence[float]] = None,
                transition: str = "rise") -> WireTimingResult:
        """Golden wire delay and slew for every sink of ``net``.

        Wire delay is measured from the 50% crossing of the *source node*
        (driver output) to the 50% crossing of each sink, matching how STA
        separates cell delay from wire delay.  Slew is the 10%-to-90%
        transition time at each sink.
        """
        if transition not in ("rise", "fall"):
            raise InputError(f"unknown transition {transition!r}",
                             net=net.name, stage="simulate")
        _NETS_ANALYZED.inc()
        with get_tracer().span("simulate.net", net=net.name,
                               sinks=net.num_sinks):
            return self._analyze(net, input_slew, sink_loads)

    def _analyze(self, net: RCNet, input_slew: float,
                 sink_loads: Optional[Sequence[float]]) -> WireTimingResult:
        # Assemble the capacitance vector once; solve() and the settling
        # horizon below share it instead of rebuilding it per query.
        loads = None if sink_loads is None \
            else np.asarray(sink_loads, dtype=np.float64)
        caps = capacitance_vector(net, miller_factor=None, sink_loads=loads)
        solution = self.solve(net, input_slew, sink_loads, caps=caps)
        horizon = self._horizon(net, solution, caps, loads)

        v_mid = self.delay_threshold * self.vdd
        v_lo = self.slew_low * self.vdd
        v_hi = self.slew_high * self.vdd

        # One batched crossing search for the source and every sink at all
        # three thresholds — the per-pair ordering mirrors the historical
        # sequential calls, including which pair raises first on failure.
        probes = [net.source, *net.sinks]
        nodes = [node for node in probes for _ in range(3)]
        levels = [v_mid, v_lo, v_hi] * len(probes)
        times = solution.crossing_times(nodes, levels, horizon)

        t_src_mid, t_src_lo, t_src_hi = times[0], times[1], times[2]
        result = WireTimingResult(net.name,
                                  source_slew=float(t_src_hi - t_src_lo))
        for i, sink in enumerate(net.sinks):
            t_mid, t_lo, t_hi = times[3 + 3 * i: 6 + 3 * i]
            result.sink_timings.append(SinkTiming(
                sink=sink, delay=float(t_mid - t_src_mid),
                slew=float(t_hi - t_lo)))
        require_finite(result.delays(), "golden delays", net=net.name,
                       stage="simulate")
        require_finite(result.slews(), "golden slews", net=net.name,
                       stage="simulate")
        return result

    def _horizon(self, net: RCNet, solution: TransientSolution,
                 caps: np.ndarray,
                 loads: Optional[np.ndarray]) -> float:
        """Conservative upper bound on when all nodes have settled."""
        total_cap = float(caps.sum())
        elmore = elmore_delays(net, sink_loads=loads)
        tau = self.drive_resistance * total_cap + float(elmore.max())
        return solution.ramp_time + 40.0 * max(tau, 1e-15)

    # ------------------------------------------------------------------
    def analyze_paths(self, net: RCNet, input_slew: float,
                      sink_loads: Optional[Sequence[float]] = None
                      ) -> Dict[int, SinkTiming]:
        """Timing keyed by sink node index, one entry per wire path."""
        result = self.analyze(net, input_slew, sink_loads)
        return {timing.sink: timing for timing in result.sink_timings}


__all__ = ["SinkTiming", "WireTimingResult", "EigenSolve", "eigendecompose",
           "TransientSolution", "CrossingWork", "lockstep_crossings",
           "GoldenTimer"]
