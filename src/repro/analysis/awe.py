"""Two-pole AWE (asymptotic waveform evaluation) delay and slew metric.

Classic reduced-order wire timing, one step up from D2M: the first three
moments of each node's transfer function are matched to a [1/2] Padé
approximant

    H(s) ~= (1 + a1*s) / (1 + b1*s + b2*s^2),

whose two (real, negative, for RC circuits) poles and residues give a
closed-form step response ``v(t) = 1 + r1*e^{p1 t} + r2*e^{p2 t}``.
Threshold crossings of that response provide delay (50%) and slew
(10%-90%) estimates considerably tighter than Elmore or D2M, at the cost
of one extra linear solve for the third moment.

When the Padé poles degenerate (complex or positive, which only happens
through numerical noise on near-source nodes), the metric falls back to a
single-pole model with the Elmore time constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..rcnet.graph import RCNet
from .moments import moments

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class TwoPoleModel:
    """Reduced step-response model ``v(t) = 1 + r1 e^{p1 t} + r2 e^{p2 t}``."""

    p1: float
    p2: float
    r1: float
    r2: float

    def value(self, t: float) -> float:
        return 1.0 + self.r1 * math.exp(self.p1 * t) \
            + self.r2 * math.exp(self.p2 * t)

    def crossing(self, level: float, guess: float) -> float:
        """First crossing of ``level`` by bisection on [0, many tau]."""
        hi = max(guess, 1e-18)
        while self.value(hi) < level:
            hi *= 2.0
            if hi > guess * 1e9:
                raise RuntimeError("two-pole response never settles")
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.value(mid) >= level:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)


def fit_two_pole(m1: float, m2: float, m3: float) -> Optional[TwoPoleModel]:
    """Fit the [1/2] Padé model from (signed) moments m1, m2, m3.

    Returns ``None`` when the fit degenerates (non-real or non-negative
    poles), signalling the caller to fall back to a single-pole model.
    """
    det = m1 * m1 - m2
    if abs(det) < 1e-300:
        return None
    # Solve [[m1, 1], [m2, m1]] @ [b1, b2] = [-m2, -m3].
    b1 = (-m2 * m1 + m3) / det
    b2 = (m2 * m2 - m1 * m3) / det
    a1 = b1 + m1
    disc = b1 * b1 - 4.0 * b2
    if disc < 0.0 or abs(b2) < 1e-300:
        return None
    sqrt_disc = math.sqrt(disc)
    p1 = (-b1 + sqrt_disc) / (2.0 * b2)
    p2 = (-b1 - sqrt_disc) / (2.0 * b2)
    if p1 >= 0.0 or p2 >= 0.0 or p1 == p2:
        return None
    # Residues of H(s)/s at each pole: (1 + a1 p) / (b2 p (p - other)).
    r1 = (1.0 + a1 * p1) / (b2 * p1 * (p1 - p2))
    r2 = (1.0 + a1 * p2) / (b2 * p2 * (p2 - p1))
    return TwoPoleModel(p1, p2, r1, r2)


def _first_crossings(p1: np.ndarray, p2: np.ndarray, r1: np.ndarray,
                     r2: np.ndarray, guesses: np.ndarray,
                     levels: np.ndarray) -> np.ndarray:
    """First crossing times for many two-pole fits at once, shape (k, L).

    The same bracketed bisection as :meth:`TwoPoleModel.crossing`, run on
    every (fit, level) pair simultaneously — the scalar loop was the hot
    path of the whole AWE metric (hundreds of ``math.exp`` calls per net).
    """
    p1 = p1[:, None]
    p2 = p2[:, None]
    r1 = r1[:, None]
    r2 = r2[:, None]
    wanted = levels[None, :]
    hi = np.broadcast_to(np.maximum(guesses, 1e-18)[:, None],
                         (len(guesses), len(levels))).copy()
    cap = hi * 1e9

    def value(t: np.ndarray) -> np.ndarray:
        return 1.0 + r1 * np.exp(p1 * t) + r2 * np.exp(p2 * t)

    pending = value(hi) < wanted
    while np.any(pending):
        hi = np.where(pending, hi * 2.0, hi)
        if np.any(hi > cap):
            raise RuntimeError("two-pole response never settles")
        pending = value(hi) < wanted
    lo = np.zeros_like(hi)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        above = value(mid) >= wanted
        hi = np.where(above, mid, hi)
        lo = np.where(above, lo, mid)
        # The scalar loop ran all 200 halvings; by this tolerance the
        # bracket is orders of magnitude below any timing resolution, so
        # stopping early changes nothing observable.
        if np.all(hi - lo <= 1e-12 * hi):
            break
    return 0.5 * (lo + hi)


def awe2_timing(net: RCNet, sink_loads: Optional[np.ndarray] = None,
                slew_low: float = 0.1, slew_high: float = 0.9,
                nodes: Optional[Sequence[int]] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Two-pole AWE step delay (50%) and slew (10-90) per node, seconds.

    The source row is zero (its voltage is the input).  ``nodes`` limits
    the (comparatively expensive) threshold-crossing solves to the listed
    nodes — rows outside it are left zero; serving paths that only read
    sink rows pass ``net.sinks`` and skip the internal nodes entirely.
    """
    m = moments(net, order=3, sink_loads=sink_loads)
    delays = np.zeros(net.num_nodes)
    slews = np.zeros(net.num_nodes)
    if nodes is None:
        wanted = [n for n in range(net.num_nodes) if n != net.source]
    else:
        wanted = [int(n) for n in nodes if int(n) != net.source]
    fitted: list = []
    params: list = []
    for node in wanted:
        m1, m2, m3 = m[0, node], m[1, node], m[2, node]
        tau = -m1  # Elmore time constant (positive)
        model = fit_two_pole(m1, m2, m3)
        if model is None:
            # Single-pole fallback with the Elmore tau: crossing of level
            # x happens at -tau*ln(1-x), so the 10-90 swing is
            # tau * ln((1-low)/(1-high)).
            delays[node] = _LN2 * tau
            slews[node] = math.log((1.0 - slew_low) / (1.0 - slew_high)) * tau
            continue
        fitted.append(node)
        params.append((model.p1, model.p2, model.r1, model.r2,
                       max(tau, 1e-18)))
    if fitted:
        p1, p2, r1, r2, guesses = (np.array(column)
                                   for column in zip(*params))
        times = _first_crossings(p1, p2, r1, r2, guesses,
                                 np.array([0.5, slew_low, slew_high]))
        delays[fitted] = times[:, 0]
        slews[fitted] = times[:, 2] - times[:, 1]
    return delays, slews


def awe2_delays(net: RCNet,
                sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Two-pole AWE 50% step delay per node, seconds."""
    delays, _ = awe2_timing(net, sink_loads)
    return delays
