"""Two-pole AWE (asymptotic waveform evaluation) delay and slew metric.

Classic reduced-order wire timing, one step up from D2M: the first three
moments of each node's transfer function are matched to a [1/2] Padé
approximant

    H(s) ~= (1 + a1*s) / (1 + b1*s + b2*s^2),

whose two (real, negative, for RC circuits) poles and residues give a
closed-form step response ``v(t) = 1 + r1*e^{p1 t} + r2*e^{p2 t}``.
Threshold crossings of that response provide delay (50%) and slew
(10%-90%) estimates considerably tighter than Elmore or D2M, at the cost
of one extra linear solve for the third moment.

When the Padé poles degenerate (complex or positive, which only happens
through numerical noise on near-source nodes), the metric falls back to a
single-pole model with the Elmore time constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..rcnet.graph import RCNet
from .moments import moments

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class TwoPoleModel:
    """Reduced step-response model ``v(t) = 1 + r1 e^{p1 t} + r2 e^{p2 t}``."""

    p1: float
    p2: float
    r1: float
    r2: float

    def value(self, t: float) -> float:
        return 1.0 + self.r1 * math.exp(self.p1 * t) \
            + self.r2 * math.exp(self.p2 * t)

    def crossing(self, level: float, guess: float) -> float:
        """First crossing of ``level`` by bisection on [0, many tau]."""
        hi = max(guess, 1e-18)
        while self.value(hi) < level:
            hi *= 2.0
            if hi > guess * 1e9:
                raise RuntimeError("two-pole response never settles")
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.value(mid) >= level:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)


def fit_two_pole(m1: float, m2: float, m3: float) -> Optional[TwoPoleModel]:
    """Fit the [1/2] Padé model from (signed) moments m1, m2, m3.

    Returns ``None`` when the fit degenerates (non-real or non-negative
    poles), signalling the caller to fall back to a single-pole model.
    """
    det = m1 * m1 - m2
    if abs(det) < 1e-300:
        return None
    # Solve [[m1, 1], [m2, m1]] @ [b1, b2] = [-m2, -m3].
    b1 = (-m2 * m1 + m3) / det
    b2 = (m2 * m2 - m1 * m3) / det
    a1 = b1 + m1
    disc = b1 * b1 - 4.0 * b2
    if disc < 0.0 or abs(b2) < 1e-300:
        return None
    sqrt_disc = math.sqrt(disc)
    p1 = (-b1 + sqrt_disc) / (2.0 * b2)
    p2 = (-b1 - sqrt_disc) / (2.0 * b2)
    if p1 >= 0.0 or p2 >= 0.0 or p1 == p2:
        return None
    # Residues of H(s)/s at each pole: (1 + a1 p) / (b2 p (p - other)).
    r1 = (1.0 + a1 * p1) / (b2 * p1 * (p1 - p2))
    r2 = (1.0 + a1 * p2) / (b2 * p2 * (p2 - p1))
    return TwoPoleModel(p1, p2, r1, r2)


def awe2_timing(net: RCNet, sink_loads: Optional[np.ndarray] = None,
                slew_low: float = 0.1, slew_high: float = 0.9
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Two-pole AWE step delay (50%) and slew (10-90) per node, seconds.

    The source row is zero (its voltage is the input).
    """
    m = moments(net, order=3, sink_loads=sink_loads)
    delays = np.zeros(net.num_nodes)
    slews = np.zeros(net.num_nodes)
    for node in range(net.num_nodes):
        if node == net.source:
            continue
        m1, m2, m3 = m[0, node], m[1, node], m[2, node]
        tau = -m1  # Elmore time constant (positive)
        model = fit_two_pole(m1, m2, m3)
        if model is None:
            # Single-pole fallback with the Elmore tau: crossing of level
            # x happens at -tau*ln(1-x), so the 10-90 swing is
            # tau * ln((1-low)/(1-high)).
            delays[node] = _LN2 * tau
            slews[node] = math.log((1.0 - slew_low) / (1.0 - slew_high)) * tau
            continue
        guess = max(tau, 1e-18)
        t50 = model.crossing(0.5, guess)
        t_lo = model.crossing(slew_low, guess)
        t_hi = model.crossing(slew_high, guess)
        delays[node] = t50
        slews[node] = t_hi - t_lo
    return delays, slews


def awe2_delays(net: RCNet,
                sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Two-pole AWE 50% step delay per node, seconds."""
    delays, _ = awe2_timing(net, sink_loads)
    return delays
