"""Two-pole AWE (asymptotic waveform evaluation) delay and slew metric.

Classic reduced-order wire timing, one step up from D2M: the first three
moments of each node's transfer function are matched to a [1/2] Padé
approximant

    H(s) ~= (1 + a1*s) / (1 + b1*s + b2*s^2),

whose two (real, negative, for RC circuits) poles and residues give a
closed-form step response ``v(t) = 1 + r1*e^{p1 t} + r2*e^{p2 t}``.
Threshold crossings of that response provide delay (50%) and slew
(10%-90%) estimates considerably tighter than Elmore or D2M, at the cost
of one extra linear solve for the third moment.

When the Padé poles degenerate (complex or positive, which only happens
through numerical noise on near-source nodes), the metric falls back to a
single-pole model with the Elmore time constant.

Units: resistances in ohm, capacitances in farad, all returned delays and
slews in seconds.

The step response depends only on (net content, sink loads, thresholds,
node selection) — not on the input slew — so :func:`awe2_timing` results
are memoized in a process-wide content-addressed LRU
(:func:`get_awe_cache`).
STA runs re-query the same net once per crossing path, and the batched
prime pass of :mod:`repro.analysis.batch` fills the same cache in bulk, so
single-net lookups hit either way.
"""

from __future__ import annotations

import hashlib
import math
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics, named_lock
from ..rcnet.graph import RCNet
from .cache import solve_key
from .mna import capacitance_vector
from .moments import moments

__all__ = ["TwoPoleModel", "fit_two_pole", "awe2_timing", "awe2_delays",
           "AWEStepCache", "get_awe_cache", "configure_awe_cache"]

_LN2 = math.log(2.0)

#: Relative bracket width at which one (fit, level) pair's bisection is
#: frozen.  Convergence is tracked *per element*, so each pair's result
#: depends only on its own trajectory — never on what else shares the
#: batch — which is what makes batched and scalar crossings bitwise equal.
_BRACKET_RTOL = 1e-12

_CACHE_HITS = get_metrics().counter("awe.cache_hits")
_CACHE_MISSES = get_metrics().counter("awe.cache_misses")


@dataclass(frozen=True)
class TwoPoleModel:
    """Reduced step-response model ``v(t) = 1 + r1 e^{p1 t} + r2 e^{p2 t}``."""

    p1: float
    p2: float
    r1: float
    r2: float

    def value(self, t: float) -> float:
        return 1.0 + self.r1 * math.exp(self.p1 * t) \
            + self.r2 * math.exp(self.p2 * t)

    def crossing(self, level: float, guess: float) -> float:
        """First crossing of ``level`` by bisection on [0, many tau]."""
        hi = max(guess, 1e-18)
        while self.value(hi) < level:
            hi *= 2.0
            if hi > guess * 1e9:
                raise RuntimeError("two-pole response never settles")
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.value(mid) >= level:
                hi = mid
            else:
                lo = mid
            if hi - lo <= _BRACKET_RTOL * hi:
                break
        return 0.5 * (lo + hi)


def fit_two_pole(m1: float, m2: float, m3: float) -> Optional[TwoPoleModel]:
    """Fit the [1/2] Padé model from (signed) moments m1, m2, m3.

    Returns ``None`` when the fit degenerates (non-real or non-negative
    poles), signalling the caller to fall back to a single-pole model.
    """
    det = m1 * m1 - m2
    if abs(det) < 1e-300:
        return None
    # Solve [[m1, 1], [m2, m1]] @ [b1, b2] = [-m2, -m3].
    b1 = (-m2 * m1 + m3) / det
    b2 = (m2 * m2 - m1 * m3) / det
    a1 = b1 + m1
    disc = b1 * b1 - 4.0 * b2
    if disc < 0.0 or abs(b2) < 1e-300:
        return None
    sqrt_disc = math.sqrt(disc)
    p1 = (-b1 + sqrt_disc) / (2.0 * b2)
    p2 = (-b1 - sqrt_disc) / (2.0 * b2)
    if p1 >= 0.0 or p2 >= 0.0 or p1 == p2:
        return None
    # Residues of H(s)/s at each pole: (1 + a1 p) / (b2 p (p - other)).
    r1 = (1.0 + a1 * p1) / (b2 * p1 * (p1 - p2))
    r2 = (1.0 + a1 * p2) / (b2 * p2 * (p2 - p1))
    return TwoPoleModel(p1, p2, r1, r2)


def _first_crossings_masked(p1: np.ndarray, p2: np.ndarray, r1: np.ndarray,
                            r2: np.ndarray, guesses: np.ndarray,
                            levels: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """Crossing times plus a per-pair success mask, shapes (k, L).

    The same bracketed bisection as :meth:`TwoPoleModel.crossing`, run on
    every (fit, level) pair simultaneously.  Pairs whose response never
    settles are reported in the mask instead of raising, so one degenerate
    fit cannot poison a batch that spans many nets.  Every pair converges
    (or fails) on its own trajectory — results are independent of which
    other pairs share the call, the invariant behind the batched prime
    pass of :mod:`repro.analysis.batch`.
    """
    p1 = p1[:, None]
    p2 = p2[:, None]
    r1 = r1[:, None]
    r2 = r2[:, None]
    wanted = levels[None, :]
    hi = np.broadcast_to(np.maximum(guesses, 1e-18)[:, None],
                         (len(guesses), len(levels))).copy()
    cap = hi * 1e9

    def value(t: np.ndarray) -> np.ndarray:
        return 1.0 + r1 * np.exp(p1 * t) + r2 * np.exp(p2 * t)

    ok = np.ones(hi.shape, dtype=bool)
    pending = value(hi) < wanted
    while np.any(pending):
        hi = np.where(pending, hi * 2.0, hi)
        failed = pending & (hi > cap)
        if np.any(failed):
            ok &= ~failed
            pending &= ~failed
        pending &= value(hi) < wanted
    lo = np.zeros_like(hi)
    active = ok.copy()
    for _ in range(200):
        if not np.any(active):
            break
        mid = 0.5 * (lo + hi)
        above = value(mid) >= wanted
        take = active & above
        keep = active & ~above
        hi = np.where(take, mid, hi)
        lo = np.where(keep, mid, lo)
        active &= (hi - lo) > _BRACKET_RTOL * hi
    return 0.5 * (lo + hi), ok


def _first_crossings(p1: np.ndarray, p2: np.ndarray, r1: np.ndarray,
                     r2: np.ndarray, guesses: np.ndarray,
                     levels: np.ndarray) -> np.ndarray:
    """First crossing times for many two-pole fits at once, shape (k, L).

    Raising wrapper over :func:`_first_crossings_masked`, for callers that
    treat a non-settling response as a whole-net failure (the AWE tier
    contract: fail loudly, let the fallback ladder degrade).
    """
    times, ok = _first_crossings_masked(p1, p2, r1, r2, guesses, levels)
    if not np.all(ok):
        raise RuntimeError("two-pole response never settles")
    return times


def fit_step_params(m: np.ndarray, wanted: Sequence[int], slew_low: float,
                    slew_high: float, delays: np.ndarray, slews: np.ndarray
                    ) -> Tuple[List[int], List[Tuple[float, ...]]]:
    """Padé-fit every node in ``wanted`` from the moment matrix ``m``.

    Nodes whose fit degenerates get the single-pole fallback written into
    ``delays``/``slews`` in place; the rest are returned as
    ``(fitted_nodes, (p1, p2, r1, r2, guess) params)`` for the (scalar or
    batched) crossing solver.  Shared by :func:`awe2_timing` and the
    batched prime pass so both produce identical fits.
    """
    fitted: List[int] = []
    params: List[Tuple[float, ...]] = []
    for node in wanted:
        m1, m2, m3 = m[0, node], m[1, node], m[2, node]
        tau = -m1  # Elmore time constant (positive)
        model = fit_two_pole(m1, m2, m3)
        if model is None:
            # Single-pole fallback with the Elmore tau: crossing of level
            # x happens at -tau*ln(1-x), so the 10-90 swing is
            # tau * ln((1-low)/(1-high)).
            delays[node] = _LN2 * tau
            slews[node] = math.log((1.0 - slew_low) / (1.0 - slew_high)) * tau
            continue
        fitted.append(node)
        params.append((model.p1, model.p2, model.r1, model.r2,
                       max(tau, 1e-18)))
    return fitted, params


# ----------------------------------------------------------------------
# Step-response memo cache
# ----------------------------------------------------------------------
class AWEStepCache:
    """Thread-safe LRU from step-response content keys to (delays, slews).

    Keys come from :func:`step_key`; values are the full per-node arrays of
    :func:`awe2_timing`, stored read-only because hits hand out the same
    objects to every caller.  Serving threads share one instance, hence the
    (watched) lock — the same discipline as
    :class:`~repro.analysis.cache.SolveCache`: only the ``OrderedDict``
    operations run under it, metric increments happen outside.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = named_lock("AWEStepCache._lock")
        self._entries: "OrderedDict[bytes, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()  # repro-guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def contains(self, key: bytes) -> bool:
        """Metrics-free membership peek (no hit/miss counters, no LRU move).

        The batched prime pass uses this to skip already-cached nets
        without skewing the ``awe.cache_*`` counters that describe real
        lookups.
        """
        with self._lock:
            return key in self._entries

    def get(self, key: bytes) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            _CACHE_MISSES.inc()
            return None
        _CACHE_HITS.inc()
        return entry

    def put(self, key: bytes, delays: np.ndarray, slews: np.ndarray) -> None:
        if not self.enabled:
            return
        delays.setflags(write=False)
        slews.setflags(write=False)
        with self._lock:
            self._entries[key] = (delays, slews)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_AWE_CACHE = AWEStepCache()


def get_awe_cache() -> AWEStepCache:
    """The process-wide AWE step-response cache."""
    return _AWE_CACHE


def configure_awe_cache(maxsize: int) -> AWEStepCache:
    """Replace the global step cache (``0`` disables memoization)."""
    global _AWE_CACHE
    _AWE_CACHE = AWEStepCache(maxsize)
    return _AWE_CACHE


def step_key(net: RCNet, sink_loads: Optional[np.ndarray], slew_low: float,
             slew_high: float, wanted: Sequence[int]) -> bytes:
    """Content hash of one step-response computation's inputs.

    Everything :func:`awe2_timing` depends on: net topology/R/C with
    coupling caps grounded and sink loads folded in (via the same
    capacitance vector the moment recursion consumes), the two slew
    thresholds, and which node rows are solved.
    """
    caps = capacitance_vector(net, miller_factor=None, sink_loads=sink_loads)
    digest = solve_key(net, caps, 0.0)
    tail = struct.pack(f"<dd{len(wanted)}q", slew_low, slew_high,
                       *[int(n) for n in wanted])
    return hashlib.blake2b(digest + tail, digest_size=16).digest()


def _wanted_nodes(net: RCNet, nodes: Optional[Sequence[int]]) -> List[int]:
    if nodes is None:
        return [n for n in range(net.num_nodes) if n != net.source]
    return [int(n) for n in nodes if int(n) != net.source]


def awe2_timing(net: RCNet, sink_loads: Optional[np.ndarray] = None,
                slew_low: float = 0.1, slew_high: float = 0.9,
                nodes: Optional[Sequence[int]] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Two-pole AWE step delay (50%) and slew (10-90) per node, seconds.

    The source row is zero (its voltage is the input).  ``nodes`` limits
    the (comparatively expensive) threshold-crossing solves to the listed
    nodes — rows outside it are left zero; serving paths that only read
    sink rows pass ``net.sinks`` and skip the internal nodes entirely.

    Results are memoized in :func:`get_awe_cache` (they depend only on the
    step-response content, not the input slew); the returned arrays are
    read-only for that reason.
    """
    wanted = _wanted_nodes(net, nodes)
    cache = get_awe_cache()
    key = step_key(net, sink_loads, slew_low, slew_high, wanted) \
        if cache.enabled else None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    m = moments(net, order=3, sink_loads=sink_loads)
    delays = np.zeros(net.num_nodes)
    slews = np.zeros(net.num_nodes)
    fitted, params = fit_step_params(m, wanted, slew_low, slew_high,
                                     delays, slews)
    if fitted:
        p1, p2, r1, r2, guesses = (np.array(column)
                                   for column in zip(*params))
        times = _first_crossings(p1, p2, r1, r2, guesses,
                                 np.array([0.5, slew_low, slew_high]))
        delays[fitted] = times[:, 0]
        slews[fitted] = times[:, 2] - times[:, 1]
    if key is not None:
        cache.put(key, delays, slews)
    return delays, slews


def awe2_delays(net: RCNet,
                sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Two-pole AWE 50% step delay per node, seconds."""
    delays, _ = awe2_timing(net, sink_loads)
    return delays
