"""Higher-order moment computation (asymptotic waveform evaluation style).

The transfer function from source to node ``k`` expands as
``H_k(s) = 1 + m1_k s + m2_k s^2 + ...``; the recursion

    m^(0) = 1 (DC gain),   m^(i) = -G^{-1} C m^(i-1)

yields each moment vector with one linear solve.  The first moment is the
negated Elmore delay; the second feeds the D2M metric (Table I's "D2M
delay" feature).

Units: ``G`` entries are siemens (1/ohm), ``C`` entries are farads, so the
``i``-th moment vector carries seconds^i.

The solves run through ``numpy.linalg.solve`` — the same gufunc the batched
engine (:mod:`repro.analysis.batch`) applies to size-grouped stacks of
reduced systems, so a scalar call is literally a batch of one and the two
paths agree bitwise.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

import numpy as np

from ..rcnet.graph import RCNet
from ..robustness.errors import InputError
from .mna import ReducedSystem, reduce_source

__all__ = ["cached_moments", "moments", "reduced_moments",
           "stacked_moments"]


def moments(net: RCNet, order: int = 2, miller_factor: Optional[float] = None,
            sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Moment vectors ``m^(1) .. m^(order)`` for every node.

    Returns an array of shape ``(order, num_nodes)`` indexed by original
    node index; the source row entries are 0 (its voltage is the input).
    ``result[0]`` is the (signed, negative) first moment, so the Elmore
    delay of node ``k`` is ``-result[0, k]``.
    """
    # repro-shape: sink_loads=(s,):f64 -> (k, n):f64
    if order < 1:
        raise InputError(f"order must be >= 1, got {order}",
                         net=net.name, stage="moments")
    system = reduce_source(net, miller_factor, sink_loads)
    out = np.zeros((order, net.num_nodes), dtype=np.float64)
    out[:, system.nodes] = reduced_moments(system, order)
    return out


def cached_moments(net: RCNet, order: int = 2,
                   miller_factor: Optional[float] = None,
                   sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Keyed entry point to :func:`moments` via the process solve cache.

    The key is the same content digest :class:`~repro.analysis.cache.SolveCache`
    uses for eigensolves (net topology, R/C values, folded sink loads),
    namespaced by the moment order so the two value kinds can never
    collide.  Hits return the identical (read-only) array, so repeated
    feature extraction or metric evaluation over the same net pays one
    reduction and ``order`` solves total instead of per call — and stays
    bitwise equal to the uncached path.  A disabled cache degrades to a
    plain :func:`moments` call.
    """
    # repro-shape: sink_loads=(s,):f64 -> (k, n):f64
    from .cache import get_solve_cache, solve_key
    from .mna import capacitance_vector

    cache = get_solve_cache()
    if not cache.enabled:
        return moments(net, order, miller_factor, sink_loads)
    caps = capacitance_vector(net, miller_factor=miller_factor,
                              sink_loads=sink_loads)
    key = hashlib.blake2b(
        b"moments" + struct.pack("<q", order) + solve_key(net, caps, 0.0),
        digest_size=16).digest()
    hit = cache.get(key)
    if isinstance(hit, np.ndarray):
        return hit
    out = moments(net, order, miller_factor, sink_loads)
    out.setflags(write=False)
    cache.put(key, out)
    return out


def reduced_moments(system: ReducedSystem, order: int) -> np.ndarray:
    """Moment recursion on one reduced system — shape ``(order, n-1)``.

    Split out of :func:`moments` so the batched engine can run the same
    recursion on stacked systems; see :func:`stacked_moments`.
    """
    current = np.ones(len(system.nodes), dtype=np.float64)  # m^(0): DC gain 1.
    out = np.empty((order, len(system.nodes)), dtype=np.float64)
    for k in range(order):
        current = -np.linalg.solve(system.g, system.caps * current)
        out[k] = current
    return out


def stacked_moments(g_stack: np.ndarray, caps_stack: np.ndarray,
                    order: int) -> np.ndarray:
    """Moment recursion over a stack of same-size reduced systems.

    ``g_stack`` has shape ``(k, n, n)`` and ``caps_stack`` ``(k, n)``; the
    result has shape ``(k, order, n)``.  ``numpy.linalg.solve`` loops LAPACK
    over the leading axis, so slice ``i`` of the result is bitwise equal to
    ``reduced_moments`` on system ``i`` alone — the invariant the
    batched-vs-scalar property tests pin down.
    """
    # repro-shape: g_stack=(k, n, n):f64 caps_stack=(k, n):f64 -> (k, o, n):f64
    count, n = caps_stack.shape
    current = np.ones((count, n), dtype=np.float64)
    out = np.empty((count, order, n), dtype=np.float64)
    for k in range(order):
        rhs = (caps_stack * current)[..., None]
        current = -np.linalg.solve(g_stack, rhs)[..., 0]
        out[:, k, :] = current
    return out
