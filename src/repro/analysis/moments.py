"""Higher-order moment computation (asymptotic waveform evaluation style).

The transfer function from source to node ``k`` expands as
``H_k(s) = 1 + m1_k s + m2_k s^2 + ...``; the recursion

    m^(0) = 1 (DC gain),   m^(i) = -G^{-1} C m^(i-1)

yields each moment vector with one linear solve.  The first moment is the
negated Elmore delay; the second feeds the D2M metric (Table I's "D2M
delay" feature).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rcnet.graph import RCNet
from ..robustness.errors import InputError
from .mna import reduce_source

# Imported at module load so the (substantial) scipy import cost lands at
# startup rather than inside the first timed moment computation.  Gated: a
# scipy-free install falls back to a dense solve against the plain matrix.
try:
    from scipy.linalg import lu_factor, lu_solve
except ImportError:  # pragma: no cover - scipy is present in CI
    lu_factor = None
    lu_solve = None


def moments(net: RCNet, order: int = 2, miller_factor: Optional[float] = None,
            sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Moment vectors ``m^(1) .. m^(order)`` for every node.

    Returns an array of shape ``(order, num_nodes)`` indexed by original
    node index; the source row entries are 0 (its voltage is the input).
    ``result[0]`` is the (signed, negative) first moment, so the Elmore
    delay of node ``k`` is ``-result[0, k]``.
    """
    # repro-shape: sink_loads=(s,):f64 -> (k, n):f64
    if order < 1:
        raise InputError(f"order must be >= 1, got {order}",
                         net=net.name, stage="moments")
    system = reduce_source(net, miller_factor, sink_loads)
    # Pre-factorize the reduced conductance matrix for repeated solves.
    lu_piv = _factorize(system.g)
    current = np.ones(len(system.nodes), dtype=np.float64)  # m^(0): DC gain 1.
    out = np.zeros((order, net.num_nodes), dtype=np.float64)
    for k in range(order):
        current = -_solve(lu_piv, system.caps * current)
        out[k, system.nodes] = current
    return out


def _factorize(matrix: np.ndarray):
    if lu_factor is None:
        return matrix
    return lu_factor(matrix)


def _solve(lu_piv, rhs: np.ndarray) -> np.ndarray:
    if lu_solve is None:
        return np.linalg.solve(lu_piv, rhs)
    return lu_solve(lu_piv, rhs)
