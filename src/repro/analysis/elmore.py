"""Elmore delay analysis.

Two flavours are provided:

* :func:`elmore_delays` — the exact first-moment computation valid on *any*
  net (tree or non-tree): the Elmore delay to node ``k`` equals
  ``sum_j R_kj * C_j`` with ``R_kj`` the transfer resistance, obtained by one
  linear solve against the reduced conductance matrix.
* :func:`downstream_caps` and :func:`stage_delays` — the path-oriented
  quantities of Table I ("downstream cap" and "stage delay"), computed on
  the shortest-path spanning tree so they are well-defined on non-tree nets
  exactly as the paper's feature extraction requires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..rcnet.graph import RCNet
from ..rcnet.paths import WirePath, shortest_path_tree
from .mna import ReducedSystem, capacitance_vector, reduce_source

__all__ = ["elmore_delays", "elmore_delay_to_sink", "downstream_caps",
           "stage_delays", "path_elmore_delay"]


def elmore_delays(net: RCNet, miller_factor: Optional[float] = None,
                  sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Exact Elmore delay (first moment) from the source to every node.

    Solves ``G_red x = C_red`` once; ``x[k]`` is the Elmore delay of node
    ``k`` in seconds.  The returned vector is indexed by *original* node
    index, with 0 at the source.
    """
    # repro-shape: sink_loads=(s,):f64 -> (n,):f64
    system = reduce_source(net, miller_factor, sink_loads)
    x = np.linalg.solve(system.g, system.caps)
    delays = np.zeros(net.num_nodes, dtype=np.float64)
    delays[system.nodes] = x
    return delays


def elmore_delay_to_sink(net: RCNet, sink: int,
                         miller_factor: Optional[float] = None,
                         sink_loads: Optional[np.ndarray] = None) -> float:
    """Elmore delay from the source to one sink, in seconds."""
    return float(elmore_delays(net, miller_factor, sink_loads)[sink])


def downstream_caps(net: RCNet,
                    sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """Downstream capacitance of each node, in farads.

    Defined (as in the paper's Table I) as the total capacitance reachable
    *through* a node when walking away from the source.  On a tree this is
    the classic subtree capacitance; on a non-tree net we use the
    minimum-resistance spanning tree rooted at the source — consistent with
    the paper's shortest-path definition of wire paths.
    """
    # repro-shape: sink_loads=(s,):f64 -> (n,):f64
    _, parent, _ = shortest_path_tree(net)
    caps = capacitance_vector(net, miller_factor=None, sink_loads=sink_loads)
    downstream = caps.copy()
    # Accumulate child capacitance into parents in reverse-BFS order.
    order = _topological_from_parents(net, parent)
    for node in reversed(order):
        p = parent[node]
        if p >= 0:
            downstream[p] += downstream[node]
    return downstream


def stage_delays(net: RCNet, path: WirePath,
                 sink_loads: Optional[np.ndarray] = None,
                 downstream: Optional[np.ndarray] = None) -> np.ndarray:
    """Elmore stage delay of each stage along ``path``, in seconds.

    A stage is an edge plus its downstream node (Section II-B); its delay is
    the edge resistance times the capacitance downstream of the edge's far
    node.  Summing stage delays over a tree path recovers the path Elmore
    delay when the path is the whole route to the capacitances it shields.

    ``downstream`` optionally supplies a precomputed
    :func:`downstream_caps` vector — callers iterating many paths of one
    net (feature extraction) hoist the spanning-tree walk out of the loop.
    """
    # repro-shape: sink_loads=(s,):f64 -> (e,):f64
    if downstream is None:
        downstream = downstream_caps(net, sink_loads)
    delays = np.empty(len(path.edges), dtype=np.float64)
    for i, (edge_index, node) in enumerate(zip(path.edges, path.nodes[1:])):
        delays[i] = net.edges[edge_index].resistance * downstream[node]
    return delays


def path_elmore_delay(net: RCNet, path: WirePath,
                      sink_loads: Optional[np.ndarray] = None) -> float:
    """Sum of stage delays along a path — the "Elmore delay" path feature."""
    return float(stage_delays(net, path, sink_loads).sum())


def _topological_from_parents(net: RCNet, parent: Sequence[int]) -> List[int]:
    """Order nodes so every node appears after its spanning-tree parent."""
    children: Dict[int, List[int]] = {i: [] for i in range(net.num_nodes)}
    for node in range(net.num_nodes):
        p = parent[node]
        if p >= 0:
            children[p].append(node)
    order: List[int] = []
    stack = [net.source]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    return order
