"""Batched spectral solver engine: many small nets, one LAPACK call.

The pipeline's hot path is spectral analysis of *tiny* matrices — the
``simulator.matrix_size`` histogram puts nets at 6-28 nodes — which is
exactly the regime where per-net Python overhead (argument checking,
wrapper frames, allocation) dwarfs the O(n^3) work.  This module collects
nets, groups them by matrix size, and pushes dense ``(k, n, n)`` stacks
through the batched ``numpy.linalg`` gufuncs:

* :class:`BatchedEigenEngine` — stacked ``eigh`` over same-size groups,
  fanning results out into the content-addressed
  :class:`~repro.analysis.cache.SolveCache` so later single-net lookups
  still hit;
* :func:`golden_analyze_many` — the whole golden-label pipeline (moment
  horizon, eigendecomposition, bracket scan, lockstep crossing bisection)
  over a batch of nets;
* :func:`prime_awe` — bulk step-response computation filling the
  :class:`~repro.analysis.awe.AWEStepCache` before an STA or serving pass
  queries nets one at a time.

Bitwise contract
----------------
Every default path here is **bitwise identical** to its scalar
counterpart, which is what lets the batch layer slide under the existing
cache and test surface unnoticed:

* ``numpy.linalg.eigh``/``solve`` on a ``(k, n, n)`` stack loop LAPACK
  over the leading axis — slice ``i`` equals the single-matrix call, so a
  scalar solve is literally a batch of one (groups are *exact-size* by
  default; no padding, no mixed arithmetic);
* the crossing search shares :func:`repro.analysis.simulator.lockstep_crossings`
  and :func:`repro.analysis.awe._first_crossings_masked`, whose per-pair
  freeze masks make every answer independent of what else shares the
  batch.

The opt-in ``bucket="pow2"`` mode pads groups up to the next power of two
(fewer, fuller stacks; ``batch.padding_waste`` counts the dead slots) —
padding changes LAPACK's arithmetic, so it is *near*-identical only and
never used on golden-label paths.  See ``docs/PERFORMANCE.md``.

Units: resistances ohm, capacitances farad, all times seconds.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import get_metrics, get_tracer
from ..rcnet.graph import RCNet
from ..robustness.errors import EstimationError, InputError
from ..robustness.guards import require_finite, symmetric_condition
from .awe import (_first_crossings_masked, _wanted_nodes, fit_step_params,
                  get_awe_cache, step_key)
from .cache import SolveCache, get_solve_cache, solve_key
from .elmore import elmore_delays
from .mna import capacitance_vector, conductance_matrix, reduce_source
from .moments import stacked_moments
from .simulator import (_MAX_CONDITION, CrossingWork, EigenSolve,
                        GoldenTimer, SinkTiming, TransientSolution,
                        WireTimingResult, eigendecompose, lockstep_crossings)

__all__ = ["SolveRequest", "BatchedEigenEngine", "GoldenNetJob",
           "golden_analyze_many", "WirePrimeRequest", "prime_awe",
           "prime_solve_cache"]

# Batch-shape observability (documented in docs/OBSERVABILITY.md; the
# per-size latency histograms are named ``batch.bucket_seconds.<n>``).
_GROUPS = get_metrics().counter("batch.groups")
_OCCUPANCY = get_metrics().histogram("batch.occupancy")
_PAD_WASTE = get_metrics().counter("batch.padding_waste")
_SCALAR_FALLBACKS = get_metrics().counter("batch.scalar_fallbacks")
_NETS_SOLVED = get_metrics().counter("batch.nets_solved")
_AWE_PRIMED = get_metrics().counter("batch.awe_primed")

# Shared with the scalar simulator so both paths tell one coherent story
# (a net decomposed by the batch engine counts exactly once, either here
# or inside the scalar fallback's own eigendecompose call).
_DECOMPOSITIONS = get_metrics().counter("simulator.eigendecompositions")
_CROSSINGS = get_metrics().counter("simulator.crossing_searches")
_NETS_ANALYZED = get_metrics().counter("simulator.nets_analyzed")
_MATRIX_SIZE = get_metrics().histogram("simulator.matrix_size")

_MIN_CAP = 1e-20  # same junction-node floor as the scalar simulator


@dataclass(frozen=True)
class SolveRequest:
    """One net's eigendecomposition inputs for :class:`BatchedEigenEngine`.

    ``caps`` is the assembled capacitance vector (farads) *before* the
    minimum-cap floor — the same array :meth:`GoldenTimer.solve` hands to
    the scalar path, so the cache key and the floored operator match.
    """

    net: RCNet
    caps: np.ndarray
    drive_resistance: float  # ohms


class BatchedEigenEngine:
    """Size-grouped stacked eigendecomposition over many RC nets.

    A drop-in provider for the scalar path: results are
    :class:`~repro.analysis.simulator.EigenSolve` objects, cache lookups
    and fan-out go through the same content-addressed
    :class:`~repro.analysis.cache.SolveCache` (memory + persistent tier),
    and any slice the batch cannot handle bitwise-identically —
    ill-conditioned operators that need the cap-floor escalation ladder,
    or a LAPACK failure anywhere in the stack — falls back to the scalar
    :func:`~repro.analysis.simulator.eigendecompose`, counted by
    ``batch.scalar_fallbacks``.

    Parameters
    ----------
    bucket:
        ``"exact"`` (default) groups by exact matrix size — bitwise equal
        to the scalar path.  ``"pow2"`` pads every net up to the next
        power of two so more nets share a stack; the padding block is
        diagonal with a Gershgorin upper bound of the true operator, which
        keeps the padded eigenvalues out of the real spectrum, but LAPACK
        arithmetic on the padded matrix differs — results are close, not
        bitwise, and golden-label consumers must not use it.
    cache:
        Explicit :class:`SolveCache` (defaults to the process-wide one at
        each call, so ``configure_solve_cache`` keeps working).
    """

    def __init__(self, bucket: str = "exact",
                 cache: Optional[SolveCache] = None) -> None:
        if bucket not in ("exact", "pow2"):
            raise ValueError(f"unknown bucket mode {bucket!r} "
                             f"(one of: exact, pow2)")
        self.bucket = bucket
        self._cache = cache

    # ------------------------------------------------------------------
    def solve_many(self, requests: Sequence[SolveRequest]
                   ) -> List[Union[EigenSolve, EstimationError]]:
        """Eigendecompose every request; one result-or-typed-error each.

        Cache hits are answered first; the misses are grouped by (padded)
        size and solved through one stacked ``eigh`` per group, then
        fanned out into individual cache entries.  Duplicate keys inside
        one batch are computed once — the repeats resolve through the
        cache afterwards, exactly as repeated scalar calls would.
        """
        cache = self._cache if self._cache is not None else get_solve_cache()
        results: List[Optional[Union[EigenSolve, EstimationError]]] = \
            [None] * len(requests)
        pending: List[Tuple[int, SolveRequest, Optional[bytes]]] = []
        deferred: List[Tuple[int, SolveRequest, bytes]] = []
        batch_keys: Dict[bytes, bool] = {}
        for index, request in enumerate(requests):
            r_drv = request.drive_resistance
            if not (math.isfinite(r_drv) and r_drv > 0.0):
                results[index] = InputError(
                    "drive_resistance must be positive and finite",
                    net=request.net.name, stage="simulate")
                continue
            key: Optional[bytes] = None
            if cache.enabled:
                key = solve_key(request.net, request.caps, r_drv)
                if key in batch_keys:
                    # Same content earlier in this batch: solve once, let
                    # the duplicate resolve through the cache below (same
                    # hit/miss accounting as repeated scalar calls).
                    deferred.append((index, request, key))
                    continue
                batch_keys[key] = True
                solve = cache.get(key)
                if solve is not None:
                    results[index] = solve
                    continue
            pending.append((index, request, key))

        groups: Dict[int, List[Tuple[int, SolveRequest, Optional[bytes]]]] = {}
        for entry in pending:
            size = entry[1].net.num_nodes
            if self.bucket == "pow2":
                size = 1 << max(size - 1, 0).bit_length()
            groups.setdefault(size, []).append(entry)
        for size in sorted(groups):
            members = groups[size]
            _GROUPS.inc()
            _OCCUPANCY.observe(len(members))
            started = time.perf_counter()
            self._solve_group(size, members, results, cache)
            get_metrics().histogram(
                f"batch.bucket_seconds.{size}").observe(
                max(time.perf_counter() - started, 1e-12))

        for index, request, key in deferred:
            solve = cache.get(key)
            if solve is None:  # pragma: no cover - tiny/disabled caches
                solve_or_error = self._solve_scalar(request)
                _SCALAR_FALLBACKS.inc()
                results[index] = solve_or_error
            else:
                results[index] = solve
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _solve_group(self, size: int,
                     members: Sequence[Tuple[int, SolveRequest,
                                             Optional[bytes]]],
                     results: List[Optional[Union[EigenSolve,
                                                  EstimationError]]],
                     cache: SolveCache) -> None:
        """Stacked eigh over one same-(padded-)size group, with fan-out."""
        stack = np.zeros((len(members), size, size), dtype=np.float64)
        prepared: List[Optional[Tuple[int, SolveRequest, Optional[bytes],
                                      np.ndarray, np.ndarray]]] = []
        for slot, (index, request, key) in enumerate(members):
            net = request.net
            try:
                require_finite(request.caps, "capacitance vector",
                               net=net.name, stage="simulate")
                g = conductance_matrix(net)
            except EstimationError as exc:
                results[index] = exc
                prepared.append(None)
                continue
            g[net.source, net.source] += 1.0 / request.drive_resistance
            floored = np.maximum(request.caps, _MIN_CAP)
            inv_sqrt_c = 1.0 / np.sqrt(floored)
            m = (inv_sqrt_c[:, None] * g) * inv_sqrt_c[None, :]
            m = 0.5 * (m + m.T)  # enforce exact symmetry before eigh
            n = net.num_nodes
            stack[slot, :n, :n] = m
            if n < size:
                # Pad block: diagonal above the Gershgorin bound of the
                # real operator, so the artificial eigenvalues sort last
                # and the leading n rows/columns stay the net's own modes.
                bound = float(np.abs(m).sum(axis=1).max())
                pad = np.arange(n, size)
                stack[slot, pad, pad] = 2.0 * bound + 1.0
                _PAD_WASTE.inc(size - n)
            prepared.append((index, request, key, floored, inv_sqrt_c))

        solved = [entry for entry in prepared if entry is not None]
        if not solved:
            return
        keep = [slot for slot, entry in enumerate(prepared)
                if entry is not None]
        try:
            eigenvalues, vectors = np.linalg.eigh(stack[keep])
        except np.linalg.LinAlgError:
            # One hopeless slice poisons the whole stacked call; replay
            # every member through the scalar retry ladder instead.
            for index, request, key, _, _ in solved:
                _SCALAR_FALLBACKS.inc()
                outcome = self._solve_scalar(request)
                results[index] = outcome
                if key is not None and isinstance(outcome, EigenSolve):
                    cache.put(key, outcome)
            return
        for row, (index, request, key, floored, inv_sqrt_c) in \
                enumerate(solved):
            n = request.net.num_nodes
            w = eigenvalues[row, :n]
            if symmetric_condition(w) <= _MAX_CONDITION:
                solve = EigenSolve(floored, inv_sqrt_c, w.copy(),
                                   vectors[row, :n, :n].copy())
                _DECOMPOSITIONS.inc()
                _MATRIX_SIZE.observe(n)
                _NETS_SOLVED.inc()
                results[index] = solve
                if key is not None:
                    cache.put(key, solve)
                continue
            # Ill-conditioned at the base cap floor: the scalar path would
            # escalate the floor; replay it exactly (it does its own
            # decomposition counting).
            _SCALAR_FALLBACKS.inc()
            outcome = self._solve_scalar(request)
            results[index] = outcome
            if key is not None and isinstance(outcome, EigenSolve):
                cache.put(key, outcome)

    @staticmethod
    def _solve_scalar(request: SolveRequest
                      ) -> Union[EigenSolve, EstimationError]:
        """Scalar fallback: identical to the non-batched code path."""
        net = request.net
        try:
            g = conductance_matrix(net)
            g[net.source, net.source] += 1.0 / request.drive_resistance
            return eigendecompose(net, g, request.caps)
        except EstimationError as exc:
            return exc


# ----------------------------------------------------------------------
# Batched golden labeling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoldenNetJob:
    """One net's golden-timing query, as :meth:`GoldenTimer.analyze` takes it.

    ``timer`` carries the operating point (drive resistance, vdd,
    thresholds, SI mode); jobs in one batch may use different timers.
    ``elmore`` optionally supplies the precomputed per-node Elmore vector
    (``elmore_delays(net, sink_loads=sink_loads)``, seconds) used for the
    settling horizon — the feature pipeline already holds it, and reusing
    it skips one reduce-and-solve per net without changing a bit.
    """

    timer: GoldenTimer
    net: RCNet
    input_slew: float  # seconds
    sink_loads: Optional[np.ndarray] = None  # farads, aligned with sinks
    elmore: Optional[np.ndarray] = None  # seconds, per node


def golden_analyze_many(jobs: Sequence[GoldenNetJob],
                        engine: Optional[BatchedEigenEngine] = None
                        ) -> List[Union[WireTimingResult, Exception]]:
    """Golden wire timing for a batch of nets — bitwise equal to scalar.

    Runs the exact :meth:`GoldenTimer.analyze` pipeline with the per-net
    LAPACK calls hoisted into stacks: capacitance assembly and SI
    injection per net, one grouped ``eigh`` across the batch, per-net
    bracket scans, then a single :func:`lockstep_crossings` bisection over
    every (net, node, level) triple.  Each job yields either a
    :class:`WireTimingResult` or the same typed exception the scalar call
    would have raised (``EstimationError`` subclasses, or the raw
    ``numpy.linalg.LinAlgError`` that a singular Elmore system produces) —
    one bad net never poisons its batchmates.
    """
    engine = engine if engine is not None else BatchedEigenEngine()
    results: List[Optional[Union[WireTimingResult, Exception]]] = \
        [None] * len(jobs)
    requests: List[SolveRequest] = []
    prepared: List[Optional[Tuple[np.ndarray, Optional[np.ndarray],
                                  float, Optional[np.ndarray]]]] = []
    with get_tracer().span("simulate.batch", nets=len(jobs)):
        for index, job in enumerate(jobs):
            timer, net = job.timer, job.net
            _NETS_ANALYZED.inc()
            try:
                loads = None if job.sink_loads is None \
                    else np.asarray(job.sink_loads, dtype=np.float64)
                caps = capacitance_vector(net, miller_factor=None,
                                          sink_loads=loads)
                if not (math.isfinite(job.input_slew)
                        and job.input_slew > 0.0):
                    raise InputError(
                        "input_slew must be positive and finite",
                        net=net.name, stage="simulate")
                ramp_time = job.input_slew / (timer.slew_high
                                              - timer.slew_low)
                if not (math.isfinite(ramp_time) and ramp_time > 0.0):
                    raise InputError(
                        "ramp_time must be positive and finite",
                        net=net.name, stage="simulate")
                injection = None
                if timer.si_mode and net.couplings:
                    injection = np.zeros(net.num_nodes)
                    slope = timer.vdd / ramp_time
                    for coupling in net.couplings:
                        injection[coupling.victim] -= (
                            timer.si_strength * coupling.activity
                            * coupling.cap * slope)
            except EstimationError as exc:
                results[index] = exc
                prepared.append(None)
                continue
            prepared.append((caps, loads, ramp_time, injection))
            requests.append(SolveRequest(net, caps, timer.drive_resistance))

        solves = engine.solve_many(requests)
        crossing_work: List[CrossingWork] = []
        work_meta: List[Tuple[int, GoldenNetJob, np.ndarray]] = []
        cursor = 0
        for index, job in enumerate(jobs):
            prep = prepared[index]
            if prep is None:
                continue
            caps, loads, ramp_time, injection = prep
            solve = solves[cursor]
            cursor += 1
            if isinstance(solve, Exception):
                results[index] = solve
                continue
            timer, net = job.timer, job.net
            try:
                solution = TransientSolution(
                    net, timer.drive_resistance, timer.vdd, ramp_time,
                    caps, injection=injection, solve=solve)
                # Same settling horizon as GoldenTimer._horizon.
                total_cap = float(caps.sum())
                elmore = job.elmore if job.elmore is not None \
                    else elmore_delays(net, sink_loads=loads)
                tau = timer.drive_resistance * total_cap \
                    + float(elmore.max())
                horizon = solution.ramp_time + 40.0 * max(tau, 1e-15)

                v_mid = timer.delay_threshold * timer.vdd
                v_lo = timer.slew_low * timer.vdd
                v_hi = timer.slew_high * timer.vdd
                probes = [net.source, *net.sinks]
                nodes = np.asarray(
                    [node for node in probes for _ in range(3)],
                    dtype=np.intp)
                levels = np.asarray([v_mid, v_lo, v_hi] * len(probes))
                _CROSSINGS.inc(int(nodes.size))
                lo, hi = solution.bracket_crossings(nodes, levels, horizon)
            except (EstimationError, np.linalg.LinAlgError) as exc:
                results[index] = exc
                continue
            crossing_work.append(CrossingWork(solution, nodes, levels,
                                              lo, hi))
            work_meta.append((index, job, nodes))

        all_times = lockstep_crossings(crossing_work)
        for (index, job, nodes), times in zip(work_meta, all_times):
            net = job.net
            t_src_mid, t_src_lo, t_src_hi = times[0], times[1], times[2]
            result = WireTimingResult(
                net.name, source_slew=float(t_src_hi - t_src_lo))
            for i, sink in enumerate(net.sinks):
                t_mid, t_lo, t_hi = times[3 + 3 * i: 6 + 3 * i]
                result.sink_timings.append(SinkTiming(
                    sink=sink, delay=float(t_mid - t_src_mid),
                    slew=float(t_hi - t_lo)))
            try:
                require_finite(result.delays(), "golden delays",
                               net=net.name, stage="simulate")
                require_finite(result.slews(), "golden slews",
                               net=net.name, stage="simulate")
            except EstimationError as exc:
                results[index] = exc
                continue
            results[index] = result
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Cache prime passes (STA path levels, serving batch windows)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WirePrimeRequest:
    """One net a wire-timing pass is about to query.

    Collected by STA (all nets on the paths under analysis) and by the
    serving engine (all queries of a batch window), then handed to a
    model's ``prime_nets`` hook so the batch layer can fill the relevant
    cache in bulk before the per-net queries start.
    """

    net: RCNet
    sink_loads: np.ndarray  # farads, aligned with net.sinks
    drive_resistance: float  # ohms


def prime_awe(requests: Sequence[WirePrimeRequest], slew_low: float = 0.1,
              slew_high: float = 0.9) -> int:
    """Fill the AWE step cache for every request's sink nodes, batched.

    Computes exactly what ``awe2_timing(net, sink_loads, nodes=net.sinks)``
    would cache — same moment recursion (size-grouped stacks), same Padé
    fits, same per-element crossing bisection — so a later scalar lookup
    hits with bitwise-identical arrays.  Nets whose two-pole response
    never settles are skipped (the scalar query then recomputes and raises
    the same tier failure it always did).  Returns the number of nets
    primed; never raises for an individual bad net.
    """
    cache = get_awe_cache()
    if not cache.enabled or not requests:
        return 0
    todo: List[Tuple[bytes, RCNet, np.ndarray, List[int]]] = []
    seen: Dict[bytes, bool] = {}
    for request in requests:
        net = request.net
        try:
            loads = np.asarray(request.sink_loads, dtype=np.float64)
            wanted = _wanted_nodes(net, net.sinks)
            key = step_key(net, loads, slew_low, slew_high, wanted)
        except EstimationError:
            continue
        if key in seen or cache.contains(key):
            continue
        seen[key] = True
        todo.append((key, net, loads, wanted))
    if not todo:
        return 0

    # Stage 1: moment matrices through size-grouped stacked solves.
    groups: Dict[int, List[int]] = {}
    systems: List[Optional[object]] = []
    for position, (key, net, loads, wanted) in enumerate(todo):
        try:
            system = reduce_source(net, None, loads)
        except EstimationError:
            systems.append(None)
            continue
        systems.append(system)
        groups.setdefault(len(system.nodes), []).append(position)
    m_full: List[Optional[np.ndarray]] = [None] * len(todo)
    for size in sorted(groups):
        positions = groups[size]
        _GROUPS.inc()
        _OCCUPANCY.observe(len(positions))
        started = time.perf_counter()
        g_stack = np.stack([systems[p].g for p in positions])
        caps_stack = np.stack([systems[p].caps for p in positions])
        try:
            stacked = stacked_moments(g_stack, caps_stack, order=3)
        except np.linalg.LinAlgError:
            # A singular system anywhere in the stack: drop the whole
            # group; scalar queries will report the failure per net.
            continue
        finally:
            get_metrics().histogram(
                f"batch.bucket_seconds.{size}").observe(
                max(time.perf_counter() - started, 1e-12))
        for row, position in enumerate(positions):
            net = todo[position][1]
            full = np.zeros((3, net.num_nodes), dtype=np.float64)
            full[:, systems[position].nodes] = stacked[row]
            m_full[position] = full

    # Stage 2: Padé fits per net, then one crossing bisection across all.
    fits: List[Tuple[int, np.ndarray, np.ndarray, List[int], int]] = []
    params_flat: List[Tuple[float, ...]] = []
    for position, (key, net, loads, wanted) in enumerate(todo):
        m = m_full[position]
        if m is None:
            continue
        delays = np.zeros(net.num_nodes)
        slews = np.zeros(net.num_nodes)
        fitted, params = fit_step_params(m, wanted, slew_low, slew_high,
                                         delays, slews)
        fits.append((position, delays, slews, fitted, len(params_flat)))
        params_flat.extend(params)
    if params_flat:
        p1, p2, r1, r2, guesses = (np.array(column)
                                   for column in zip(*params_flat))
        times, ok = _first_crossings_masked(
            p1, p2, r1, r2, guesses,
            np.array([0.5, slew_low, slew_high]))
    primed = 0
    for position, delays, slews, fitted, offset in fits:
        key = todo[position][0]
        if fitted:
            rows = slice(offset, offset + len(fitted))
            if not np.all(ok[rows]):
                continue  # non-settling fit: leave for the scalar path
            delays[fitted] = times[rows, 0]
            slews[fitted] = times[rows, 2] - times[rows, 1]
        cache.put(key, delays, slews)
        primed += 1
    _AWE_PRIMED.inc(primed)
    return primed


def prime_solve_cache(requests: Sequence[WirePrimeRequest],
                      engine: Optional[BatchedEigenEngine] = None) -> int:
    """Fill the golden :class:`SolveCache` for every request, batched.

    The golden-tier analogue of :func:`prime_awe`: one grouped ``eigh``
    replaces the per-net decompositions a later scalar
    :meth:`GoldenTimer.solve` would run.  Returns the number of nets whose
    decomposition is now cached; bad nets are skipped, never raised.
    """
    cache = get_solve_cache()
    if not cache.enabled or not requests:
        return 0
    engine = engine if engine is not None else BatchedEigenEngine()
    solve_requests = []
    for request in requests:
        try:
            caps = capacitance_vector(
                request.net, miller_factor=None,
                sink_loads=np.asarray(request.sink_loads,
                                      dtype=np.float64))
        except EstimationError:
            continue
        solve_requests.append(SolveRequest(request.net, caps,
                                           request.drive_resistance))
    outcomes = engine.solve_many(solve_requests)
    return sum(1 for outcome in outcomes
               if isinstance(outcome, EigenSolve))
