"""D2M two-moment delay metric (Alpert, Devgan & Kashyap, ISPD 2000).

D2M sharpens Elmore's notorious pessimism on resistively-shielded nodes by
mixing the first two moments:

    D2M = ln(2) * m1^2 / sqrt(m2)

where ``m1``/``m2`` are the (unsigned) first and second moments of the node
transfer function.  It is one of the raw path features of Table I.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rcnet.graph import RCNet
from .moments import cached_moments

__all__ = ["d2m_from_moments", "d2m_delays", "d2m_delay_to_sink"]

_LN2 = float(np.log(2.0))


def d2m_from_moments(m: np.ndarray) -> np.ndarray:
    """D2M metric from a precomputed (signed) moment matrix.

    ``m`` is the ``(order >= 2, num_nodes)`` output of
    :func:`~repro.analysis.moments.moments`; callers that already hold the
    moments (unified feature extraction, the batched engine) skip the
    redundant solves that :func:`d2m_delays` would repeat.
    """
    # repro-shape: -> (n,):f64
    m1 = -m[0]          # Elmore delay (positive).
    m2 = m[1]           # Second moment (positive for RC nets).
    out = np.zeros_like(m1)
    valid = m2 > 0.0
    out[valid] = _LN2 * (m1[valid] ** 2) / np.sqrt(m2[valid])
    out[~valid] = _LN2 * m1[~valid]
    return out


def d2m_delays(net: RCNet, miller_factor: Optional[float] = None,
               sink_loads: Optional[np.ndarray] = None) -> np.ndarray:
    """D2M delay from the source to every node, in seconds.

    Where the moment data is degenerate (``m2 <= 0``, which can only happen
    through numerical noise on near-zero-delay nodes) the metric falls back
    to the Elmore delay.
    """
    # repro-shape: sink_loads=(s,):f64 -> (n,):f64
    m = cached_moments(net, order=2, miller_factor=miller_factor,
                       sink_loads=sink_loads)
    return d2m_from_moments(m)


def d2m_delay_to_sink(net: RCNet, sink: int,
                      miller_factor: Optional[float] = None,
                      sink_loads: Optional[np.ndarray] = None) -> float:
    """D2M delay for one sink, in seconds."""
    return float(d2m_delays(net, miller_factor, sink_loads)[sink])
