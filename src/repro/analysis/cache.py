"""Content-addressed memo cache for the golden simulator's eigensolves.

The eigendecomposition in :class:`~repro.analysis.simulator.TransientSolution`
is the pipeline's single hottest operation (O(N^3) per net), and it is
recomputed for *identical inputs* constantly: STA re-analyzes the same net
once per timing path that crosses it (and twice per stage when a separate
slew model runs), ``estimator.throughput`` loops the same test nets, and
generated designs share many content-identical small nets.

The decomposition depends only on the tuple (topology, R, C, driver): the
net's edge list with resistances, the assembled capacitance vector (node
caps + sink loads), the source index, and the driver's Thevenin resistance.
:func:`solve_key` hashes exactly those bytes (BLAKE2b-128 over the raw
float64 buffers — content, not object identity), and :class:`SolveCache` is
a size-bounded LRU from that key to the reusable
:class:`~repro.analysis.simulator.EigenSolve` object.

Hit/miss/eviction counts feed the ``simulator.cache_*`` metrics (see
docs/OBSERVABILITY.md).  Every worker process of a parallel run owns its
own cache, so no cross-*process* locking exists or is needed — but within
one process the serve worker threads all query the shared global cache, so
the LRU map itself is guarded by a (watched) lock.  Lock discipline: only
the ``OrderedDict`` operations run under the lock; eigensolves, metric
increments and disk I/O happen outside it, so a slow ``.npz`` read never
stalls an unrelated hit.  Cached solves must be treated as immutable —
they are shared between all timing queries that hash to the same key.
"""

from __future__ import annotations

import hashlib
import os
import struct
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

from ..obs import get_metrics, named_lock
from ..rcnet.graph import RCNet

__all__ = ["solve_key", "SolveCache", "get_solve_cache",
           "configure_solve_cache", "CACHE_SIZE_ENV", "CACHE_DIR_ENV",
           "DEFAULT_CACHE_SIZE", "PERSIST_SCHEMA"]

#: Environment variable overriding the default cache capacity (entries);
#: ``0`` disables caching entirely.
CACHE_SIZE_ENV = "REPRO_SOLVE_CACHE"

#: Environment variable naming a directory for the optional disk tier;
#: unset (the default) keeps the cache memory-only.
CACHE_DIR_ENV = "REPRO_SOLVE_CACHE_DIR"

#: Default LRU capacity.  Solves are O(N^2) floats each; at the pipeline's
#: typical 10-60 node nets this bounds the cache well under ~100 MB.
DEFAULT_CACHE_SIZE = 512

#: Version tag written into every persisted solve file; bump whenever the
#: :class:`~repro.analysis.simulator.EigenSolve` layout (or the meaning of
#: :func:`solve_key`) changes, so stale files self-invalidate on load —
#: the same idiom as the lint summary cache's ``ANALYSIS_VERSION``.
PERSIST_SCHEMA = "repro-solve-cache/1"

_HITS = get_metrics().counter("simulator.cache_hits")
_MISSES = get_metrics().counter("simulator.cache_misses")
_EVICTIONS = get_metrics().counter("simulator.cache_evictions")
_PERSIST_HITS = get_metrics().counter("simulator.cache_persist_hits")
_PERSIST_MISSES = get_metrics().counter("simulator.cache_persist_misses")


def solve_key(net: RCNet, caps: np.ndarray, drive_resistance: float) -> bytes:
    """Content hash of one eigensolve's inputs: (topology, R, C, driver).

    Two nets with equal structure and parasitics map to the same key even
    when they are distinct objects with different names — name is identity,
    not content, and generated designs repeat small net shapes often.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(struct.pack("<qqd", net.num_nodes, net.source,
                              float(drive_resistance)))
    if net.edges:
        topology = np.array([(e.u, e.v) for e in net.edges], dtype=np.int64)
        resistances = np.array([e.resistance for e in net.edges],
                               dtype=np.float64)
        digest.update(topology.tobytes())
        digest.update(resistances.tobytes())
    digest.update(np.ascontiguousarray(caps, dtype=np.float64).tobytes())
    return digest.digest()


class SolveCache:
    """Size-bounded LRU cache from :func:`solve_key` to an eigensolve.

    With ``persist_dir`` set, the LRU gains a disk tier: every insert is
    also written as ``<key-hex>.npz`` under that directory, and a memory
    miss falls back to loading the file before recomputing — so a
    restarted server warm-starts from its predecessor's solves instead of
    cold-solving.  Files carry :data:`PERSIST_SCHEMA`; any unreadable,
    corrupted or version-mismatched file is treated as a miss (never an
    error), and a read-only directory degrades to memory-only writes.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE,
                 persist_dir: Optional[str] = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        #: Immutable after __init__ (only ever cleared to None here);
        #: worker threads read it freely without the lock.
        self.persist_dir = persist_dir
        self._lock = named_lock("SolveCache._lock")
        self._entries: "OrderedDict[bytes, Any]" = OrderedDict()  # repro-guarded-by: _lock
        if persist_dir is not None:
            try:
                os.makedirs(persist_dir, exist_ok=True)
            except OSError:
                self.persist_dir = None  # unusable directory: memory-only

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: bytes) -> Optional[Any]:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            _MISSES.inc()
            entry = self._disk_get(key)
            if entry is not None:
                # Promote the warm-started solve into the memory LRU so
                # subsequent queries skip the file system entirely.
                self.put(key, entry, _persist=False)
            return entry
        _HITS.inc()
        return entry

    def put(self, key: bytes, solve: Any, _persist: bool = True) -> None:
        """Insert ``solve``, evicting least-recently-used entries if full."""
        if not self.enabled:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = solve
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            _EVICTIONS.inc(evicted)
        if _persist:
            self._disk_put(key, solve)

    def invalidate(self, key: bytes) -> bool:
        """Drop one entry from the memory LRU and the disk tier.

        Used by ECO edits: when a net's RC topology is rewritten, the
        eigensolve primed under the old topology's content hash can never
        be queried again, so dropping it frees space immediately instead
        of waiting for LRU eviction.  Returns True when either tier held
        the key.
        """
        with self._lock:
            dropped = self._entries.pop(key, None) is not None
        if self.persist_dir is not None:
            try:
                os.unlink(self._disk_path(key))
                dropped = True
            except OSError:
                pass
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Current counter values plus occupancy (JSON-safe)."""
        with self._lock:
            entries = len(self._entries)
        return {"entries": entries, "maxsize": self.maxsize,
                "hits": _HITS.snapshot(), "misses": _MISSES.snapshot(),
                "evictions": _EVICTIONS.snapshot(),
                "persist_hits": _PERSIST_HITS.snapshot(),
                "persist_misses": _PERSIST_MISSES.snapshot()}

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, key: bytes) -> str:
        assert self.persist_dir is not None
        return os.path.join(self.persist_dir, key.hex() + ".npz")

    def _disk_get(self, key: bytes) -> Optional[Any]:
        if self.persist_dir is None:
            return None
        from .simulator import EigenSolve  # deferred: simulator imports us

        try:
            with np.load(self._disk_path(key), allow_pickle=False) as data:
                if str(data["schema"]) != PERSIST_SCHEMA:
                    _PERSIST_MISSES.inc()
                    return None
                solve = EigenSolve(
                    caps=np.asarray(data["caps"], dtype=np.float64),
                    inv_sqrt_c=np.asarray(data["inv_sqrt_c"],
                                          dtype=np.float64),
                    eigenvalues=np.asarray(data["eigenvalues"],
                                           dtype=np.float64),
                    q=np.asarray(data["q"], dtype=np.float64))
        except (OSError, KeyError, ValueError, EOFError):
            # Missing file is the common case; a corrupted or truncated
            # one (crash mid-write by an older numpy, disk fault) must
            # degrade to a recompute, never break the query.
            _PERSIST_MISSES.inc()
            return None
        _PERSIST_HITS.inc()
        return solve

    def _disk_put(self, key: bytes, solve: Any) -> None:
        if self.persist_dir is None:
            return
        path = self._disk_path(key)
        if os.path.exists(path):
            return
        tmp = path + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, schema=np.str_(PERSIST_SCHEMA),
                         caps=solve.caps, inv_sqrt_c=solve.inv_sqrt_c,
                         eigenvalues=solve.eigenvalues, q=solve.q)
            os.replace(tmp, path)  # atomic: readers never see a torn file
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _default_size() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None:
        return DEFAULT_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_CACHE_SIZE
    return max(0, size)


def _default_persist_dir() -> Optional[str]:
    raw = os.environ.get(CACHE_DIR_ENV)
    return raw if raw else None


_GLOBAL_CACHE = SolveCache(_default_size(), persist_dir=_default_persist_dir())


def get_solve_cache() -> SolveCache:
    """The process-wide solve cache used by :class:`GoldenTimer`."""
    return _GLOBAL_CACHE


def configure_solve_cache(maxsize: int,
                          persist_dir: Optional[str] = None) -> SolveCache:
    """Replace the global cache with a fresh one of ``maxsize`` entries.

    ``0`` disables memoization (every solve recomputes).  ``persist_dir``
    adds the disk tier (see :class:`SolveCache`).  Returns the new cache
    so tests can assert on it directly.
    """
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = SolveCache(maxsize, persist_dir=persist_dir)
    return _GLOBAL_CACHE
