"""GNNTrans reproduction: fast and accurate wire timing estimation.

Reproduction of Ye et al., "Fast and Accurate Wire Timing Estimation Based
on Graph Learning" (DATE 2023), built entirely from scratch on numpy/scipy:
RC-net substrate with SPEF I/O, an exact golden transient timer standing in
for PrimeTime SI, a synthetic cell library and design generator, Table I
feature extraction, the GNNTrans model with a pure-numpy autograd engine,
five baselines, and benches regenerating every table and figure.

Quick start::

    from repro.data import generate_dataset
    from repro.core import WireTimingEstimator

    dataset = generate_dataset(scale=2000, nets_per_design=30)
    estimator = WireTimingEstimator()
    estimator.fit(dataset.train)
    print(estimator.evaluate(dataset.test))
"""

__version__ = "1.0.0"

__all__ = [
    "analysis", "baselines", "bench", "core", "data", "design", "features",
    "liberty", "nn", "obs", "rcnet", "robustness", "__version__",
]
