"""Request coalescing: many concurrent queries, one model pass.

The estimator's cost is dominated by per-call fixed overhead at serving
batch sizes (queue hops, chain dispatch, feature assembly), so the service
batches: a collector pulls admitted tickets and groups them into a
:class:`Batch` bounded by *size* (``max_batch_nets``) and *time*
(``max_wait_s`` — the µs-scale window a first request waits for company).
A batch never waits past the earliest member deadline: the window is
clipped so batching can delay a request but never kill it.

The clock and the admission source are injectable; the unit tests drive
the collector with a virtual clock and a scripted queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..obs import get_metrics
from .admission import AdmissionController, Ticket

_BATCHES = get_metrics().counter("serve.batches")
_BATCH_NETS = get_metrics().histogram("serve.batch_nets")
_BATCH_REQUESTS = get_metrics().histogram("serve.batch_requests")


@dataclass(frozen=True)
class BatchingConfig:
    """Size/time window of the coalescer."""

    max_batch_nets: int = 64       # net queries per forward pass
    max_batch_requests: int = 32   # tickets per batch (bounds fan-in)
    max_wait_s: float = 0.002      # 2000 µs window after the first ticket

    def __post_init__(self) -> None:
        if self.max_batch_nets < 1 or self.max_batch_requests < 1:
            raise ValueError("batch limits must be >= 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class Batch:
    """One coalesced unit of work: tickets sharing a forward pass."""

    tickets: List[Ticket] = field(default_factory=list)
    formed_at: float = 0.0

    @property
    def num_nets(self) -> int:
        return sum(t.request.num_nets for t in self.tickets)

    def __len__(self) -> int:
        return len(self.tickets)


class BatchCollector:
    """Forms batches from the admission queue under the configured window."""

    def __init__(self, admission: AdmissionController,
                 config: BatchingConfig = BatchingConfig(),
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.admission = admission
        self.config = config
        self.clock = clock

    def collect(self, poll_s: float = 0.05) -> Optional[Batch]:
        """Block for the next batch; None when draining and drained.

        The first ticket opens the window; more tickets join until the
        batch is full, the window closes, or waiting longer would push the
        earliest member past its deadline.
        """
        first = self.admission.pop(timeout=poll_s)
        if first is None:
            return None
        tickets = [first]
        nets = first.request.num_nets
        window_end = self.clock() + self.config.max_wait_s
        # Never let the window eat a member's whole remaining budget: cap
        # the wait at half the tightest deadline still on the table.
        remaining = first.remaining(self.clock())
        if remaining is not None:
            window_end = min(window_end, self.clock() + remaining / 2.0)
        while (len(tickets) < self.config.max_batch_requests
               and nets < self.config.max_batch_nets):
            now = self.clock()
            if now >= window_end:
                break
            ticket = self.admission.pop(timeout=window_end - now)
            if ticket is None:
                break
            tickets.append(ticket)
            nets += ticket.request.num_nets
            remaining = ticket.remaining(self.clock())
            if remaining is not None:
                window_end = min(window_end,
                                 self.clock() + remaining / 2.0)
        batch = Batch(tickets, formed_at=self.clock())
        _BATCHES.inc()
        _BATCH_NETS.observe(batch.num_nets)
        _BATCH_REQUESTS.observe(len(batch))
        return batch


__all__ = ["Batch", "BatchCollector", "BatchingConfig"]
