"""Fault-tolerant timing-estimation service.

A long-lived serving layer over the robustness stack: a versioned JSON
protocol (:mod:`~repro.serve.protocol`), admission control with bounded
queueing, deadlines and load shedding (:mod:`~repro.serve.admission`),
request coalescing (:mod:`~repro.serve.batching`), shed-aware tier
ladders (:mod:`~repro.serve.engine`), lifecycle probes + drain + worker
supervision (:mod:`~repro.serve.lifecycle`), the HTTP front
(:mod:`~repro.serve.server`), a retrying/hedging client
(:mod:`~repro.serve.client`) and the ``repro bench --serve`` load
generator (:mod:`~repro.serve.loadgen`).

The service contract is **total termination**: every request admitted or
rejected ends in exactly one terminal outcome — a prediction (possibly
degraded, with tier provenance) or a typed taxonomy error.  The chaos
suite under ``tests/serve/`` enforces this invariant against a live
server under injected faults; ``docs/SERVING.md`` is the operator guide.

Submodules are loaded lazily (PEP 562) so importing :mod:`repro` stays
light and the protocol layer stays usable without the model stack.
"""

_LAZY = {
    "AdmissionConfig": "admission",
    "AdmissionController": "admission",
    "SHED_ANALYTIC": "admission",
    "SHED_FULL": "admission",
    "SHED_LAST_RESORT": "admission",
    "Ticket": "admission",
    "Batch": "batching",
    "BatchCollector": "batching",
    "BatchingConfig": "batching",
    "RetryPolicy": "client",
    "ServeClientError": "client",
    "TimingClient": "client",
    "EstimationEngine": "engine",
    "Lifecycle": "lifecycle",
    "WorkerSupervisor": "lifecycle",
    "install_sigterm_drain": "lifecycle",
    "DEFAULT_SERVE_WORKLOAD": "loadgen",
    "QUICK_SERVE_WORKLOAD": "loadgen",
    "THROUGHPUT_SERVE_WORKLOAD": "loadgen",
    "SINGLE_SHOT_BASELINE_NETS_PER_S": "loadgen",
    "ServeWorkload": "loadgen",
    "format_serve_summary": "loadgen",
    "run_serve_bench": "loadgen",
    "PROTOCOL_SCHEMA": "protocol",
    "ServeRequest": "protocol",
    "ServeResponse": "protocol",
    "TimingQuery": "protocol",
    "decode_response": "protocol",
    "error_response": "protocol",
    "parse_request": "protocol",
    "ServeConfig": "server",
    "ServerHandle": "server",
    "TimingHTTPServer": "server",
    "TimingService": "server",
    "run_server": "server",
    "start_server": "server",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
