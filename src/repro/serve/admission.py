"""Admission control: bounded queue, deadlines, load shedding.

Three robustness mechanisms live here, all explicit rather than emergent:

* **Backpressure** — the request queue is bounded; a full queue rejects
  with a typed :class:`~repro.robustness.errors.OverloadError` carrying a
  ``retry_after`` hint sized from the current queue drain rate.  Clients
  see an honest "come back later", never an unbounded latency tail.
* **Deadline propagation** — every admitted :class:`Ticket` carries an
  absolute monotonic deadline.  Work past the budget is cancelled at the
  next cooperative checkpoint (dequeue, per-net boundary) and answered
  with a typed :class:`~repro.robustness.errors.DeadlineError`; the
  request still *terminates*, it never silently disappears.
* **Load shedding** — queue depth maps to a shed level that routes work
  to cheaper :class:`~repro.robustness.fallback.FallbackChain` tiers
  (full ladder -> analytic-only -> last-resort), and the existing
  :class:`~repro.robustness.fallback._CircuitBreaker` forces shedding
  after consecutive full-ladder failures independent of queue depth.

The clock is injectable so deadline and shedding behavior is testable
without real waiting.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ..obs import get_metrics, named_lock
from ..robustness.errors import DeadlineError, OverloadError
from ..robustness.fallback import _CircuitBreaker
from .protocol import (QueryResult, ServeRequest, ServeResponse,
                       error_document, error_response)

_ADMITTED = get_metrics().counter("serve.admitted")
_REJECTED = get_metrics().counter("serve.rejected_overload")
_EXPIRED = get_metrics().counter("serve.deadline_expired")
_SHED = get_metrics().counter("serve.shed_requests")
_DEPTH = get_metrics().gauge("serve.queue_depth")
_QUEUE_WAIT = get_metrics().histogram("serve.queue_wait_s")

#: Shed levels, from healthy to drowning.  The engine maps each level to a
#: tier ladder; see :class:`~repro.serve.engine.EstimationEngine`.
SHED_FULL = 0        # full ladder (learned/AWE first)
SHED_ANALYTIC = 1    # cheap analytic tiers only (Elmore -> lumped-RC)
SHED_LAST_RESORT = 2  # lumped-RC only: bounded answer at any load


@dataclass
class Ticket:
    """One admitted request travelling through the service.

    Created by :meth:`AdmissionController.submit`, completed exactly once
    by a worker (or by the expiry sweep) via :meth:`finish`.
    """

    request: ServeRequest
    enqueued_at: float
    deadline_at: Optional[float]  # absolute monotonic seconds, or None
    done: threading.Event = field(default_factory=threading.Event)
    response: Optional[ServeResponse] = None
    dequeued_at: Optional[float] = None

    def remaining(self, now: float) -> Optional[float]:
        """Seconds of budget left (None = no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at

    def finish(self, response: ServeResponse) -> bool:
        """Attach the terminal response; False if already finished.

        First writer wins — a late worker result after a deadline response
        (or a hedged duplicate) is dropped, so the caller observes exactly
        one terminal outcome per request.
        """
        if self.done.is_set():
            return False
        response.request_id = self.request.request_id
        self.response = response
        self.done.set()
        return True


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission layer."""

    max_queue: int = 256          # tickets; beyond this, reject-with-retry
    shed_depth: int = 64          # queue depth entering SHED_ANALYTIC
    shed_hard_depth: int = 192    # queue depth entering SHED_LAST_RESORT
    default_deadline_s: Optional[float] = 2.0   # when the request names none
    max_deadline_s: float = 30.0  # client budgets are clamped to this
    breaker_threshold: int = 5    # full-ladder failures that force shedding
    breaker_cooldown: int = 50    # dequeues an open breaker sheds for

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if not 0 < self.shed_depth <= self.shed_hard_depth <= self.max_queue:
            raise ValueError("need 0 < shed_depth <= shed_hard_depth "
                             "<= max_queue")


class AdmissionController:
    """Bounded FIFO of :class:`Ticket` with shedding and expiry sweeps."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig(),
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self.clock = clock
        self._queue: Deque[Ticket] = deque()  # repro-guarded-by: _lock
        self._lock = named_lock("AdmissionController._lock")
        self._not_empty = threading.Condition(self._lock)
        self._accepting = True  # repro-guarded-by: _lock
        # Consecutive full-ladder serve failures open this breaker, which
        # forces SHED_ANALYTIC for `breaker_cooldown` dequeues even when
        # the queue itself looks healthy (e.g. a poisoned learned model
        # making every request slow rather than the queue deep).
        self._breaker = _CircuitBreaker(
            config.breaker_threshold,
            config.breaker_cooldown)  # repro-guarded-by: _lock
        #: Trailing per-request service-time estimate feeding retry_after.
        self._service_estimate_s = 0.005  # repro-guarded-by: _lock

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> Ticket:
        """Admit a request or raise a typed rejection.

        Raises :class:`OverloadError` when the queue is full or the
        service stopped accepting (drain), so the front can answer with
        an honest backpressure signal.
        """
        now = self.clock()
        deadline: Optional[float] = None
        budget = request.deadline_ms
        if budget is not None:
            deadline = now + min(budget / 1e3, self.config.max_deadline_s)
        elif self.config.default_deadline_s is not None:
            deadline = now + self.config.default_deadline_s
        ticket = Ticket(request, enqueued_at=now, deadline_at=deadline)
        with self._lock:
            if not self._accepting:
                _REJECTED.inc()
                raise OverloadError(
                    "service is draining and admits no new requests",
                    retry_after_s=1.0)
            if len(self._queue) >= self.config.max_queue:
                _REJECTED.inc()
                retry = max(0.005, len(self._queue)
                            * self._service_estimate_s / 2.0)
                raise OverloadError(
                    f"request queue is full ({len(self._queue)} deep)",
                    retry_after_s=min(retry, 5.0))
            self._queue.append(ticket)
            _ADMITTED.inc()
            _DEPTH.set(len(self._queue))
            self._not_empty.notify()
        return ticket

    # ------------------------------------------------------------------
    # Dequeue (batcher side)
    # ------------------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[Ticket]:
        """Next live ticket, or None on timeout / drain-empty.

        Tickets whose deadline already passed while queued are answered
        with a typed :class:`DeadlineError` here (``stage="admission"``)
        and skipped — they terminate without wasting model time.
        """
        end = None if timeout is None else self.clock() + timeout
        with self._lock:
            while True:
                while self._queue:
                    ticket = self._queue.popleft()
                    _DEPTH.set(len(self._queue))
                    # The injected clock is non-blocking by contract
                    # (time.monotonic or a test fake), so calling it
                    # while holding the lock is deliberate.
                    now = self.clock()  # repro-lint: disable=LOCK002
                    if ticket.expired(now):
                        self._expire(ticket, now)
                        continue
                    ticket.dequeued_at = now
                    _QUEUE_WAIT.observe(max(now - ticket.enqueued_at, 0.0))
                    return ticket
                if not self._accepting:
                    return None
                remaining = (None if end is None else
                             end - self.clock())  # repro-lint: disable=LOCK002
                if remaining is not None and remaining <= 0.0:
                    return None
                self._not_empty.wait(remaining)

    def _expire(self, ticket: Ticket, now: float) -> None:
        _EXPIRED.inc()
        budget = ticket.request.deadline_ms
        exc = DeadlineError(
            f"deadline expired after "
            f"{(now - ticket.enqueued_at) * 1e3:.1f} ms in queue",
            budget_s=None if budget is None else budget / 1e3,
            elapsed_s=now - ticket.enqueued_at, stage="admission")
        ticket.finish(error_response(exc))

    def expire_queued(self) -> int:
        """Sweep the queue, answering every expired ticket; returns count.

        Called periodically by the lifecycle thread so queued requests
        terminate on time even when no worker is popping (e.g. all
        workers wedged on a slow tier).
        """
        now = self.clock()
        expired: List[Ticket] = []
        with self._lock:
            live: Deque[Ticket] = deque()
            for ticket in self._queue:
                (expired if ticket.expired(now) else live).append(ticket)
            self._queue = live
            _DEPTH.set(len(self._queue))
        for ticket in expired:
            self._expire(ticket, now)
        return len(expired)

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def shed_level(self) -> int:
        """Current shed level from queue depth and the circuit breaker."""
        with self._lock:
            depth = len(self._queue)
            breaker_open = not self._breaker.allow()
        if depth >= self.config.shed_hard_depth:
            level = SHED_LAST_RESORT
        elif depth >= self.config.shed_depth or breaker_open:
            level = SHED_ANALYTIC
        else:
            level = SHED_FULL
        if level != SHED_FULL:
            _SHED.inc()
        return level

    def record_serve(self, ok: bool, seconds: float) -> None:
        """Feedback from the engine: full-ladder health + drain rate."""
        with self._lock:
            if ok:
                self._breaker.record_success()
            else:
                self._breaker.record_failure()
            # Exponential moving average; only used to size retry_after.
            self._service_estimate_s += 0.2 * (seconds
                                               - self._service_estimate_s)

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def stop_accepting(self) -> None:
        """Drain mode: reject new submits, let pops run the queue dry."""
        with self._lock:
            self._accepting = False
            self._not_empty.notify_all()

    def resume_accepting(self) -> None:
        with self._lock:
            self._accepting = True

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe health view (served by the ``/healthz`` endpoint)."""
        with self._lock:
            return {"depth": len(self._queue),
                    "max_queue": self.config.max_queue,
                    "accepting": self._accepting,
                    "breaker_open": self._breaker.open,
                    "service_estimate_ms": self._service_estimate_s * 1e3}


__all__ = ["AdmissionConfig", "AdmissionController", "Ticket",
           "SHED_FULL", "SHED_ANALYTIC", "SHED_LAST_RESORT",
           "QueryResult", "error_document"]
