"""The long-lived timing-estimation service and its HTTP front.

:class:`TimingService` wires the robustness stack together — admission
(backpressure + deadlines + shedding), batching, the shed-aware
:class:`~repro.serve.engine.EstimationEngine`, and lifecycle supervision —
behind one synchronous :meth:`~TimingService.submit` call that *always*
returns a terminal :class:`~repro.serve.protocol.ServeResponse`.

:class:`TimingHTTPServer` is the thin socket front: a threading HTTP/1.1
server mapping the protocol onto four endpoints:

========  ==============  =================================================
method    path            behavior
========  ==============  =================================================
POST      ``/v1/timing``  timing request -> prediction or typed error
GET       ``/healthz``    liveness (200 while the process should live)
GET       ``/readyz``     readiness (503 the instant a drain begins)
GET       ``/metrics``    JSON snapshot of the ``serve.*`` instruments
POST      ``/drain``      programmatic graceful drain (also on SIGTERM)
========  ==============  =================================================

Handler threads do no estimation work themselves; they enqueue and wait,
so a slow model never starves accept() and health probes stay responsive
under full load.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from ..design.sta import WireTimingModel
from ..obs import get_metrics
from ..robustness.errors import DeadlineError, EstimationError, OverloadError
from .admission import SHED_FULL, AdmissionConfig, AdmissionController
from .batching import BatchCollector, BatchingConfig
from .engine import EstimationEngine
from .lifecycle import (DRAINING, STOPPED, Lifecycle, WorkerSupervisor,
                        install_sigterm_drain)
from .protocol import (PROTOCOL_SCHEMA, ServeRequest, ServeResponse,
                       error_response, http_status_for, parse_request)

#: Largest accepted request body; a parasitic netlist query has no
#: business being bigger, and the cap keeps a hostile client from
#: ballooning handler memory.
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs, in one serializable block."""

    host: str = "127.0.0.1"
    port: int = 8731
    workers: int = 2
    net_timeout_s: Optional[float] = 0.25
    max_restarts: int = 8
    persist_cache_dir: Optional[str] = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    expiry_sweep_s: float = 0.05


class TimingService:
    """The in-process service: submit a request, get a terminal answer."""

    def __init__(self, config: ServeConfig = ServeConfig(),
                 learned: Optional[WireTimingModel] = None,
                 engine: Optional[EstimationEngine] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self.clock = clock
        if config.persist_cache_dir:
            from ..analysis.cache import configure_solve_cache

            configure_solve_cache(512, persist_dir=config.persist_cache_dir)
        self.admission = AdmissionController(config.admission, clock=clock)
        self.engine = engine if engine is not None else EstimationEngine(
            learned, net_timeout=config.net_timeout_s, clock=clock)
        self.collector = BatchCollector(self.admission, config.batching,
                                        clock=clock)
        self.lifecycle = Lifecycle()
        self.supervisor = WorkerSupervisor(self._worker_loop, config.workers,
                                           max_restarts=config.max_restarts)
        self._sweeper: Optional[threading.Thread] = None
        self._stop_sweeper = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TimingService":
        self.supervisor.start()
        self._stop_sweeper.clear()
        self._sweeper = threading.Thread(target=self._sweep_loop,
                                         name="serve-expiry-sweep",
                                         daemon=True)
        self._sweeper.start()
        self.lifecycle.mark_ready()
        return self

    def drain(self) -> None:
        """Stop admitting; in-flight and queued work still completes."""
        self.lifecycle.begin_drain()
        self.admission.stop_accepting()

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        if drain:
            self.drain()
            deadline = time.monotonic() + timeout
            while self.admission.depth and time.monotonic() < deadline:
                time.sleep(0.01)
        else:
            self.admission.stop_accepting()
        self.supervisor.stop(join_timeout=timeout)
        self._stop_sweeper.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=1.0)
        self.lifecycle.mark_stopped()

    def _sweep_loop(self) -> None:
        # Queued tickets must hit their deadlines even if every worker is
        # wedged on a pathologically slow tier; this thread is the
        # guarantee (cancellation is cooperative everywhere else).
        while not self._stop_sweeper.wait(self.config.expiry_sweep_s):
            self.admission.expire_queued()

    # ------------------------------------------------------------------
    # Worker loop (supervised; see lifecycle.WorkerSupervisor)
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        while True:
            state = self.lifecycle.state
            if state == STOPPED:
                return
            batch = self.collector.collect(poll_s=0.05)
            if batch is None:
                if not self.admission.accepting and not self.admission.depth:
                    return  # drained dry: exit cleanly
                continue
            shed = self.admission.shed_level()
            start = self.clock()
            try:
                healthy = self.engine.serve_batch(batch, shed)
            except (KeyboardInterrupt, SystemExit) as exc:
                # Worker crash: contain it.  Finish the batch on the
                # tier that cannot fail (serial-retry idiom), hand the
                # supervisor a respawn, and let this thread die.
                self._contain_crash(batch, worker_id, exc)
                return
            except BaseException as exc:  # repro-lint: disable=ERR002
                self._contain_crash(batch, worker_id, exc)
                return
            elapsed = self.clock() - start
            if shed == SHED_FULL and batch.tickets:
                per_request = elapsed / len(batch.tickets)
                self.admission.record_serve(healthy == len(batch.tickets),
                                            per_request)

    def _contain_crash(self, batch: Any, worker_id: int,
                       exc: BaseException) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        try:
            self.engine.serve_batch_last_resort(batch, reason)
        finally:
            self.supervisor.report_crash(worker_id, reason)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> ServeResponse:
        """Synchronous serve: admission -> batch -> engine -> response.

        Total by construction: overload and drain reject here with typed
        errors; an admitted ticket is answered by a worker, the expiry
        sweep, or — if every other mechanism wedges — the bounded wait
        below.  The caller always gets a ``ServeResponse``.
        """
        try:
            ticket = self.admission.submit(request)
        except OverloadError as exc:
            get_metrics().counter("serve.requests").inc()
            return error_response(exc, request.request_id)
        if ticket.deadline_at is not None:
            wait = max(ticket.deadline_at - self.clock(), 0.0) \
                + 2.0 * self.config.expiry_sweep_s
        else:
            wait = self.config.admission.max_deadline_s + 1.0
        if not ticket.done.wait(timeout=wait):
            budget = request.deadline_ms
            ticket.finish(error_response(DeadlineError(
                "deadline expired awaiting a worker",
                budget_s=None if budget is None else budget / 1e3,
                stage="serve"), request.request_id))
        response = ticket.response
        assert response is not None  # finish() always sets it before done
        return response

    def submit_raw(self, body: bytes) -> ServeResponse:
        """Parse + serve; malformed bodies become typed error responses."""
        try:
            request = parse_request(body)
        except EstimationError as exc:
            get_metrics().counter("serve.requests").inc()
            return error_response(exc)
        return self.submit(request)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health_document(self) -> Dict[str, Any]:
        # Workers exit once a drain runs the queue dry — that is the
        # drain working, not a crash; liveness must hold to the end so
        # the orchestrator never kills a still-draining process early.
        workers_alive = (self.supervisor.alive_count() > 0
                         or self.lifecycle.state == DRAINING)
        return {
            "schema": PROTOCOL_SCHEMA,
            "healthy": self.lifecycle.healthy(workers_alive),
            "ready": self.lifecycle.ready() and self.admission.accepting,
            "lifecycle": self.lifecycle.snapshot(),
            "admission": self.admission.snapshot(),
            "workers": self.supervisor.snapshot(),
            "tiers": self.engine.tier_counters(),
        }


# ----------------------------------------------------------------------
# HTTP front
# ----------------------------------------------------------------------
class _TimingHandler(BaseHTTPRequestHandler):
    """Maps the versioned protocol onto HTTP; one instance per request."""

    server: "TimingHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging is metrics' job; stderr chatter helps nobody.
        get_metrics().counter("serve.http_requests").inc()

    def _send_json(self, status: int, document: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            document = service.health_document()
            self._send_json(200 if document["healthy"] else 503, document)
        elif self.path == "/readyz":
            document = service.health_document()
            self._send_json(200 if document["ready"] else 503, document)
        elif self.path == "/metrics":
            self._send_json(200, get_metrics().snapshot())
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})

    def do_POST(self) -> None:
        service = self.server.service
        if self.path == "/drain":
            service.drain()
            self._send_json(202, {"draining": True})
            return
        if self.path != "/v1/timing":
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            response = error_response(OverloadError(
                f"request body missing/oversized (cap {MAX_BODY_BYTES} "
                f"bytes)", retry_after_s=0.0))
            self._send_json(413, response.to_dict())
            return
        body = self.rfile.read(length)
        response = service.submit_raw(body)
        status = http_status_for(response)
        headers = {}
        retry_after_ms = (response.error or {}).get("retry_after_ms") \
            if response.error else None
        if retry_after_ms is not None:
            headers["Retry-After"] = f"{max(retry_after_ms, 0.0) / 1e3:.3f}"
        self._send_json(status, response.to_dict(), headers)


class TimingHTTPServer(ThreadingHTTPServer):
    """Threading HTTP front bound to one :class:`TimingService`."""

    daemon_threads = True

    def __init__(self, service: TimingService, host: str, port: int) -> None:
        self.service = service
        super().__init__((host, port), _TimingHandler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class ServerHandle:
    """A started service + HTTP front, stoppable as one unit."""

    def __init__(self, service: TimingService,
                 http_server: TimingHTTPServer,
                 thread: threading.Thread) -> None:
        self.service = service
        self.http = http_server
        self._thread = thread

    @property
    def port(self) -> int:
        return self.http.port

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        self.service.stop(drain=drain, timeout=timeout)
        self.http.shutdown()
        self.http.server_close()
        self._thread.join(timeout=2.0)


def start_server(config: ServeConfig = ServeConfig(),
                 learned: Optional[WireTimingModel] = None,
                 engine: Optional[EstimationEngine] = None) -> ServerHandle:
    """Start service + HTTP front; ``port=0`` binds an ephemeral port."""
    service = TimingService(config, learned=learned, engine=engine).start()
    http_server = TimingHTTPServer(service, config.host, config.port)
    thread = threading.Thread(target=http_server.serve_forever,
                              name="serve-http", daemon=True)
    thread.start()
    return ServerHandle(service, http_server, thread)


def run_server(config: ServeConfig,
               learned: Optional[WireTimingModel] = None) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, then drain."""
    handle = start_server(config, learned=learned)
    drained = threading.Event()

    def _drain() -> None:
        handle.service.drain()
        drained.set()

    sigterm_ok = install_sigterm_drain(_drain)
    print(f"repro serve: listening on "
          f"http://{config.host}:{handle.port} "
          f"({config.workers} workers, SIGTERM drain "
          f"{'installed' if sigterm_ok else 'unavailable'})")
    try:
        while not drained.is_set():
            drained.wait(0.2)
            if handle.service.lifecycle.state in (DRAINING, STOPPED):
                break
    except KeyboardInterrupt:
        print("repro serve: interrupt — draining")
    handle.stop(drain=True)
    print("repro serve: drained and stopped")
    return 0


__all__ = ["MAX_BODY_BYTES", "ServeConfig", "ServerHandle", "TimingService",
           "TimingHTTPServer", "run_server", "start_server"]
