"""Service lifecycle: probes, graceful drain, worker-crash recovery.

State machine: ``starting -> ready -> draining -> stopped``.

* **Probes** — ``healthy`` answers "is the process worth keeping" (true
  from start until stop, provided at least one worker is alive);
  ``ready`` answers "route traffic here" (true only in ``ready``, which a
  drain revokes immediately while in-flight work finishes).
* **Drain** — ``begin_drain`` flips admission to reject-new (clients get
  typed :class:`~repro.robustness.errors.OverloadError` backpressure),
  lets workers run the queue dry, then stops them.  Installed as the
  SIGTERM handler by the CLI, so an orchestrator's stop is lossless.
* **Crash recovery** — worker threads are supervised.  A worker that
  dies mid-batch first finishes its batch on the last-resort tier (the
  serial-retry idiom of :mod:`repro.parallel`: the crash costs accuracy,
  never answers), then the supervisor spawns a replacement, up to a
  restart budget; exhausting the budget marks the service unhealthy.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Callable, Dict, List

from ..obs import get_metrics, named_lock

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
STOPPED = "stopped"

_CRASHES = get_metrics().counter("serve.worker_crashes")
_RESTARTS = get_metrics().counter("serve.worker_restarts")


class Lifecycle:
    """Thread-safe service state with health/readiness probes."""

    def __init__(self) -> None:
        self._state = STARTING  # repro-guarded-by: _lock
        self._lock = named_lock("Lifecycle._lock")
        self._since = time.monotonic()  # repro-guarded-by: _lock

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, to: str) -> None:
        with self._lock:
            self._state = to
            self._since = time.monotonic()

    def mark_ready(self) -> None:
        self._transition(READY)

    def begin_drain(self) -> None:
        with self._lock:
            if self._state == STOPPED:
                return
            self._state = DRAINING
            self._since = time.monotonic()

    def mark_stopped(self) -> None:
        self._transition(STOPPED)

    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """Readiness: accept new traffic?  False the instant a drain
        starts, so load balancers stop routing before the queue empties."""
        return self.state == READY

    def healthy(self, workers_alive: bool = True) -> bool:
        """Liveness: keep the process?  A draining server is healthy."""
        return self.state in (STARTING, READY, DRAINING) and workers_alive

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"state": self._state,
                    "since_s": time.monotonic() - self._since}


def install_sigterm_drain(callback: Callable[[], None]) -> bool:
    """Route SIGTERM to a drain callback; False when not installable.

    Signal handlers only work in the main thread (and not at all on some
    embedders); failure to install is reported, not raised — the caller
    still has the HTTP/programmatic drain path.
    """
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: callback())
    except (ValueError, OSError):  # not the main thread / no signals
        return False
    return True


class WorkerSupervisor:
    """Supervised pool of worker threads with bounded respawn.

    ``target`` is the worker loop; it must return normally on shutdown
    and call :meth:`report_crash` (then return) after containing a crash.
    The supervisor replaces crashed workers until ``max_restarts`` is
    exhausted, after which :meth:`all_dead`-style health degradation is
    the lifecycle's problem — answers keep flowing from the remaining
    workers, if any.
    """

    def __init__(self, target: Callable[[int], None], workers: int,
                 max_restarts: int = 8) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target = target
        self.max_restarts = max_restarts
        self._lock = named_lock("WorkerSupervisor._lock")
        self._threads: List[threading.Thread] = []  # repro-guarded-by: _lock
        self._restarts = 0  # repro-guarded-by: _lock
        self._next_id = 0  # repro-guarded-by: _lock
        self._stopping = False  # repro-guarded-by: _lock
        self._workers = workers

    def start(self) -> None:
        with self._lock:
            for _ in range(self._workers):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        worker_id = self._next_id
        self._next_id += 1
        thread = threading.Thread(target=self.target, args=(worker_id,),
                                  name=f"serve-worker-{worker_id}",
                                  daemon=True)
        self._threads.append(thread)
        thread.start()

    def report_crash(self, worker_id: int, reason: str) -> bool:
        """A worker contained a crash and is exiting; spawn a successor.

        Returns True when a replacement was started, False when the
        restart budget is exhausted or the pool is stopping.
        """
        _CRASHES.inc()
        with self._lock:
            if self._stopping or self._restarts >= self.max_restarts:
                return False
            self._restarts += 1
            _RESTARTS.inc()
            self._spawn_locked()
            return True

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    def stop(self, join_timeout: float = 5.0) -> None:
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        deadline = time.monotonic() + join_timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"workers": self._workers,
                    "alive": sum(1 for t in self._threads if t.is_alive()),
                    "restarts": self._restarts,
                    "max_restarts": self.max_restarts}


__all__ = ["Lifecycle", "WorkerSupervisor", "install_sigterm_drain",
           "STARTING", "READY", "DRAINING", "STOPPED"]
