"""``repro bench --serve``: closed-loop load generation against the service.

Spawns ``clients`` closed-loop threads, each posting ``requests_per_client``
multi-net timing requests (seeded :func:`~repro.rcnet.topology.random_net`
parasitics) through the real HTTP front via :class:`TimingClient`, then
reports latency percentiles from the same log2
:class:`~repro.obs.metrics.Histogram` the service itself uses, plus
throughput and the terminal-outcome census.

The census is the bench-side statement of the zero-lost-request invariant:
``sent == ok + rejected + deadline + error + transport_failures`` must hold
exactly, and the report records ``lost`` (any shortfall) so a regression
shows up as a nonzero number in ``BENCH_<date>.json``, not a silent gap.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs import get_metrics
from ..obs.export import observability_document
from ..obs.metrics import Histogram
from ..obs.tracer import get_tracer
from .client import RetryPolicy, ServeClientError, TimingClient
from .protocol import ServeRequest, TimingQuery

#: Terminal outcomes a request can land in (the census keys).
OUTCOMES = ("ok", "degraded", "rejected", "deadline", "error", "transport")

#: Pinned single-shot inference throughput (BENCH_2026-08-05.json,
#: ``results.evaluate.throughput_nets_per_s``) the batched-service target
#: is measured against; the serve report records the achieved multiple.
SINGLE_SHOT_BASELINE_NETS_PER_S = 913.0


@dataclass(frozen=True)
class ServeWorkload:
    """Pinned load-generation workload, serialized into the report."""

    name: str
    clients: int = 8
    requests_per_client: int = 25
    nets_per_request: int = 8
    net_nodes: Tuple[int, int] = (6, 24)
    deadline_ms: Optional[float] = 2000.0
    seed: int = 7
    workers: int = 2   # service workers (recorded for comparability)
    jobs: int = 1      # recorded; serve uses threads, not process jobs
    #: Size of the shared query pool clients draw from.  ``None`` makes
    #: every query unique (cold-cache behavior); a finite pool models the
    #: incremental-timing access pattern — the same nets re-queried every
    #: optimization iteration — which is what the prediction cache and the
    #: batched-throughput target are about.
    unique_queries: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": "serve",
            "name": self.name,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "nets_per_request": self.nets_per_request,
            "net_nodes": list(self.net_nodes),
            "deadline_ms": self.deadline_ms,
            "seed": self.seed,
            "workers": self.workers,
            "jobs": self.jobs,
            "unique_queries": self.unique_queries,
        }


#: Default load run (~200 requests, a couple of seconds).
DEFAULT_SERVE_WORKLOAD = ServeWorkload(name="serve-default")

#: CI smoke run: small enough for the serve-smoke job's time budget.
QUICK_SERVE_WORKLOAD = ServeWorkload(
    name="serve-quick", clients=4, requests_per_client=6,
    nets_per_request=4, net_nodes=(5, 12))

#: The batched-throughput gate: incremental-timing shape (shared pool of
#: repeatedly re-queried nets, large coalesceable requests) against which
#: the ">= 5x the 913 nets/s single-shot baseline" target is measured.
THROUGHPUT_SERVE_WORKLOAD = ServeWorkload(
    name="serve-throughput", clients=6, requests_per_client=30,
    nets_per_request=48, net_nodes=(5, 14), workers=4, unique_queries=128)


def _build_pool(workload: ServeWorkload) -> List[TimingQuery]:
    """The shared query pool (deterministic from the workload seed)."""
    import numpy as np

    from ..rcnet.topology import random_net

    rng = np.random.default_rng(workload.seed)
    size = workload.unique_queries
    if size is None:
        size = (workload.clients * workload.requests_per_client
                * workload.nets_per_request)
    pool = []
    for j in range(size):
        net = random_net(rng, name=f"pool{j}",
                         n_nodes_range=workload.net_nodes,
                         n_sinks_range=(1, 4))
        pool.append(TimingQuery(
            net=net,
            input_slew_s=float(rng.uniform(5e-12, 8e-11)),
            drive_resistance_ohm=float(rng.uniform(50.0, 400.0))))
    return pool


def _build_requests(workload: ServeWorkload, client_index: int,
                    pool: List[TimingQuery]) -> List[ServeRequest]:
    """Deterministic request stream for one client thread.

    With ``unique_queries`` unset each query is drawn exactly once, so
    every request is cold; with a finite pool clients re-draw from it
    with replacement, the incremental-timing pattern.
    """
    import numpy as np

    rng = np.random.default_rng(workload.seed * 1009 + client_index + 1)
    requests = []
    cursor = client_index * workload.requests_per_client \
        * workload.nets_per_request
    for i in range(workload.requests_per_client):
        if workload.unique_queries is None:
            queries = pool[cursor:cursor + workload.nets_per_request]
            cursor += workload.nets_per_request
        else:
            picks = rng.integers(0, len(pool),
                                 size=workload.nets_per_request)
            queries = [pool[int(p)] for p in picks]
        requests.append(ServeRequest(
            queries=list(queries), deadline_ms=workload.deadline_ms,
            request_id=f"bench-c{client_index}-r{i}"))
    return requests


class _ClientStats:
    """Per-thread tallies, merged after the barrier (no shared locks)."""

    def __init__(self) -> None:
        self.outcomes = {key: 0 for key in OUTCOMES}
        self.nets_ok = 0
        self.nets_cached = 0
        self.latencies_s: List[float] = []
        self.tiers: Dict[str, int] = {}


def _run_client(host: str, port: int, workload: ServeWorkload,
                client_index: int, stats: _ClientStats,
                pool: List[TimingQuery]) -> None:
    client = TimingClient(host=host, port=port,
                          policy=RetryPolicy(max_attempts=3,
                                             base_backoff_s=0.02))
    for request in _build_requests(workload, client_index, pool):
        start = time.perf_counter()
        try:
            response = client.submit(request)
        except ServeClientError:
            stats.outcomes["transport"] += 1
            continue
        stats.latencies_s.append(time.perf_counter() - start)
        if response.ok:
            degraded = any(r.degraded for r in response.results or [])
            stats.outcomes["degraded" if degraded else "ok"] += 1
            for result in response.results or []:
                if result.ok:
                    stats.nets_ok += 1
                    if result.cached:
                        stats.nets_cached += 1
                    tier = result.tier or "?"
                    stats.tiers[tier] = stats.tiers.get(tier, 0) + 1
        else:
            kind = (response.error or {}).get("type", "InternalError")
            if kind == "OverloadError":
                stats.outcomes["rejected"] += 1
            elif kind == "DeadlineError":
                stats.outcomes["deadline"] += 1
            else:
                stats.outcomes["error"] += 1


def run_serve_bench(workload: ServeWorkload = DEFAULT_SERVE_WORKLOAD,
                    host: Optional[str] = None,
                    port: Optional[int] = None) -> Dict[str, Any]:
    """Run the load workload; returns a serve-mode ``BENCH`` document.

    With no ``host``/``port`` an in-process service is started on an
    ephemeral port and torn down afterwards (the self-contained CI path);
    pointing at an external server skips service ownership.
    """
    from .server import ServeConfig, start_server

    registry = get_metrics()
    registry.reset()
    handle = None
    if host is None or port is None:
        config = ServeConfig(host="127.0.0.1", port=0,
                             workers=workload.workers)
        handle = start_server(config)
        host, port = "127.0.0.1", handle.port
    try:
        pool = _build_pool(workload)
        stats = [_ClientStats() for _ in range(workload.clients)]
        threads = [threading.Thread(target=_run_client,
                                    args=(host, port, workload, i, stats[i],
                                          pool),
                                    name=f"loadgen-{i}", daemon=True)
                   for i in range(workload.clients)]
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start_wall
        cpu_s = time.process_time() - start_cpu
    finally:
        if handle is not None:
            handle.stop(drain=True, timeout=10.0)

    outcomes = {key: sum(s.outcomes[key] for s in stats) for key in OUTCOMES}
    sent = workload.clients * workload.requests_per_client
    answered = sum(outcomes.values())
    lost = sent - answered

    latency = Histogram("serve.bench_latency_s")
    for per_client in stats:
        for seconds in per_client.latencies_s:
            latency.observe(max(seconds, 1e-9))
    tiers: Dict[str, int] = {}
    for per_client in stats:
        for tier, count in per_client.tiers.items():
            tiers[tier] = tiers.get(tier, 0) + count
    nets_ok = sum(s.nets_ok for s in stats)

    import platform

    import numpy as np

    from ..parallel import worker_context

    document: Dict[str, Any] = {
        "schema": "repro-bench/1",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": np.__version__,
            "mp_start_method": worker_context().get_start_method(),
            "jobs": workload.jobs,
        },
        "workload": workload.to_dict(),
        "stages": [{"name": "serve", "wall_s": wall_s, "cpu_s": cpu_s}],
        "results": {
            "serve": {
                "requests_sent": sent,
                "outcomes": outcomes,
                "lost_requests": lost,
                "nets_requested": sent * workload.nets_per_request,
                "nets_ok": nets_ok,
                "nets_cached": sum(s.nets_cached for s in stats),
                "throughput_nets_per_s": (nets_ok / wall_s
                                          if wall_s > 0 else 0.0),
                "throughput_requests_per_s": (answered / wall_s
                                              if wall_s > 0 else 0.0),
                "single_shot_baseline_nets_per_s":
                    SINGLE_SHOT_BASELINE_NETS_PER_S,
                "speedup_vs_single_shot": (
                    nets_ok / wall_s / SINGLE_SHOT_BASELINE_NETS_PER_S
                    if wall_s > 0 else 0.0),
                "latency_ms": {
                    "p50": (latency.percentile(50.0) * 1e3
                            if latency.count else 0.0),
                    "p90": (latency.percentile(90.0) * 1e3
                            if latency.count else 0.0),
                    "p99": (latency.percentile(99.0) * 1e3
                            if latency.count else 0.0),
                    "max": latency.max * 1e3 if latency.count else 0.0,
                },
                "tiers": tiers,
            },
        },
        "observability": observability_document(get_tracer(), registry),
    }
    return document


def format_serve_summary(document: Dict[str, Any]) -> str:
    """Human digest printed after ``repro bench --serve``."""
    serve = document["results"]["serve"]
    wall = document["stages"][0]["wall_s"]
    lat = serve["latency_ms"]
    lines = [f"serve bench workload {document['workload']['name']!r} "
             f"({document['created_utc']})",
             f"  {serve['requests_sent']} requests in {wall:.3f}s, "
             f"lost {serve['lost_requests']}",
             f"  outcomes {serve['outcomes']}",
             f"  latency p50/p90/p99 {lat['p50']:.2f}/{lat['p90']:.2f}/"
             f"{lat['p99']:.2f} ms (max {lat['max']:.2f})",
             f"  throughput {serve['throughput_nets_per_s']:.1f} nets/s "
             f"({serve['throughput_requests_per_s']:.1f} req/s), "
             f"{serve['nets_cached']}/{serve['nets_ok']} cached, "
             f"tiers {serve['tiers']}"]
    return "\n".join(lines)


__all__ = ["DEFAULT_SERVE_WORKLOAD", "OUTCOMES", "QUICK_SERVE_WORKLOAD",
           "THROUGHPUT_SERVE_WORKLOAD", "ServeWorkload",
           "format_serve_summary", "run_serve_bench"]
