"""Client for the timing service: retries, backoff with jitter, hedging.

The retry policy mirrors the server's typed taxonomy:

* ``OverloadError`` (HTTP 429) — honor the server's ``Retry-After`` hint
  (falling back to exponential backoff), retry up to the budget;
* transport errors (connection refused/reset, short reads) — retry with
  exponential backoff + full jitter;
* ``DeadlineError`` (504) and ``InputError`` (400) — **not** retried: the
  first is the client's own budget expiring (retrying makes it worse),
  the second will fail identically every time;
* ``InternalError`` (500) — retried once; the server already degraded
  through its fallback ladder before saying this.

Hedging (off by default) races a second request after ``hedge_after_s``
of silence; the service's first-writer-wins tickets make duplicates safe.
The RNG, clock, and sleep are injectable so the policy is testable
without real waiting.
"""

from __future__ import annotations

import http.client
import random  # repro-lint: disable=DET002 backoff jitter only; injectable via the rng parameter, never label-facing
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs import get_metrics
from .protocol import ServeRequest, ServeResponse, TimingQuery, decode_response

_RETRIES = get_metrics().counter("serve.client_retries")
_HEDGES = get_metrics().counter("serve.client_hedges")

#: Error types never worth retrying (same outcome every attempt).
_NO_RETRY = frozenset({"InputError", "DeadlineError"})


class ServeClientError(RuntimeError):
    """All attempts exhausted; carries the last typed server error."""

    def __init__(self, message: str,
                 last_response: Optional[ServeResponse] = None) -> None:
        super().__init__(message)
        self.last_response = last_response


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, bounded attempts."""

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    backoff_multiplier: float = 2.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter backoff for the given 0-based attempt index."""
        cap = min(self.max_backoff_s,
                  self.base_backoff_s * self.backoff_multiplier ** attempt)
        return rng.uniform(0.0, cap)


class TimingClient:
    """HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 policy: RetryPolicy = RetryPolicy(),
                 timeout_s: float = 10.0,
                 hedge_after_s: Optional[float] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.policy = policy
        self.timeout_s = timeout_s
        self.hedge_after_s = hedge_after_s
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _post_once(self, path: str, body: bytes,
                   timeout_s: Optional[float] = None) -> ServeResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s)
        try:
            connection.request("POST", path, body=body,
                               headers={"Content-Type": "application/json"})
            raw = connection.getresponse().read()
        finally:
            connection.close()
        return decode_response(raw)

    def _error_type(self, response: ServeResponse) -> Optional[str]:
        if response.ok or response.error is None:
            return None
        return str(response.error.get("type", "InternalError"))

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> ServeResponse:
        """Send with retries; returns the terminal (possibly error) response.

        Raises :class:`ServeClientError` only when every attempt failed at
        the transport layer or with a retryable server error — a typed
        non-retryable error (bad input, blown deadline) is returned as the
        response so callers see the taxonomy, not an opaque exception.
        """
        body = request.encode()
        last_response: Optional[ServeResponse] = None
        last_transport: Optional[Exception] = None
        for attempt in range(self.policy.max_attempts):
            if attempt > 0:
                _RETRIES.inc()
            try:
                response = self._attempt(body)
            except (OSError, http.client.HTTPException, ValueError) as exc:
                last_transport = exc
                self.sleep(self.policy.backoff(attempt, self.rng))
                continue
            error_type = self._error_type(response)
            if error_type is None or error_type in _NO_RETRY:
                return response
            last_response = response
            if error_type == "InternalError" and attempt >= 1:
                return response  # one re-roll is plenty for a server bug
            retry_after_ms = response.error.get("retry_after_ms") \
                if response.error else None
            if retry_after_ms is not None:
                delay = max(float(retry_after_ms) / 1e3, 0.0)
                # Jitter the herd: everyone told "50 ms" must not return
                # in the same instant they were rejected in.
                delay *= self.rng.uniform(0.8, 1.4)
            else:
                delay = self.policy.backoff(attempt, self.rng)
            self.sleep(delay)
        if last_response is not None:
            return last_response
        raise ServeClientError(
            f"no response from {self.host}:{self.port} after "
            f"{self.policy.max_attempts} attempts: {last_transport}",
            last_response=None)

    def _attempt(self, body: bytes) -> ServeResponse:
        """One logical attempt: a single POST, or a hedged pair."""
        if self.hedge_after_s is None:
            return self._post_once("/v1/timing", body)
        return self._hedged_post(body)

    def _hedged_post(self, body: bytes) -> ServeResponse:
        """Race a backup request after ``hedge_after_s`` of silence.

        Safe because the service answers each *request* independently and
        duplicates cost only cheap-tier work under load; first usable
        response wins, the loser is abandoned.
        """
        results: List[Optional[ServeResponse]] = [None, None]
        errors: List[Optional[Exception]] = [None, None]
        first_done = threading.Event()

        def _runner(slot: int) -> None:
            try:
                results[slot] = self._post_once("/v1/timing", body)
            except (OSError, http.client.HTTPException, ValueError) as exc:
                errors[slot] = exc
            finally:
                first_done.set()

        primary = threading.Thread(target=_runner, args=(0,), daemon=True)
        primary.start()
        if not first_done.wait(self.hedge_after_s):
            _HEDGES.inc()
            backup = threading.Thread(target=_runner, args=(1,), daemon=True)
            backup.start()
            backup.join(self.timeout_s)
        primary.join(self.timeout_s)
        for response in results:
            if response is not None:
                return response
        raise errors[0] or errors[1] \
            or OSError("hedged request produced no response")

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def estimate(self, queries: List[TimingQuery],
                 deadline_ms: Optional[float] = None,
                 request_id: Optional[str] = None) -> ServeResponse:
        return self.submit(ServeRequest(queries=queries,
                                        deadline_ms=deadline_ms,
                                        request_id=request_id))

    def health(self) -> dict:
        import json

        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout_s)
        try:
            connection.request("GET", "/healthz")
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    def ready(self) -> bool:
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout_s)
        try:
            connection.request("GET", "/readyz")
            return connection.getresponse().status == 200
        except (OSError, http.client.HTTPException):
            return False
        finally:
            connection.close()


__all__ = ["RetryPolicy", "ServeClientError", "TimingClient"]
