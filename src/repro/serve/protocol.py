"""Versioned wire format of the ``repro serve`` timing service.

One schema (:data:`PROTOCOL_SCHEMA`) covers both directions.  A request
carries one or more *queries* — each a full RC net plus its electrical
operating point — and an optional per-request deadline budget.  A response
terminates every query with exactly one of:

* a prediction (``ok: true`` — delays/slews per sink, the serving tier,
  and the degradation trail of tiers that failed first), or
* a typed error (``ok: false`` — the taxonomy class name from
  :mod:`repro.robustness.errors` plus its net/design/stage/tier
  provenance).

No third outcome exists; the server's zero-lost-request invariant is
stated here and enforced by the chaos suite.  Parsing is strict: any
malformed payload raises :class:`~repro.robustness.errors.InputError`
with ``stage="protocol"`` so the front can answer with a typed error
instead of dropping the connection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..rcnet.graph import CouplingCap, RCEdge, RCNet, RCNetError, RCNode
from ..robustness.errors import (DeadlineError, EstimationError, InputError,
                                 OverloadError)

#: Wire-format version stamped into every request and response; servers
#: reject any other value so schema drift fails loudly on day one.
PROTOCOL_SCHEMA = "repro-serve/1"

#: Hard per-request query cap: a request is the batching unit, not an
#: unbounded bulk import, and admission cost must stay O(1)-ish.
MAX_QUERIES_PER_REQUEST = 1024


# ----------------------------------------------------------------------
# Net serialization
# ----------------------------------------------------------------------
def net_to_dict(net: RCNet) -> Dict[str, Any]:
    """JSON-safe encoding of an :class:`RCNet` (inverse of
    :func:`net_from_dict`)."""
    return {
        "name": net.name,
        "nodes": [{"name": node.name, "cap": node.cap} for node in net.nodes],
        "edges": [[edge.u, edge.v, edge.resistance] for edge in net.edges],
        "source": net.source,
        "sinks": list(net.sinks),
        "couplings": [[c.victim, c.aggressor_name, c.cap, c.activity]
                      for c in net.couplings],
    }


def net_from_dict(payload: Any) -> RCNet:
    """Decode and *validate* a net; raises :class:`InputError` on anything
    malformed (wrong types, dangling indices, corrupted parasitics the
    :class:`RCNet` constructor rejects)."""
    if not isinstance(payload, dict):
        raise InputError(f"net must be an object, got "
                         f"{type(payload).__name__}", stage="protocol")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise InputError("net needs a non-empty string 'name'",
                         stage="protocol")
    try:
        nodes = [RCNode(index=i, name=str(entry["name"]),
                        cap=float(entry["cap"]))
                 for i, entry in enumerate(payload.get("nodes", []))]
        edges = [RCEdge(u=int(u), v=int(v), resistance=float(res))
                 for u, v, res in payload.get("edges", [])]
        couplings = [CouplingCap(victim=int(n), aggressor_name=str(a),
                                 cap=float(c), activity=float(act))
                     for n, a, c, act in payload.get("couplings", [])]
        net = RCNet(name, nodes, edges,
                    source=int(payload.get("source", 0)),
                    sinks=[int(s) for s in payload.get("sinks", [])],
                    couplings=couplings)
    except InputError as exc:
        if exc.net is None:
            exc.net = name
        raise
    except (KeyError, TypeError, ValueError, RCNetError) as exc:
        raise InputError(f"malformed net encoding: {exc}", net=name,
                         stage="protocol", cause=exc) from exc
    return net


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass
class TimingQuery:
    """One net's slew/delay question: the net plus its operating point."""

    net: RCNet
    input_slew_s: float
    drive_resistance_ohm: float
    sink_loads_f: Optional[List[float]] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "net": net_to_dict(self.net),
            "input_slew_s": self.input_slew_s,
            "drive_resistance_ohm": self.drive_resistance_ohm,
        }
        if self.sink_loads_f is not None:
            doc["sink_loads_f"] = list(self.sink_loads_f)
        return doc

    def cache_key(self) -> bytes:
        """Content-addressed identity of the query (BLAKE2b-128).

        Keyed over the full parasitic content and operating point — two
        queries share a key iff an estimator sees identical inputs —
        following the ``solve_key`` idiom of :mod:`repro.analysis.cache`.
        Net and node *names* are excluded: timing depends only on
        indices, and incremental-timing clients rename nets across
        iterations while the parasitics stay put — those re-queries are
        exactly what the prediction cache exists for.  Packed binary
        rather than canonical JSON: this runs once per served net.
        """
        import hashlib
        import struct

        net = self.net
        digest = hashlib.blake2b(digest_size=16)
        digest.update(struct.pack("<ddiii", self.input_slew_s,
                                  self.drive_resistance_ohm, net.num_nodes,
                                  net.num_edges, net.source))
        digest.update(struct.pack(f"<{net.num_nodes}d",
                                  *(node.cap for node in net.nodes)))
        for edge in net.edges:
            digest.update(struct.pack("<iid", edge.u, edge.v,
                                      edge.resistance))
        digest.update(struct.pack(f"<{net.num_sinks}i", *net.sinks))
        for coupling in net.couplings:
            digest.update(struct.pack("<idd", coupling.victim, coupling.cap,
                                      coupling.activity))
            digest.update(coupling.aggressor_name.encode("utf-8"))
        if self.sink_loads_f is not None:
            digest.update(struct.pack(f"<{len(self.sink_loads_f)}d",
                                      *self.sink_loads_f))
        return digest.digest()


@dataclass
class ServeRequest:
    """A parsed, validated timing request (the admission unit)."""

    queries: List[TimingQuery]
    request_id: Optional[str] = None
    deadline_ms: Optional[float] = None

    @property
    def num_nets(self) -> int:
        return len(self.queries)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": PROTOCOL_SCHEMA,
            "queries": [query.to_dict() for query in self.queries],
        }
        if self.request_id is not None:
            doc["id"] = self.request_id
        if self.deadline_ms is not None:
            doc["deadline_ms"] = self.deadline_ms
        return doc

    def encode(self) -> bytes:
        return json.dumps(self.to_dict()).encode("utf-8")


def _parse_query(payload: Any, position: int) -> TimingQuery:
    if not isinstance(payload, dict):
        raise InputError(f"query {position} must be an object",
                         stage="protocol")
    net = net_from_dict(payload.get("net"))
    try:
        slew = float(payload.get("input_slew_s", 20e-12))
        resistance = float(payload.get("drive_resistance_ohm", 100.0))
    except (TypeError, ValueError) as exc:
        raise InputError(f"query {position}: non-numeric operating point",
                         net=net.name, stage="protocol", cause=exc) from exc
    if not slew > 0.0:
        raise InputError(f"query {position}: input_slew_s must be positive",
                         net=net.name, stage="protocol")
    if not resistance > 0.0:
        raise InputError(f"query {position}: drive_resistance_ohm must be "
                         f"positive", net=net.name, stage="protocol")
    loads = payload.get("sink_loads_f")
    if loads is not None:
        if not isinstance(loads, list):
            raise InputError(f"query {position}: sink_loads_f must be a list",
                             net=net.name, stage="protocol")
        try:
            loads = [float(value) for value in loads]
        except (TypeError, ValueError) as exc:
            raise InputError(f"query {position}: non-numeric sink load",
                             net=net.name, stage="protocol",
                             cause=exc) from exc
        if len(loads) != net.num_sinks:
            raise InputError(
                f"query {position}: {len(loads)} sink loads for "
                f"{net.num_sinks} sinks", net=net.name, stage="protocol")
    return TimingQuery(net, slew, resistance, loads)


def parse_request(raw: Any,
                  max_queries: int = MAX_QUERIES_PER_REQUEST) -> ServeRequest:
    """Decode bytes/str/dict into a validated :class:`ServeRequest`.

    Raises :class:`InputError` (``stage="protocol"``) on malformed JSON,
    wrong schema version, an over-long batch, or any invalid query.
    """
    if isinstance(raw, (bytes, str)):
        try:
            raw = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise InputError(f"request body is not valid JSON: {exc}",
                             stage="protocol", cause=exc) from exc
    if not isinstance(raw, dict):
        raise InputError("request must be a JSON object", stage="protocol")
    schema = raw.get("schema")
    if schema != PROTOCOL_SCHEMA:
        raise InputError(f"unsupported schema {schema!r} "
                         f"(this server speaks {PROTOCOL_SCHEMA})",
                         stage="protocol")
    queries_raw = raw.get("queries")
    if not isinstance(queries_raw, list) or not queries_raw:
        raise InputError("request needs a non-empty 'queries' list",
                         stage="protocol")
    if len(queries_raw) > max_queries:
        raise InputError(f"request carries {len(queries_raw)} queries; "
                         f"the per-request cap is {max_queries}",
                         stage="protocol")
    deadline_ms = raw.get("deadline_ms")
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as exc:
            raise InputError("deadline_ms must be a number",
                             stage="protocol", cause=exc) from exc
        if not deadline_ms > 0.0:
            raise InputError("deadline_ms must be positive", stage="protocol")
    request_id = raw.get("id")
    if request_id is not None:
        request_id = str(request_id)
    queries = [_parse_query(entry, i) for i, entry in enumerate(queries_raw)]
    return ServeRequest(queries, request_id=request_id,
                        deadline_ms=deadline_ms)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def error_document(exc: BaseException) -> Dict[str, Any]:
    """Typed-error encoding: taxonomy class, message, provenance.

    Non-taxonomy exceptions are wrapped as an opaque ``InternalError`` —
    the message crosses the wire but the stack stays server-side.
    """
    if isinstance(exc, EstimationError):
        doc: Dict[str, Any] = {
            "type": type(exc).__name__,
            "message": exc.message,
            "provenance": exc.provenance(),
        }
        if isinstance(exc, OverloadError):
            doc["retry_after_ms"] = exc.retry_after_s * 1e3
        if isinstance(exc, DeadlineError) and exc.budget_s is not None:
            doc["budget_ms"] = exc.budget_s * 1e3
        return doc
    return {"type": "InternalError",
            "message": f"{type(exc).__name__}: {exc}", "provenance": {}}


@dataclass
class QueryResult:
    """Terminal outcome of one query: a prediction or a typed error."""

    ok: bool
    net: str
    tier: Optional[str] = None
    delays_s: Optional[List[float]] = None
    slews_s: Optional[List[float]] = None
    degraded: bool = False
    failures: List[Dict[str, str]] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        if self.ok:
            return {"ok": True, "net": self.net, "tier": self.tier,
                    "delays_s": self.delays_s, "slews_s": self.slews_s,
                    "degraded": self.degraded, "failures": self.failures,
                    "cached": self.cached}
        return {"ok": False, "net": self.net, "error": self.error}


@dataclass
class ServeResponse:
    """One request's terminal answer; every query is accounted for."""

    ok: bool
    results: List[QueryResult] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    request_id: Optional[str] = None
    served_ms: Optional[float] = None
    shed_level: int = 0

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": PROTOCOL_SCHEMA, "ok": self.ok,
                               "shed_level": self.shed_level}
        if self.request_id is not None:
            doc["id"] = self.request_id
        if self.served_ms is not None:
            doc["served_ms"] = self.served_ms
        if self.ok:
            doc["results"] = [result.to_dict() for result in self.results]
        else:
            doc["error"] = self.error
        return doc

    def encode(self) -> bytes:
        return json.dumps(self.to_dict()).encode("utf-8")


def error_response(exc: BaseException,
                   request_id: Optional[str] = None) -> ServeResponse:
    """Request-level typed failure (overload, deadline, malformed body)."""
    return ServeResponse(ok=False, error=error_document(exc),
                         request_id=request_id)


def decode_response(raw: Any) -> ServeResponse:
    """Client-side decoding; lenient about extras, strict about schema."""
    if isinstance(raw, (bytes, str)):
        try:
            raw = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise InputError(f"response body is not valid JSON: {exc}",
                             stage="protocol", cause=exc) from exc
    if not isinstance(raw, dict) or raw.get("schema") != PROTOCOL_SCHEMA:
        raise InputError("response is not a repro-serve/1 document",
                         stage="protocol")
    results = []
    for entry in raw.get("results") or []:
        results.append(QueryResult(
            ok=bool(entry.get("ok")), net=str(entry.get("net", "")),
            tier=entry.get("tier"), delays_s=entry.get("delays_s"),
            slews_s=entry.get("slews_s"),
            degraded=bool(entry.get("degraded", False)),
            failures=list(entry.get("failures") or []),
            error=entry.get("error"),
            cached=bool(entry.get("cached", False))))
    return ServeResponse(ok=bool(raw.get("ok")), results=results,
                         error=raw.get("error"), request_id=raw.get("id"),
                         served_ms=raw.get("served_ms"),
                         shed_level=int(raw.get("shed_level", 0)))


HTTP_STATUS = {
    "InputError": 400,
    "OverloadError": 429,
    "DeadlineError": 504,
    "InternalError": 500,
}


def http_status_for(response: ServeResponse) -> int:
    """HTTP status of a response document (200 when any query was served)."""
    if response.ok:
        return 200
    error_type = (response.error or {}).get("type", "InternalError")
    return HTTP_STATUS.get(str(error_type), 500)
