"""The serving estimator: shed-aware tier ladders with total termination.

One :class:`EstimationEngine` is shared by all worker threads (the
underlying :class:`~repro.robustness.fallback.FallbackChain` bookkeeping is
lock-guarded and the analytic tiers are stateless).  It owns one chain per
shed level:

* ``SHED_FULL`` — the full ladder: optional learned tier, then
  AWE -> D2M -> Elmore -> lumped-RC;
* ``SHED_ANALYTIC`` — Elmore -> lumped-RC (cheap, bounded error);
* ``SHED_LAST_RESORT`` — lumped-RC only: O(E) per net, cannot fail.

The contract of :meth:`serve_ticket` is *total termination*: every query
of the ticket ends in a prediction or a typed taxonomy error — deadline
checks run at every per-net boundary, chain failures surface as
degradation provenance, and any exception that still escapes is wrapped,
never propagated to the worker loop (the loop treats an escape as a
worker crash and engages the last-resort retry).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..design.sta import WireTimingModel
from ..features.path_features import NetContext
from ..obs import get_metrics, named_lock
from ..robustness.errors import DeadlineError, EstimationError
from ..robustness.fallback import (LAST_RESORT_TIER, FallbackChain,
                                   LumpedRCWireModel)
from .admission import SHED_ANALYTIC, SHED_FULL, SHED_LAST_RESORT, Ticket
from .batching import Batch
from .protocol import (QueryResult, ServeResponse, TimingQuery,
                       error_document, error_response)

_REQUESTS = get_metrics().counter("serve.requests")
_NETS_OK = get_metrics().counter("serve.nets_served")
_NET_ERRORS = get_metrics().counter("serve.net_errors")
_CANCELLED = get_metrics().counter("serve.deadline_cancelled_nets")
_REQUEST_SECONDS = get_metrics().histogram("serve.request_seconds")
_CACHE_HITS = get_metrics().counter("serve.cache_hits")
_CACHE_MISSES = get_metrics().counter("serve.cache_misses")
_SERVE_TIERS = "serve.tier."


class PredictionCache:
    """Content-addressed memo of full-ladder predictions (thread-safe LRU).

    The serving workload that matters — incremental timing inside a
    placement/routing loop — re-queries mostly-unchanged nets on every
    iteration, so identical (parasitics, operating point) queries recur
    constantly.  Estimation is deterministic, which makes memoization
    sound: a hit replays the stored delays/slews with the original tier
    provenance plus ``cached: true``.  Only undegraded ``SHED_FULL``
    results are stored, so a hit is never worse than a recompute.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self._lock = named_lock("PredictionCache._lock")
        from collections import OrderedDict

        self._entries: "OrderedDict[bytes, QueryResult]" = OrderedDict()  # repro-guarded-by: _lock

    def get(self, key: bytes) -> Optional[QueryResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                _CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            _CACHE_HITS.inc()
        return result

    def put(self, key: bytes, result: QueryResult) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: bytes) -> bool:
        """Metrics-free membership peek (no counters, no LRU promotion).

        Used by the batch-window prime pass to skip queries that will be
        answered from this cache anyway, without double-counting the
        ``serve.cache_*`` metrics that describe real lookups.
        """
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Guards the one-shot build of the default-context cell pair below.  The
#: old function-attribute memo (``_default_context._cells``) was written
#: unlocked from every worker thread — the very race ESCAPE001 exists to
#: flag — so the memo is now a module global with a dedicated lock.
_CONTEXT_LOCK = named_lock("repro.serve.engine._CONTEXT_LOCK")
_UNBUILT = object()  # sentinel: "never attempted" (a failed build memoizes None)
_CONTEXT_CELLS: object = _UNBUILT


def _default_context(query: TimingQuery) -> Optional[NetContext]:
    """Serving-time cell context for the learned tier.

    The wire protocol carries parasitics, not the netlist, so the learned
    tier is fed a default inverter context from the synthetic library.
    Built lazily, once, under :data:`_CONTEXT_LOCK`.
    """
    global _CONTEXT_CELLS
    with _CONTEXT_LOCK:
        if _CONTEXT_CELLS is _UNBUILT:
            try:
                from ..liberty import make_default_library

                library = make_default_library()
                inverters = library.cells_with_function("INV")
                _CONTEXT_CELLS = (inverters[0], inverters[0]) \
                    if inverters else None
            except Exception:  # pragma: no cover  # repro-lint: disable=ERR002 static library build; None degrades to contextless estimation
                _CONTEXT_CELLS = None
        cells = _CONTEXT_CELLS
    if cells is None:
        return None
    drive, load = cells  # type: ignore[misc]
    return NetContext(input_slew=query.input_slew_s, drive_cell=drive,
                      load_cells=[load] * query.net.num_sinks)


class EstimationEngine:
    """Shed-aware wire-timing ladders behind the batching layer."""

    def __init__(self, learned: Optional[WireTimingModel] = None,
                 net_timeout: Optional[float] = 0.25,
                 clock: Callable[[], float] = time.monotonic,
                 extra_tiers: Optional[List[WireTimingModel]] = None,
                 cache_size: int = 4096) -> None:
        from ..design.sta import (AWEWireModel, D2MWireModel,
                                  ElmoreWireModel)

        self.clock = clock
        self.learned = learned
        self.cache = PredictionCache(cache_size)
        full: List[WireTimingModel] = []
        if learned is not None:
            full.append(learned)
        if extra_tiers:
            full.extend(extra_tiers)
        full.extend([AWEWireModel(), D2MWireModel(), ElmoreWireModel()])
        self._chains: Dict[int, FallbackChain] = {
            SHED_FULL: FallbackChain(full, net_timeout=net_timeout,
                                     keep_records=False),
            SHED_ANALYTIC: FallbackChain([ElmoreWireModel()],
                                         net_timeout=net_timeout,
                                         keep_records=False),
            SHED_LAST_RESORT: FallbackChain([], last_resort=True,
                                            keep_records=False),
        }

    def chain_for(self, shed_level: int) -> FallbackChain:
        return self._chains.get(shed_level, self._chains[SHED_LAST_RESORT])

    # ------------------------------------------------------------------
    def serve_query(self, query: TimingQuery, ticket: Ticket,
                    shed_level: int) -> QueryResult:
        """One net's terminal outcome; never raises (except exits)."""
        now = self.clock()
        if ticket.expired(now):
            _CANCELLED.inc()
            budget = ticket.request.deadline_ms
            return QueryResult(ok=False, net=query.net.name, error=(
                error_document(DeadlineError(
                    "per-request budget exhausted before this net was "
                    "reached", budget_s=None if budget is None
                    else budget / 1e3,
                    elapsed_s=now - ticket.enqueued_at,
                    net=query.net.name, stage="serve"))))
        # Cache lookup runs at every shed level (a hit is free work); only
        # undegraded full-ladder results are ever stored.
        try:
            key: Optional[bytes] = query.cache_key()
        except Exception:  # repro-lint: disable=ERR002
            key = None
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                _NETS_OK.inc()
                get_metrics().counter(_SERVE_TIERS + str(hit.tier)).inc()
                return QueryResult(
                    ok=True, net=query.net.name, tier=hit.tier,
                    delays_s=hit.delays_s, slews_s=hit.slews_s,
                    degraded=hit.degraded, failures=list(hit.failures),
                    cached=True)
        chain = self.chain_for(shed_level)
        try:
            if query.sink_loads_f is not None:
                loads = np.asarray(query.sink_loads_f, dtype=np.float64)
            else:
                loads = np.zeros(query.net.num_sinks)
            context = _default_context(query) if self.learned is not None \
                else None
            delays, slews, record = chain.wire_timing_with_provenance(
                query.net, query.input_slew_s, loads,
                query.drive_resistance_ohm, context=context)
        except (KeyboardInterrupt, SystemExit):
            raise
        except EstimationError as exc:
            _NET_ERRORS.inc()
            return QueryResult(ok=False, net=query.net.name,
                               error=error_document(exc))
        # Terminal belt-and-braces: the chain's last resort cannot fail,
        # so anything landing here is a server-side bug — still answered
        # as a typed error, never a dropped query.
        except Exception as exc:  # repro-lint: disable=ERR002
            _NET_ERRORS.inc()
            return QueryResult(ok=False, net=query.net.name,
                               error=error_document(exc))
        _NETS_OK.inc()
        get_metrics().counter(_SERVE_TIERS + record.tier).inc()
        result = QueryResult(
            ok=True, net=query.net.name, tier=record.tier,
            delays_s=[float(v) for v in delays],
            slews_s=[float(v) for v in slews],
            degraded=record.degraded or shed_level != SHED_FULL,
            failures=[{"tier": f.tier, "reason": f.reason}
                      for f in record.failures])
        if key is not None and shed_level == SHED_FULL and not result.degraded:
            self.cache.put(key, result)
        return result

    def serve_ticket(self, ticket: Ticket, shed_level: int) -> bool:
        """Answer one ticket completely; True when nothing degraded.

        The return value feeds the admission breaker: a ticket whose
        queries all resolved on a non-terminal tier counts as healthy.
        """
        start = self.clock()
        results = [self.serve_query(query, ticket, shed_level)
                   for query in ticket.request.queries]
        elapsed = self.clock() - start
        response = ServeResponse(ok=True, results=results,
                                 served_ms=elapsed * 1e3,
                                 shed_level=shed_level)
        ticket.finish(response)
        _REQUESTS.inc()
        _REQUEST_SECONDS.observe(max(self.clock() - ticket.enqueued_at,
                                     1e-9))
        return all(r.ok and r.tier != LAST_RESORT_TIER for r in results)

    def serve_batch(self, batch: Batch, shed_level: int) -> int:
        """Serve every ticket of a batch; returns count of healthy ones.

        A collected batch window is the serving-side batching opportunity:
        before the per-query ladder walk, every live query's net goes
        through the primary tier's ``prime_nets`` hook in one stacked
        solve (see :mod:`repro.analysis.batch`), so the subsequent
        :meth:`serve_query` calls hit warm caches.  Priming is best-effort
        and never affects the ticket outcome.
        """
        self._prime_batch(batch, shed_level)
        return sum(1 if self.serve_ticket(ticket, shed_level) else 0
                   for ticket in batch.tickets)

    def _prime_batch(self, batch: Batch, shed_level: int) -> None:
        """Bulk-warm the chain's primary-tier cache for one batch window."""
        chain = self.chain_for(shed_level)
        primer = getattr(chain, "prime_nets", None)
        if primer is None:
            return
        from ..analysis.batch import WirePrimeRequest

        now = self.clock()
        requests = []
        seen = set()
        for ticket in batch.tickets:
            if ticket.done.is_set() or ticket.expired(now):
                continue
            for query in ticket.request.queries:
                try:
                    key: Optional[bytes] = query.cache_key()
                except Exception:  # repro-lint: disable=ERR002 mirrors serve_query's key guard
                    key = None
                if key is not None and (key in seen
                                        or self.cache.contains(key)):
                    continue
                if key is not None:
                    seen.add(key)
                if query.sink_loads_f is not None:
                    loads = np.asarray(query.sink_loads_f,
                                       dtype=np.float64)
                else:
                    loads = np.zeros(query.net.num_sinks)
                requests.append(WirePrimeRequest(
                    query.net, loads, query.drive_resistance_ohm))
        if not requests:
            return
        try:
            primer(requests)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # repro-lint: disable=ERR002 prime is a best-effort warm-up; queries recompute on miss
            pass

    # ------------------------------------------------------------------
    def serve_batch_last_resort(self, batch: Batch,
                                reason: str) -> None:
        """Crash-recovery tier: finish a batch on the lumped-RC ladder.

        The serial-retry idiom of :func:`repro.parallel.parallel_map`
        applied to threads: after a worker dies mid-batch, its tickets are
        re-served here on the tier that cannot fail, so the crash costs
        accuracy, never answers.  Already-finished tickets are skipped
        (``Ticket.finish`` is first-writer-wins).
        """
        get_metrics().counter("serve.last_resort_retries").inc()
        for ticket in batch.tickets:
            if ticket.done.is_set():
                continue
            try:
                self.serve_ticket(ticket, SHED_LAST_RESORT)
            except (KeyboardInterrupt, SystemExit):
                raise
            # The recovery tier must not crash the supervisor; a failure
            # here still terminates the ticket, with the crash reason.
            except Exception as exc:  # repro-lint: disable=ERR002
                ticket.finish(error_response(exc))
        for ticket in batch.tickets:
            if not ticket.done.is_set():  # pragma: no cover - belt/braces
                ticket.finish(error_response(EstimationError(
                    f"worker crashed while serving this request: {reason}",
                    stage="serve")))

    # ------------------------------------------------------------------
    def tier_counters(self) -> Dict[str, int]:
        """Merged nets-served-per-tier view across all shed chains."""
        merged: Dict[str, int] = {}
        for chain in self._chains.values():
            for tier, count in chain.counters().items():
                merged[tier] = merged.get(tier, 0) + count
        return merged


__all__ = ["EstimationEngine", "LumpedRCWireModel"]
