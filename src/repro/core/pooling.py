"""Path pooling — Eq. (4) of the paper.

The wire-path representation concatenates two things:

* the *mean* of the final node representations over the nodes the path
  visits (local + global structure information), and
* the raw engineered path feature vector ``h_q`` (Table I).

Because each net has only a handful of paths (Fig. 2(b)), this per-path
pooling is cheap — the observation that motivates the whole paper.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..features.pipeline import NetSample
from ..nn.tensor import Tensor, concat, matmul_const, stack


def path_pooling_matrix(sample: NetSample, mode: str = "mean") -> np.ndarray:
    """Pooling operator ``P`` with ``P @ X = per-path pooled node reps``.

    With ``mode="mean"``, row ``q`` has ``1 / N_q`` at each node the path
    visits — the ``(1/N_q) * sum_{v_i in V_q}`` of Eq. (4) as a single
    constant matrix, so one matmul pools every path at once.  With
    ``mode="sum"`` the row holds plain ones (extensive pooling).
    """
    if mode not in ("mean", "sum"):
        raise ValueError(f"unknown pooling mode {mode!r}")
    matrix = np.zeros((sample.num_paths, sample.num_nodes), dtype=np.float64)
    for q, path in enumerate(sample.paths):
        weight = 1.0 / len(path.node_indices) if mode == "mean" else 1.0
        for node in path.node_indices:
            matrix[q, node] += weight
    return matrix


def pool_paths(node_representations: Tensor, sample: NetSample,
               include_path_features: bool = True,
               extensive: bool = False) -> Tensor:
    """Build path representations ``F = {f_q}`` per Eq. (4).

    Parameters
    ----------
    node_representations:
        (N, hidden) output of the transformer module.
    sample:
        The net sample providing path membership and raw path features.
    include_path_features:
        Concatenate the Table I path features (GNNTrans behaviour).  The
        graph baselines set this to ``False`` — no engineered path-feature
        pathway — which is exactly the handicap the paper identifies in
        them.
    extensive:
        Additionally concatenate the *sum*-pooled node representations and
        the sink node's representation.  Mean pooling alone can express
        neither extensive path quantities (total path resistance scales
        with stage count; a mean does not) nor per-sink identity, so the
        baselines use mean ‖ sum ‖ sink pooling; see DESIGN.md's
        substitution notes and the pooling ablation bench.
    """
    parts = [matmul_const(path_pooling_matrix(sample, "mean"),
                          node_representations)]
    if extensive:
        parts.append(matmul_const(path_pooling_matrix(sample, "sum"),
                                  node_representations))
        parts.append(matmul_const(sink_selection_matrix(sample),
                                  node_representations))
    if include_path_features:
        parts.append(Tensor(np.vstack([p.features for p in sample.paths])))
    return concat(parts, axis=-1) if len(parts) > 1 else parts[0]


def sink_selection_matrix(sample: NetSample) -> np.ndarray:
    """Selector ``S`` with ``S @ X = per-path sink-node representations``."""
    matrix = np.zeros((sample.num_paths, sample.num_nodes), dtype=np.float64)
    for q, path in enumerate(sample.paths):
        matrix[q, path.sink] = 1.0
    return matrix
