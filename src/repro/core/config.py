"""GNNTrans hyper-parameter configurations, including the paper's Plans.

Table V evaluates three depth splits of the same total budget:
PlanA (L1=25, L2=5), PlanB (L1=20, L2=10), PlanC (L1=15, L2=15).

Training 30-layer stacks is a GPU-scale exercise; the default configs keep
the Plans' *ratios* at CPU-friendly depth (scale 1/5) — PlanA (5, 1),
PlanB (4, 2), PlanC (3, 3) — while :func:`paper_plan` returns the
full-depth configurations for users with the budget to train them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class GNNTransConfig:
    """Architecture and training hyper-parameters for GNNTrans.

    Attributes
    ----------
    l1:
        Number of GNN (weighted GraphSage) layers.
    l2:
        Number of graph-transformer layers.
    hidden:
        Node-representation width.
    num_heads:
        Attention heads per transformer layer (the paper's ``K``).
    head_hidden:
        Hidden widths of the slew/delay MLPs.
    residual, layer_norm:
        Stability options on the GNN / transformer stacks.
    condition_delay_on_slew:
        Eq. (6) conditioning; disable only for ablation.
    slew_parameterization:
        How the slew head's target is expressed:

        * ``"absolute"``  — predict the output slew directly (Eq. 5 as
          written);
        * ``"residual"``  — predict ``slew_out - slew_in``;
        * ``"quadrature"`` (default) — predict the intrinsic wire slew
          ``q = sqrt(slew_out^2 - slew_in^2)``, reconstructing
          ``slew_out = sqrt(slew_in^2 + q^2)``.  For a single-pole net
          ``q = ln 9 * tau`` exactly, so q is nearly independent of the
          input transition; reconstruction also *compresses* prediction
          error by the factor ``q / slew_out < 1``, which is what keeps
          multi-stage STA slew propagation tight (Table V).
    learning_rate, epochs, batch_size, grad_clip:
        Training-loop settings.
    """

    l1: int = 4
    l2: int = 2
    hidden: int = 32
    num_heads: int = 4
    head_hidden: Tuple[int, ...] = (64, 32)
    residual: bool = True
    layer_norm: bool = True
    adjacency_norm: str = "row"
    condition_delay_on_slew: bool = True
    include_path_features: bool = True
    slew_parameterization: str = "quadrature"
    learning_rate: float = 3e-3
    epochs: int = 60
    batch_size: int = 8
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.l1 < 1:
            raise ValueError("l1 must be >= 1")
        if self.l2 < 0:
            raise ValueError("l2 must be >= 0")
        if self.hidden % self.num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")
        if self.slew_parameterization not in ("absolute", "residual",
                                              "quadrature"):
            raise ValueError(
                f"unknown slew parameterization "
                f"{self.slew_parameterization!r}")

    @property
    def total_layers(self) -> int:
        return self.l1 + self.l2


# CPU-scaled counterparts of Table V's plans (depth ratio preserved 5:1).
PLAN_A = GNNTransConfig(l1=5, l2=1)
PLAN_B = GNNTransConfig(l1=4, l2=2)
PLAN_C = GNNTransConfig(l1=3, l2=3)

PLANS: Dict[str, GNNTransConfig] = {
    "PlanA": PLAN_A,
    "PlanB": PLAN_B,
    "PlanC": PLAN_C,
}

DEFAULT_CONFIG = PLAN_B  # the paper's headline configuration


def paper_plan(name: str) -> GNNTransConfig:
    """Full-depth paper configurations: A=(25,5), B=(20,10), C=(15,15)."""
    depths = {"PlanA": (25, 5), "PlanB": (20, 10), "PlanC": (15, 15)}
    try:
        l1, l2 = depths[name]
    except KeyError:
        raise KeyError(f"unknown plan {name!r}; choose from {sorted(depths)}") from None
    return replace(PLANS[name], l1=l1, l2=l2)
