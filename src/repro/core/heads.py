"""Prediction heads — Eq. (5) and Eq. (6) of the paper.

Wire slew is predicted from the path representation alone; wire delay is
predicted from the path representation *concatenated with the predicted
slew* — the slew estimate conditions the delay estimate, mirroring how a
timer derives delay and transition together.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..nn.layers import MLP, Module
from ..nn.tensor import Tensor, concat


class TimingHeads(Module):
    """Slew head (Eq. 5) and slew-conditioned delay head (Eq. 6).

    Parameters
    ----------
    in_features:
        Path-representation width.
    hidden:
        Hidden-layer widths of each MLP (``theta`` and ``phi``).
    condition_delay_on_slew:
        The paper's Eq. 6 behaviour; disable for the independent-heads
        ablation.
    """

    def __init__(self, in_features: int, hidden: Sequence[int],
                 rng: np.random.Generator,
                 condition_delay_on_slew: bool = True) -> None:
        super().__init__()
        self.condition_delay_on_slew = condition_delay_on_slew
        self.slew_mlp = MLP(in_features, hidden, 1, rng)          # theta
        delay_in = in_features + (1 if condition_delay_on_slew else 0)
        self.delay_mlp = MLP(delay_in, hidden, 1, rng)            # phi

    def forward(self, path_representations: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(slew, delay)`` predictions, each of shape (P,)."""
        # repro-shape: path_representations=(p, d):f64
        slew = self.slew_mlp(path_representations)                # Eq. (5)
        if self.condition_delay_on_slew:
            delay_input = concat([path_representations, slew], axis=-1)
        else:
            delay_input = path_representations
        delay = self.delay_mlp(delay_input)                       # Eq. (6)
        return slew.reshape(-1), delay.reshape(-1)
