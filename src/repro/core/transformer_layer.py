"""Graph-transformer layer — Eq. (2)/(3) of the paper.

Multi-head self-attention over *all* nodes of the RC net, independent of
edge connectivity: every capacitance can attend to every other, which is
how GNNTrans captures global long-range relationships without stacking GNN
layers into the over-smoothing regime.

Eq. (2) builds the per-head attention map from learnable query/key
projections; Eq. (3) aggregates value projections over all nodes,
concatenates the heads, projects with ``W3`` and adds the residual input.
A pre-attention LayerNorm (standard transformer practice, ablatable) keeps
the deep stack trainable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.layers import LayerNorm, Linear, Module
from ..nn.tensor import Tensor, concat


class MultiHeadSelfAttention(Module):
    """K-head scaled dot-product self-attention with residual (Eq. 2-3)."""

    def __init__(self, features: int, num_heads: int,
                 rng: np.random.Generator, layer_norm: bool = True) -> None:
        super().__init__()
        if features % num_heads != 0:
            raise ValueError(
                f"features ({features}) must be divisible by heads ({num_heads})")
        self.num_heads = num_heads
        self.head_dim = features // num_heads
        # Per-head W_Q, W_K, W_V — the paper writes them per head, without
        # bias terms (pure linear transformation matrices).
        self.w_query = [Linear(features, self.head_dim, rng, bias=False)
                        for _ in range(num_heads)]
        self.w_key = [Linear(features, self.head_dim, rng, bias=False)
                      for _ in range(num_heads)]
        self.w_value = [Linear(features, self.head_dim, rng, bias=False)
                        for _ in range(num_heads)]
        self.w_out = Linear(features, features, rng, bias=False)  # W3
        self.norm = LayerNorm(features) if layer_norm else None
        self._scale = 1.0 / np.sqrt(self.head_dim)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: (N, features) node representations; returns same shape."""
        normed = self.norm(x) if self.norm is not None else x
        heads: List[Tensor] = []
        for k in range(self.num_heads):
            query = self.w_query[k](normed)          # (N, d_k)
            key = self.w_key[k](normed)              # (N, d_k)
            value = self.w_value[k](normed)          # (N, d_k)
            scores = (query @ key.T) * self._scale   # (N, N)
            attention = scores.softmax(axis=-1)      # Eq. (2)
            heads.append(attention @ value)          # (N, d_k)
        multi = concat(heads, axis=-1)               # ||_k  in Eq. (3)
        return x + self.w_out(multi)                 # residual of Eq. (3)

    def attention_maps(self, x: Tensor) -> List[np.ndarray]:
        """Per-head attention matrices for inspection (no gradients)."""
        normed = self.norm(x) if self.norm is not None else x
        maps: List[np.ndarray] = []
        for k in range(self.num_heads):
            query = self.w_query[k](normed).data
            key = self.w_key[k](normed).data
            scores = (query @ key.T) * self._scale
            shifted = scores - scores.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            maps.append(exp / exp.sum(axis=-1, keepdims=True))
        return maps


class TransformerModule(Module):
    """The paper's graph-transformer module: ``L2`` stacked attention layers."""

    def __init__(self, features: int, num_layers: int, num_heads: int,
                 rng: np.random.Generator, layer_norm: bool = True) -> None:
        super().__init__()
        if num_layers < 0:
            raise ValueError("layer count cannot be negative")
        self.layers = [
            MultiHeadSelfAttention(features, num_heads, rng, layer_norm)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    @property
    def num_layers(self) -> int:
        return len(self.layers)
