"""Weighted-GraphSage GNN layer — Eq. (1) of the paper.

The paper customizes GraphSage so that neighbor aggregation is weighted by
the *resistance value* on each edge rather than treated as binary
connectivity:

    x_i' = ReLU( W1 x_i  +  W2 * sum_u a_iu x_u )

with ``a_iu`` the (scaled) resistance between nodes ``i`` and ``u``.  This
makes the layer strictly more expressive than plain GraphSage under the
1-WL test, because two neighborhoods with identical topology but different
resistances now aggregate differently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, matmul_const


def normalize_adjacency(adjacency: np.ndarray, mode: str = "row") -> np.ndarray:
    """Normalize a weighted adjacency matrix for stable deep aggregation.

    ``"row"`` divides each row by its sum (weighted-mean aggregation,
    default), ``"none"`` keeps the raw scaled resistance weights of
    Section III-B.  Row normalization keeps activations bounded across the
    paper's deep (up to 25-layer) GNN stacks.
    """
    if mode == "none":
        return adjacency
    if mode == "row":
        row_sums = adjacency.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return adjacency / row_sums
    raise ValueError(f"unknown adjacency normalization {mode!r}")


class WeightedSageLayer(Module):
    """One resistance-weighted GraphSage layer (Eq. 1).

    Parameters
    ----------
    in_features, out_features:
        Representation dimensions.
    rng:
        Weight-init generator.
    residual:
        Adds the input back to the output when dimensions allow — a
        standard stabilization for the deep stacks the paper trains
        (ablatable; see ``benchmarks/bench_ablations.py``).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, residual: bool = True) -> None:
        super().__init__()
        self.w_self = Linear(in_features, out_features, rng, activation="relu")
        self.w_neigh = Linear(in_features, out_features, rng, bias=False,
                              activation="relu")
        self.residual = residual and in_features == out_features

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        """``x``: (N, in_features); ``adjacency``: (N, N) normalized weights."""
        aggregated = matmul_const(adjacency, x)
        out = (self.w_self(x) + self.w_neigh(aggregated)).relu()
        if self.residual:
            out = out + x
        return out


class GNNModule(Module):
    """The paper's GNN module: ``L1`` stacked weighted-Sage layers.

    The first layer maps raw node features into the hidden width; the
    remaining ``L1 - 1`` layers are hidden-to-hidden with residuals.
    Produces the pre-node representations ``X^(L1)`` fed to the graph
    transformer.
    """

    def __init__(self, in_features: int, hidden: int, num_layers: int,
                 rng: np.random.Generator, residual: bool = True,
                 adjacency_norm: str = "row") -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("GNN module needs at least one layer")
        self.adjacency_norm = adjacency_norm
        dims = [in_features] + [hidden] * num_layers
        self.layers = [
            WeightedSageLayer(dims[i], dims[i + 1], rng, residual=residual)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        adjacency = normalize_adjacency(adjacency, self.adjacency_norm)
        for layer in self.layers:
            x = layer(x, adjacency)
        return x

    @property
    def num_layers(self) -> int:
        return len(self.layers)
