"""GNNTrans — the paper's primary contribution, plus its high-level API.

Architecture (Fig. 4): a weighted-GraphSage GNN module for local structure
(Eq. 1), a graph-transformer module for global relationships (Eq. 2-3),
path pooling with raw path features (Eq. 4), and slew/delay MLP heads
(Eq. 5-6).  :class:`WireTimingEstimator` wraps training/inference;
:class:`LearnedWireModel` plugs the result into STA.
"""

from .config import (DEFAULT_CONFIG, PLAN_A, PLAN_B, PLAN_C, PLANS,
                     GNNTransConfig, paper_plan)
from .gnn_layer import GNNModule, WeightedSageLayer, normalize_adjacency
from .transformer_layer import MultiHeadSelfAttention, TransformerModule
from .pooling import path_pooling_matrix, pool_paths
from .heads import TimingHeads
from .gnntrans import GNNTrans
from .estimator import (EvalMetrics, LabelScaler, LearnedWireModel,
                        WireTimingEstimator)

__all__ = [
    "GNNTransConfig", "PLANS", "PLAN_A", "PLAN_B", "PLAN_C",
    "DEFAULT_CONFIG", "paper_plan",
    "WeightedSageLayer", "GNNModule", "normalize_adjacency",
    "MultiHeadSelfAttention", "TransformerModule",
    "pool_paths", "path_pooling_matrix",
    "TimingHeads", "GNNTrans",
    "WireTimingEstimator", "LearnedWireModel", "EvalMetrics", "LabelScaler",
]
