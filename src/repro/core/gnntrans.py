"""The GNNTrans model — the paper's primary contribution (Fig. 4).

Pipeline per RC net:

1. **GNN module** (``L1`` weighted-GraphSage layers, Eq. 1) learns local
   short-range structure from the resistance-weighted adjacency;
2. **Graph-transformer module** (``L2`` multi-head self-attention layers,
   Eq. 2-3) learns global long-range relationships among *all* nodes,
   sidestepping GNN over-smoothing;
3. **Pooling** (Eq. 4) averages final node representations over each wire
   path and concatenates the raw Table I path features;
4. **Heads** (Eq. 5-6) predict wire slew, then wire delay conditioned on
   the predicted slew.

The model operates on :class:`~repro.features.NetSample` objects and emits
predictions in the (standardized) label space; unit handling lives in
:class:`~repro.core.estimator.WireTimingEstimator`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..features.pipeline import NetSample
from ..nn.layers import Module
from ..nn.tensor import Tensor
from .config import DEFAULT_CONFIG, GNNTransConfig
from .gnn_layer import GNNModule
from .heads import TimingHeads
from .pooling import pool_paths
from .transformer_layer import TransformerModule


class GNNTrans(Module):
    """End-to-end wire-timing model of Fig. 4.

    Parameters
    ----------
    num_node_features:
        Width of raw node feature vectors (8 for Table I).
    num_path_features:
        Width of raw path feature vectors (10 for Table I).
    config:
        Architecture/hyper-parameter bundle (:class:`GNNTransConfig`).
    rng:
        Weight-init generator (derived from ``config.seed`` when omitted).
    """

    def __init__(self, num_node_features: int, num_path_features: int,
                 config: GNNTransConfig = DEFAULT_CONFIG,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.gnn = GNNModule(num_node_features, config.hidden, config.l1, rng,
                             residual=config.residual,
                             adjacency_norm=config.adjacency_norm)
        self.transformer = TransformerModule(config.hidden, config.l2,
                                             config.num_heads, rng,
                                             layer_norm=config.layer_norm)
        representation_width = config.hidden + (
            num_path_features if config.include_path_features else 0)
        self.heads = TimingHeads(representation_width, config.head_hidden, rng,
                                 config.condition_delay_on_slew)

    # ------------------------------------------------------------------
    def encode(self, sample: NetSample) -> Tensor:
        """Final node representations ``X^(L1+L2)`` for one net."""
        x = Tensor(sample.node_features)
        x = self.gnn(x, sample.adjacency)
        return self.transformer(x)

    def path_representations(self, sample: NetSample) -> Tensor:
        """Wire-path representations ``F = {f_q}`` (Eq. 4)."""
        nodes = self.encode(sample)
        return pool_paths(nodes, sample,
                          include_path_features=self.config.include_path_features)

    def forward(self, sample: NetSample) -> Tuple[Tensor, Tensor]:
        """Predict ``(slew, delay)`` for every wire path of ``sample``.

        Both outputs have shape ``(num_paths,)`` in the label space the
        model was trained in.
        """
        return self.heads(self.path_representations(sample))

    def predict(self, sample: NetSample) -> Tuple[np.ndarray, np.ndarray]:
        """Inference-mode numpy predictions for one net."""
        was_training = self.training
        self.eval()
        try:
            slew, delay = self.forward(sample)
        finally:
            if was_training:
                self.train()
        return slew.data.copy(), delay.data.copy()
