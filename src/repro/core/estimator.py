"""High-level wire-timing estimation API.

:class:`WireTimingEstimator` wraps any per-net model (GNNTrans by default,
the graph baselines via ``model_factory``) with everything the experiments
need: label standardization, the training loop, R^2 / max-error evaluation,
persistence, and an adapter (:class:`LearnedWireModel`) that plugs the
trained estimator into the STA engine as a wire-delay model — the Table V
"Our Work" flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..design.sta import WireTimingModel
from ..obs import get_metrics, get_tracer
from ..robustness.errors import InputError, ModelError
from ..features.path_features import NetContext
from ..features.pipeline import FeatureScaler, NetSample, build_net_sample
from ..nn.layers import Module
from ..nn.loss import mse_loss
from ..nn.metrics import max_abs_error, r2_score
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..nn.trainer import Trainer, TrainingHistory
from ..parallel import parallel_map
from ..rcnet.graph import RCNet
from .config import DEFAULT_CONFIG, GNNTransConfig
from .gnntrans import GNNTrans

_PS = 1e-12
# Bound on the in-memory prediction provenance log (old entries are dropped
# first; the per-tier counters are never trimmed).
_MAX_PROVENANCE_RECORDS = 4096

ModelFactory = Callable[[int, int, GNNTransConfig, np.random.Generator], Module]

_PREDICTIONS = get_metrics().counter("estimator.predictions")
_PRIOR_FALLBACKS = get_metrics().counter("estimator.label_prior_fallbacks")


@dataclass
class PredictionRecord:
    """Provenance of one per-net prediction: which tier produced it.

    ``tier`` is ``"model"`` for a healthy learned prediction or
    ``"label-prior"`` when non-finite model output (e.g. corrupted weights)
    was replaced by the training-label prior mean.
    """

    net: str
    design: str
    tier: str
    reason: Optional[str] = None


@dataclass
class EvalMetrics:
    """Accuracy summary in the units the paper reports.

    ``r2_slew``/``r2_delay`` are the Table III/IV scores; the max-error
    fields are in picoseconds (Table V's "MAE").
    """

    r2_slew: float
    r2_delay: float
    max_err_slew_ps: float
    max_err_delay_ps: float
    num_paths: int

    def __str__(self) -> str:
        return (f"R2 slew={self.r2_slew:.3f} delay={self.r2_delay:.3f} "
                f"maxerr slew={self.max_err_slew_ps:.2f}ps "
                f"delay={self.max_err_delay_ps:.2f}ps (n={self.num_paths})")


class LabelScaler:
    """Standardizes slew/delay labels (picoseconds) for training."""

    def __init__(self) -> None:
        self.slew_mean = 0.0
        self.slew_std = 1.0
        self.delay_mean = 0.0
        self.delay_std = 1.0

    def fit(self, samples: Sequence[NetSample]) -> "LabelScaler":
        slews = np.array([p.label_slew for s in samples for p in s.paths])
        delays = np.array([p.label_delay for s in samples for p in s.paths])
        return self.fit_values(slews, delays)

    def fit_values(self, slews: np.ndarray, delays: np.ndarray
                   ) -> "LabelScaler":
        """Fit directly on target arrays (e.g. slew residuals)."""
        if slews.size == 0:
            raise ValueError("cannot fit label scaler without labeled paths")
        if not (np.all(np.isfinite(slews)) and np.all(np.isfinite(delays))):
            raise ValueError(
                "labels contain NaN/inf — samples built with labeled=False "
                "are inference-only and cannot be used for training")
        self.slew_mean = float(slews.mean())
        self.slew_std = float(max(slews.std(), 1e-9))
        self.delay_mean = float(delays.mean())
        self.delay_std = float(max(delays.std(), 1e-9))
        return self

    def normalize(self, slews: np.ndarray, delays: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
        return ((slews - self.slew_mean) / self.slew_std,
                (delays - self.delay_mean) / self.delay_std)

    def denormalize(self, slews: np.ndarray, delays: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        return (slews * self.slew_std + self.slew_mean,
                delays * self.delay_std + self.delay_mean)

    def state(self) -> Dict[str, float]:
        return {"slew_mean": self.slew_mean, "slew_std": self.slew_std,
                "delay_mean": self.delay_mean, "delay_std": self.delay_std}

    @classmethod
    def from_state(cls, state: Dict[str, float]) -> "LabelScaler":
        scaler = cls()
        scaler.slew_mean = float(state["slew_mean"])
        scaler.slew_std = float(state["slew_std"])
        scaler.delay_mean = float(state["delay_mean"])
        scaler.delay_std = float(state["delay_std"])
        return scaler


def _default_factory(num_node_features: int, num_path_features: int,
                     config: GNNTransConfig,
                     rng: np.random.Generator) -> Module:
    return GNNTrans(num_node_features, num_path_features, config, rng)


class WireTimingEstimator:
    """Trainable wire slew/delay estimator with a scikit-style API.

    Parameters
    ----------
    config:
        Hyper-parameters (defaults to the scaled PlanB).
    model_factory:
        Alternative per-net model constructor; every graph baseline in
        :mod:`repro.baselines` plugs in through this hook, so all models
        share identical training and evaluation machinery.
    """

    def __init__(self, config: GNNTransConfig = DEFAULT_CONFIG,
                 model_factory: Optional[ModelFactory] = None) -> None:
        self.config = config
        self.model_factory = model_factory or _default_factory
        self.model: Optional[Module] = None
        self.label_scaler = LabelScaler()
        self.history: Optional[TrainingHistory] = None
        # Degradation observability: predictions replaced by the label-prior
        # fallback are counted and logged here, never returned silently.
        self.degradation_counts: Dict[str, int] = {"model": 0,
                                                   "label-prior": 0}
        self.provenance_log: List[PredictionRecord] = []
        self.last_record: Optional[PredictionRecord] = None

    @property
    def last_tier(self) -> Optional[str]:
        """Tier that served the most recent :meth:`predict_sample` call."""
        return self.last_record.tier if self.last_record is not None else None

    # ------------------------------------------------------------------
    def fit(self, train_samples: Sequence[NetSample],
            val_samples: Optional[Sequence[NetSample]] = None,
            epochs: Optional[int] = None, patience: Optional[int] = 12,
            verbose: bool = False) -> TrainingHistory:
        """Train on labeled samples, minimizing MSE of slew + delay (S IV)."""
        if not train_samples:
            raise ValueError("fit() requires at least one training sample")
        first = train_samples[0]
        rng = np.random.default_rng(self.config.seed)
        self.model = self.model_factory(
            first.node_features.shape[1], first.paths[0].features.shape[0],
            self.config, rng)
        fit_pool = list(train_samples) + list(val_samples or [])
        all_slews = np.concatenate([self._slew_targets(s) for s in fit_pool])
        all_delays = np.array(
            [p.label_delay for s in fit_pool for p in s.paths])
        self.label_scaler.fit_values(all_slews, all_delays)

        scaler = self.label_scaler
        slew_targets = self._slew_targets

        def loss_fn(model: Module, sample: NetSample) -> Tensor:
            slew_pred, delay_pred = model(sample)
            slews = slew_targets(sample)
            _, delays = sample.labels()
            slew_t, delay_t = scaler.normalize(slews, delays)
            return (mse_loss(slew_pred, Tensor(slew_t))
                    + mse_loss(delay_pred, Tensor(delay_t)))

        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        trainer = Trainer(self.model, optimizer, loss_fn,
                          grad_clip=self.config.grad_clip,
                          rng=np.random.default_rng(self.config.seed + 1))
        with get_tracer().span("estimator.fit",
                               samples=len(train_samples)) as span:
            self.history = trainer.fit(
                list(train_samples), epochs=epochs or self.config.epochs,
                batch_size=self.config.batch_size,
                val_samples=list(val_samples) if val_samples else None,
                patience=patience, verbose=verbose)
            span.set(epochs_run=len(self.history))
        return self.history

    # ------------------------------------------------------------------
    def _slew_targets(self, sample: NetSample) -> np.ndarray:
        """Training target for the slew head, per the parameterization."""
        slews = np.array([p.label_slew for p in sample.paths])
        mode = self.config.slew_parameterization
        if mode == "absolute":
            return slews
        input_slews = np.array([p.input_slew_ps for p in sample.paths])
        if mode == "residual":
            return slews - input_slews
        return np.sqrt(np.maximum(slews ** 2 - input_slews ** 2, 0.0))

    def _reconstruct_slews(self, predicted: np.ndarray,
                           sample: NetSample) -> np.ndarray:
        """Invert :meth:`_slew_targets` back to absolute slew in ps."""
        mode = self.config.slew_parameterization
        if mode == "absolute":
            return predicted
        input_slews = np.array([p.input_slew_ps for p in sample.paths])
        if mode == "residual":
            return predicted + input_slews
        return np.sqrt(input_slews ** 2 + np.maximum(predicted, 0.0) ** 2)

    def predict_sample(self, sample: NetSample) -> Tuple[np.ndarray, np.ndarray]:
        """Per-path ``(slew_ps, delay_ps)`` predictions for one net.

        Non-finite model output (corrupted weights, poisoned activations)
        is replaced per path by the training-label prior mean; the
        substitution is recorded in :attr:`degradation_counts` and
        :attr:`provenance_log` under tier ``"label-prior"`` rather than
        propagated or raised.
        """
        self._require_fitted()
        _PREDICTIONS.inc()
        was_training = self.model.training
        self.model.eval()
        try:
            slew, delay = self.model(sample)
            slew_ps, delay_ps = self.label_scaler.denormalize(slew.data,
                                                              delay.data)
            slew_ps = self._reconstruct_slews(slew_ps, sample)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # degraded-but-valid beats an aborted run
            error = ModelError(
                f"inference failed: {type(exc).__name__}: {exc}",
                net=sample.name, design=sample.design, stage="predict",
                tier="label-prior", cause=exc)
            prior_slew, prior_delay = self._prior_prediction(sample)
            self._record(sample, "label-prior", str(error))
            return prior_slew, prior_delay
        finally:
            if was_training:
                self.model.train()

        finite = np.isfinite(slew_ps) & np.isfinite(delay_ps)
        if not np.all(finite):
            prior_slew, prior_delay = self._prior_prediction(sample)
            slew_ps = np.where(finite, slew_ps, prior_slew)
            delay_ps = np.where(finite, delay_ps, prior_delay)
            bad = int(finite.size - np.count_nonzero(finite))
            self._record(sample, "label-prior",
                         f"{bad}/{finite.size} paths non-finite")
        else:
            self._record(sample, "model")
        return slew_ps, delay_ps

    def _prior_prediction(self, sample: NetSample
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Training-label prior mean per path — the degraded fallback."""
        zeros = np.zeros(sample.num_paths)
        slew_ps, delay_ps = self.label_scaler.denormalize(zeros, zeros.copy())
        slew_ps = self._reconstruct_slews(slew_ps, sample)
        # A corrupted sample (NaN input slews) must still yield finite output.
        return (np.nan_to_num(slew_ps, nan=self.label_scaler.slew_mean),
                np.nan_to_num(delay_ps, nan=self.label_scaler.delay_mean))

    def _record(self, sample: NetSample, tier: str,
                reason: Optional[str] = None) -> None:
        record = PredictionRecord(sample.name, sample.design, tier, reason)
        if tier != "model":
            _PRIOR_FALLBACKS.inc()
        self.degradation_counts[tier] = self.degradation_counts.get(tier, 0) + 1
        self.provenance_log.append(record)
        if len(self.provenance_log) > _MAX_PROVENANCE_RECORDS:
            del self.provenance_log[:-_MAX_PROVENANCE_RECORDS]
        self.last_record = record

    def predict(self, samples: Sequence[NetSample], jobs: int = 1
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated per-path predictions over many nets, in ps.

        ``jobs > 1`` fans the per-net inference across worker processes
        (the fitted estimator ships to each worker once, via the pool
        initializer); results and provenance records come back in sample
        order, so the output is identical to the serial path.
        """
        self._require_fitted()
        samples = list(samples)
        if jobs is None or jobs != 1:
            return self._predict_parallel(samples, jobs)
        slews: List[np.ndarray] = []
        delays: List[np.ndarray] = []
        for sample in samples:
            s, d = self.predict_sample(sample)
            slews.append(s)
            delays.append(d)
        if not slews:
            return np.zeros(0), np.zeros(0)
        return np.concatenate(slews), np.concatenate(delays)

    def _predict_parallel(self, samples: List[NetSample], jobs: int
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Worker-pool prediction path; merges provenance in the parent.

        Worker processes own separate metric registries and estimator
        copies, so each returned tuple carries the tier/reason of its
        prediction and the parent replays them through :meth:`_record` —
        counters and ``provenance_log`` end up as the serial path leaves
        them.
        """
        results = parallel_map(_predict_worker, samples, jobs=jobs,
                               initializer=_init_predict_worker,
                               initargs=(self,), label="predict")
        slews: List[np.ndarray] = []
        delays: List[np.ndarray] = []
        for sample, (slew_ps, delay_ps, tier, reason) in zip(samples, results):
            _PREDICTIONS.inc()
            self._record(sample, tier, reason)
            slews.append(slew_ps)
            delays.append(delay_ps)
        if not slews:
            return np.zeros(0), np.zeros(0)
        return np.concatenate(slews), np.concatenate(delays)

    def evaluate(self, samples: Sequence[NetSample],
                 jobs: int = 1) -> EvalMetrics:
        """R^2 and max-abs-error against golden labels (paper's metrics)."""
        with get_tracer().span("estimator.evaluate", samples=len(samples),
                               jobs=jobs):
            pred_slew, pred_delay = self.predict(samples, jobs=jobs)
        true_slew = np.array([p.label_slew for s in samples for p in s.paths])
        true_delay = np.array([p.label_delay for s in samples for p in s.paths])
        return EvalMetrics(
            r2_slew=r2_score(true_slew, pred_slew),
            r2_delay=r2_score(true_delay, pred_delay),
            max_err_slew_ps=max_abs_error(true_slew, pred_slew),
            max_err_delay_ps=max_abs_error(true_delay, pred_delay),
            num_paths=len(true_slew),
        )

    def throughput(self, samples: Sequence[NetSample],
                   repeats: int = 1) -> float:
        """Nets per second of pure inference (Section IV-C runtime claim)."""
        self._require_fitted()
        start = time.perf_counter()
        for _ in range(repeats):
            for sample in samples:
                self.predict_sample(sample)
        elapsed = time.perf_counter() - start
        return repeats * len(samples) / elapsed if elapsed > 0 else float("inf")

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist model weights + label scaler to a ``.npz``."""
        self._require_fitted()
        arrays = {f"param.{k}": v for k, v in self.model.state_dict().items()}
        for key, value in self.label_scaler.state().items():
            arrays[f"label.{key}"] = np.array(value)
        np.savez_compressed(path, **arrays)

    def load(self, path: str, num_node_features: int,
             num_path_features: int) -> None:
        """Restore a previously saved estimator (feature widths required)."""
        rng = np.random.default_rng(self.config.seed)
        self.model = self.model_factory(num_node_features, num_path_features,
                                        self.config, rng)
        with np.load(path, allow_pickle=False) as data:
            state = {key[len("param."):]: data[key]
                     for key in data.files if key.startswith("param.")}
            label_state = {key[len("label."):]: float(data[key])
                           for key in data.files if key.startswith("label.")}
        self.model.load_state_dict(state)
        self.label_scaler = LabelScaler.from_state(label_state)
        self.model.eval()

    def _require_fitted(self) -> None:
        if self.model is None:
            raise RuntimeError("estimator is not fitted; call fit() or load()")


# Per-worker estimator installed once by the pool initializer, so the model
# weights are shipped per worker instead of per task.
_WORKER_ESTIMATOR: Optional[WireTimingEstimator] = None


def _init_predict_worker(estimator: "WireTimingEstimator") -> None:
    global _WORKER_ESTIMATOR
    _WORKER_ESTIMATOR = estimator


def _predict_worker(sample: NetSample
                    ) -> Tuple[np.ndarray, np.ndarray, str, Optional[str]]:
    """Worker entry point: predict one net, returning result + provenance."""
    slew_ps, delay_ps = _WORKER_ESTIMATOR.predict_sample(sample)
    record = _WORKER_ESTIMATOR.last_record
    return slew_ps, delay_ps, record.tier, record.reason


class LearnedWireModel(WireTimingModel):
    """Adapter exposing a trained estimator as an STA wire-delay engine.

    Feature extraction (without golden labeling) happens on the fly from
    the net and its electrical context; features are standardized with the
    training-set :class:`FeatureScaler` before inference.
    """

    def __init__(self, estimator: WireTimingEstimator,
                 feature_scaler: FeatureScaler) -> None:
        estimator._require_fitted()
        self.estimator = estimator
        self.feature_scaler = feature_scaler

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        if context is None:
            raise InputError(
                "LearnedWireModel needs the cell context; run it through "
                "STAEngine, which provides one", net=net.name,
                stage="predict")
        sample = build_net_sample(net, context, labeled=False)
        sample = self.feature_scaler.transform([sample])[0]
        slew_ps, delay_ps = self.estimator.predict_sample(sample)
        if not (np.all(np.isfinite(slew_ps)) and np.all(np.isfinite(delay_ps))):
            raise ModelError("learned prediction is non-finite",
                             net=net.name, stage="predict",
                             tier=self.name)
        return delay_ps * _PS, slew_ps * _PS

    @property
    def last_tier(self) -> Optional[str]:
        """Provenance of the wrapped estimator's most recent prediction."""
        return self.estimator.last_tier

    @property
    def name(self) -> str:
        return "LearnedWireModel"
