"""Structured error taxonomy for the estimation pipeline.

Every failure the pipeline can recover from is classified into one of three
typed exceptions, each carrying *provenance* — which net, design, sink and
pipeline stage produced it — so degraded results can be traced back to their
cause instead of surfacing as anonymous ``ValueError`` stack traces:

* :class:`InputError` — malformed or physically invalid input data (bad SPEF
  records, non-finite RC values, impossible arguments);
* :class:`NumericalError` — the input was plausible but linear algebra broke
  down (ill-conditioned MNA operator, non-finite simulator output, a
  threshold crossing that never happens);
* :class:`ModelError` — a learned model misbehaved (non-finite predictions,
  corrupted weights, missing context);
* :class:`WorkerError` — a parallel worker process died abruptly (crash,
  OOM kill) while serving a task of :func:`repro.parallel.parallel_map`.

All of them subclass :class:`EstimationError`, which itself subclasses
``ValueError`` so call sites written against the old ad-hoc exceptions keep
working.  :class:`TrainingDiverged` is the sibling *record* (not an
exception) that :class:`~repro.nn.trainer.TrainingHistory` carries when a
training run is stopped by the NaN-loss guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class EstimationError(ValueError):
    """Base class for typed pipeline failures, with provenance.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    net, design, sink, stage, tier:
        Optional provenance: the net and design being processed, the sink
        index (for per-path failures), the pipeline stage (``"spef-parse"``,
        ``"mna"``, ``"simulate"``, ``"predict"``, ``"sta"``, ...) and the
        fallback tier that failed, when applicable.
    cause:
        The underlying exception, if this error wraps one.
    """

    def __init__(self, message: str, *, net: Optional[str] = None,
                 design: Optional[str] = None, sink: Optional[int] = None,
                 stage: Optional[str] = None, tier: Optional[str] = None,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.message = message
        self.net = net
        self.design = design
        self.sink = sink
        self.stage = stage
        self.tier = tier
        self.cause = cause

    def provenance(self) -> Dict[str, object]:
        """Non-empty provenance fields as a dict (for logs and reports)."""
        fields = {"net": self.net, "design": self.design, "sink": self.sink,
                  "stage": self.stage, "tier": self.tier}
        return {key: value for key, value in fields.items() if value is not None}

    def __str__(self) -> str:
        context = ", ".join(f"{k}={v!r}" for k, v in self.provenance().items())
        return f"{self.message} [{context}]" if context else self.message


class InputError(EstimationError):
    """Malformed or physically invalid input data."""


class NumericalError(EstimationError):
    """Linear-algebra or convergence breakdown on plausible input."""


class ModelError(EstimationError):
    """A learned model produced unusable output or was misused."""


class WorkerError(EstimationError):
    """A parallel worker process died abruptly while serving a task.

    Raised (or recorded, when the caller degrades instead of aborting) by
    :func:`repro.parallel.parallel_map` when a child process exits without
    returning — a segfault, an ``os._exit``, or an OOM kill.  ``stage`` is
    always ``"parallel"``; the failed task index travels in ``sink`` for
    lack of a dedicated field, and :attr:`task_index` carries it typed.
    """

    def __init__(self, message: str, *, task_index: Optional[int] = None,
                 **kwargs) -> None:
        kwargs.setdefault("stage", "parallel")
        super().__init__(message, **kwargs)
        self.task_index = task_index


class OverloadError(EstimationError):
    """The serving layer refused a request because its queue is full.

    Explicit backpressure, not failure: the service is healthy but
    saturated, and the client should retry after :attr:`retry_after_s`
    (seconds).  ``stage`` is always ``"admission"``.
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.05,
                 **kwargs) -> None:
        kwargs.setdefault("stage", "admission")
        super().__init__(message, **kwargs)
        self.retry_after_s = float(retry_after_s)


class DeadlineError(EstimationError):
    """A request ran out of its per-request time budget before completing.

    Carries the budget and how far past it the request was when cancelled,
    so clients can distinguish "queued too long" from "computed too long"
    via ``stage`` (``"admission"`` vs ``"serve"``).
    """

    def __init__(self, message: str, *, budget_s: Optional[float] = None,
                 elapsed_s: Optional[float] = None, **kwargs) -> None:
        kwargs.setdefault("stage", "serve")
        super().__init__(message, **kwargs)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


@dataclass
class TrainingDiverged:
    """Record of a training run stopped by the divergence guard.

    Attached to :class:`~repro.nn.trainer.TrainingHistory` (not raised):
    the trainer restores the best checkpoint seen so far and stops, so the
    caller still gets a usable model plus this explanation.
    """

    epoch: int
    train_loss: float
    val_loss: Optional[float]
    restored_best: bool
    reason: str

    def __str__(self) -> str:
        restored = ("best checkpoint restored" if self.restored_best
                    else "no finite checkpoint to restore")
        return (f"training diverged at epoch {self.epoch} ({self.reason}); "
                f"{restored}")
