"""Deterministic fault-injection harness for the estimation pipeline.

Produces the corrupted artifacts the robustness test-suite drives through
every entry point: RC nets with NaN/zero/negative parasitics (bypassing the
builder's validation, exactly as corrupted memory or a buggy extractor
would), truncated and value-corrupted SPEF text, NaN-poisoned model weights,
and pathologically conditioned nets.  Everything is seeded, so a failing
fault case reproduces bit-identically.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..rcnet.builder import RCNetBuilder
from ..rcnet.graph import CouplingCap, RCEdge, RCNet, RCNode
from .errors import InputError

RC_FAULT_MODES = ("nan_resistance", "zero_resistance", "negative_resistance",
                  "nan_cap", "inf_cap")


def _raw_node(index: int, name: str, cap: float) -> RCNode:
    node = object.__new__(RCNode)
    object.__setattr__(node, "index", index)
    object.__setattr__(node, "name", name)
    object.__setattr__(node, "cap", cap)
    return node


def _raw_edge(u: int, v: int, resistance: float) -> RCEdge:
    edge = object.__new__(RCEdge)
    object.__setattr__(edge, "u", u)
    object.__setattr__(edge, "v", v)
    object.__setattr__(edge, "resistance", resistance)
    return edge


def _raw_net(name: str, nodes: Sequence[RCNode], edges: Sequence[RCEdge],
             source: int, sinks: Sequence[int],
             couplings: Sequence[CouplingCap] = ()) -> RCNet:
    """Assemble an :class:`RCNet` without running validation.

    Corrupted values (zero/negative resistance) would be rejected by the
    constructors; real corruption happens *after* validation, which is what
    the guards downstream must survive.
    """
    net = object.__new__(RCNet)
    net.name = name
    net.nodes = tuple(nodes)
    net.edges = tuple(edges)
    net.source = int(source)
    net.sinks = tuple(int(s) for s in sinks)
    net.couplings = tuple(couplings)
    net._adjacency = None
    return net


class FaultInjector:
    """Seeded source of corrupted pipeline artifacts."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # RC-value corruption
    # ------------------------------------------------------------------
    def corrupt_rc_values(self, net: RCNet, mode: str = "nan_resistance",
                          count: int = 1) -> RCNet:
        """Copy ``net`` with ``count`` parasitic values corrupted.

        ``mode`` is one of :data:`RC_FAULT_MODES`.  Corruption targets are
        drawn from this injector's rng, so campaigns are reproducible.
        """
        if mode not in RC_FAULT_MODES:
            raise InputError(f"unknown RC fault mode {mode!r}; "
                             f"choose from {RC_FAULT_MODES}",
                             net=net.name, stage="fault-inject")
        nodes = list(net.nodes)
        edges = list(net.edges)
        if mode in ("nan_cap", "inf_cap"):
            value = float("nan") if mode == "nan_cap" else float("inf")
            capped = [i for i, node in enumerate(nodes) if node.cap > 0.0] \
                or list(range(len(nodes)))
            for index in self.rng.choice(len(capped),
                                         size=min(count, len(capped)),
                                         replace=False):
                target = capped[int(index)]
                nodes[target] = _raw_node(target, nodes[target].name, value)
        else:
            value = {"nan_resistance": float("nan"), "zero_resistance": 0.0,
                     "negative_resistance": -100.0}[mode]
            for index in self.rng.choice(len(edges),
                                         size=min(count, len(edges)),
                                         replace=False):
                edge = edges[int(index)]
                edges[int(index)] = _raw_edge(edge.u, edge.v, value)
        return _raw_net(net.name, nodes, edges, net.source, net.sinks,
                        net.couplings)

    # ------------------------------------------------------------------
    # SPEF corruption
    # ------------------------------------------------------------------
    def truncate_spef(self, text: str, fraction: float = 0.6) -> str:
        """Cut SPEF text mid-stream, preferably inside a ``*D_NET`` block."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        lines = text.splitlines()
        cut = max(1, int(len(lines) * fraction))
        # Move the cut inside a net block (past its header, before *END) so
        # the truncation leaves an unterminated *D_NET behind.
        for offset in range(cut, len(lines)):
            if lines[offset].startswith("*END"):
                cut = offset
                break
        return "\n".join(lines[:cut])

    def corrupt_spef_values(self, text: str, count: int = 1) -> str:
        """Replace numeric fields of ``*RES``/``*CAP`` records with garbage."""
        lines = text.splitlines()
        numeric = [i for i, line in enumerate(lines)
                   if line and line.split()[0].isdigit()]
        if not numeric:
            return text
        for index in self.rng.choice(len(numeric),
                                     size=min(count, len(numeric)),
                                     replace=False):
            target = numeric[int(index)]
            parts = lines[target].split()
            parts[-1] = "NOT_A_NUMBER"
            lines[target] = " ".join(parts)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Model-weight corruption
    # ------------------------------------------------------------------
    def inject_nan_weights(self, model, fraction: float = 0.05,
                           parameters: Optional[int] = None) -> int:
        """Poison a fraction of each parameter tensor with NaN, in place.

        ``model`` is anything exposing ``parameters()`` (an
        :class:`~repro.nn.layers.Module` or a fitted estimator's model).
        Returns the number of poisoned entries.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        params = list(model.parameters())
        if parameters is not None:
            picked = self.rng.choice(len(params),
                                     size=min(parameters, len(params)),
                                     replace=False)
            params = [params[int(i)] for i in picked]
        poisoned = 0
        for param in params:
            flat = param.data.reshape(-1)
            hits = max(1, int(flat.size * fraction))
            where = self.rng.choice(flat.size, size=hits, replace=False)
            flat[where] = float("nan")
            poisoned += hits
        return poisoned


    # ------------------------------------------------------------------
    # Latency injection (slow tiers)
    # ------------------------------------------------------------------
    def slow_tier(self, model, delay_s: float, jitter_s: float = 0.0,
                  every: int = 1,
                  sleep: Callable[[float], None] = time.sleep
                  ) -> "SlowTierModel":
        """Wrap a wire-timing model so some calls stall before answering.

        Delays are drawn from this injector's rng, so a campaign's latency
        pattern is reproducible.  ``sleep`` is injectable: production chaos
        runs keep ``time.sleep``, unit tests pass a recording fake so
        timeout and hedging paths are exercised without real clocks.
        """
        return SlowTierModel(model, delay_s, jitter_s=jitter_s, every=every,
                             rng=self.rng, sleep=sleep)


class SlowTierModel:
    """A :class:`~repro.design.sta.WireTimingModel` with injected latency.

    Every ``every``-th call sleeps ``delay_s`` plus a seeded uniform jitter
    in ``[0, jitter_s)`` before delegating to the wrapped model; the answer
    itself is untouched.  This is the deterministic stand-in for a tier
    that has gone slow (cold cache, swapping, contended accelerator), used
    to drive :class:`~repro.robustness.fallback.FallbackChain` budgets and
    the serve layer's deadline/hedging paths.
    """

    def __init__(self, model, delay_s: float, jitter_s: float = 0.0,
                 every: int = 1, rng: Optional[np.random.Generator] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if delay_s < 0.0 or jitter_s < 0.0:
            raise ValueError("delay_s and jitter_s must be non-negative")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.model = model
        self.delay_s = float(delay_s)
        self.jitter_s = float(jitter_s)
        self.every = int(every)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.sleep = sleep
        self.calls = 0
        self.delays_injected: List[float] = []

    def wire_timing(self, net, input_slew, sink_loads, drive_resistance,
                    context=None):
        self.calls += 1
        if self.calls % self.every == 0:
            delay = self.delay_s
            if self.jitter_s:
                delay += float(self.rng.uniform(0.0, self.jitter_s))
            self.delays_injected.append(delay)
            self.sleep(delay)
        return self.model.wire_timing(net, input_slew, sink_loads,
                                      drive_resistance, context=context)

    @property
    def name(self) -> str:
        return f"slow({getattr(self.model, 'name', type(self.model).__name__)})"


# ----------------------------------------------------------------------
# Pathologically conditioned nets (shared by tests and benchmarks)
# ----------------------------------------------------------------------
def zero_cap_junction_chain(n_nodes: int = 8,
                            resistance: float = 100.0,
                            sink_cap: float = 1e-15) -> RCNet:
    """Chain whose interior nodes are pure junctions (zero capacitance).

    Only the sink carries charge; without the ``_MIN_CAP`` regularization
    the symmetrized MNA operator would be singular.
    """
    builder = RCNetBuilder("zero_cap_chain")
    builder.add_node("n0", 0.0)
    for i in range(1, n_nodes):
        cap = sink_cap if i == n_nodes - 1 else 0.0
        builder.add_node(f"n{i}", cap)
        builder.add_edge(f"n{i-1}", f"n{i}", resistance)
    builder.set_source("n0")
    builder.add_sink(f"n{n_nodes - 1}")
    return builder.build()


def resistance_spread_chain(decades: float = 6.0, n_stages: int = 7,
                            cap: float = 1e-15) -> RCNet:
    """Chain whose segment resistances span ``decades`` orders of magnitude."""
    builder = RCNetBuilder(f"r_spread_{decades:g}dec")
    builder.add_node("n0", cap)
    values = np.logspace(-decades / 2.0, decades / 2.0, n_stages)
    for i, resistance in enumerate(values, start=1):
        builder.add_node(f"n{i}", cap)
        builder.add_edge(f"n{i-1}", f"n{i}", float(resistance))
    builder.set_source("n0")
    builder.add_sink(f"n{n_stages}")
    return builder.build()


def coupling_only_sink_net(coupling_cap: float = 2e-15) -> RCNet:
    """Net whose sink has *only* coupling capacitance, no grounded cap."""
    builder = RCNetBuilder("coupling_only_sink")
    builder.add_node("drv", 1e-15)
    builder.add_node("mid", 0.0)
    builder.add_node("snk", 0.0)
    builder.add_edge("drv", "mid", 120.0)
    builder.add_edge("mid", "snk", 120.0)
    builder.add_coupling("snk", "aggressor:1", coupling_cap, activity=1.0)
    builder.set_source("drv")
    builder.add_sink("snk")
    return builder.build()


def singular_mna_net(spread: float = 1e18) -> RCNet:
    """Net whose reduced conductance matrix is numerically singular.

    Two segments ``spread`` apart in resistance push the operator's
    condition number far beyond double precision.
    """
    nodes = [_raw_node(0, "s", 1e-15), _raw_node(1, "m", 1e-15),
             _raw_node(2, "t", 1e-15)]
    edges = [_raw_edge(0, 1, 1.0 / spread), _raw_edge(1, 2, spread)]
    return _raw_net("singular_mna", nodes, edges, source=0, sinks=[2])


def pathological_nets() -> List[RCNet]:
    """The standard campaign targets for numerical-guard testing."""
    return [zero_cap_junction_chain(), resistance_spread_chain(),
            coupling_only_sink_net(), singular_mna_net()]


def crashing_task(item):
    """Worker-process fault: dies abruptly in a pool worker, succeeds inline.

    Inside a child process this calls ``os._exit`` — the hard death (no
    exception, no cleanup) that a segfault or OOM kill produces, which is
    what :func:`repro.parallel.parallel_map` must contain.  In the parent
    process it simply returns ``item``, so the in-parent serial retry tier
    recovers the task and the map completes.
    """
    import multiprocessing
    import os

    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return item
