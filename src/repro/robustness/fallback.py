"""Degrading wire-timing model: learned -> AWE -> D2M -> Elmore -> lumped RC.

Production timers never abort a full-chip run because one net is
pathological; they serve a cruder estimate and say so.  :class:`FallbackChain`
brings that discipline here: it walks an ordered ladder of
:class:`~repro.design.sta.WireTimingModel` tiers per net, validates each
tier's output (shape, finiteness, non-negative delays), enforces a
cooperative per-net time budget, trips a consecutive-failure circuit breaker
on flaky tiers, and records which tier served every net so degradation is
observable rather than silent.

The chain itself is a :class:`WireTimingModel`, so it plugs into
:class:`~repro.design.sta.STAEngine` unchanged.  Its terminal tier — a
single-time-constant lumped-RC estimate over sanitized inputs — cannot fail,
so ``wire_timing`` never raises on any net the caller can construct.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..design.sta import (AWEWireModel, D2MWireModel, ElmoreWireModel,
                          WireTimingModel)
from ..features.path_features import NetContext
from ..obs import get_metrics, named_lock
from ..rcnet.graph import RCNet
from .errors import EstimationError, ModelError, NumericalError

_LN2 = math.log(2.0)
_LN9 = math.log(9.0)

LAST_RESORT_TIER = "lumped-rc"


class LumpedRCWireModel(WireTimingModel):
    """Terminal fallback: single time constant over sanitized inputs.

    Every sink gets ``delay = ln(2) * tau`` and the single-pole slew
    degradation with ``tau = R_drv_total * C_total``; non-finite or negative
    parasitics are clamped first, so the result is always finite.  Crude, but
    a bounded, physically-scaled answer beats an aborted timing run.
    """

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        def clean(value: float, fallback: float) -> float:
            value = float(np.nan_to_num(value, nan=fallback,
                                        posinf=fallback, neginf=fallback))
            return value if value > 0.0 else fallback

        num_sinks = net.num_sinks
        caps = np.nan_to_num(net.cap_vector(), nan=0.0, posinf=0.0, neginf=0.0)
        loads = np.nan_to_num(np.asarray(sink_loads, dtype=np.float64).ravel(),
                              nan=0.0, posinf=0.0, neginf=0.0)
        resistances = np.nan_to_num(
            np.array([e.resistance for e in net.edges], dtype=np.float64),
            nan=0.0, posinf=0.0, neginf=0.0)
        total_cap = float(np.abs(caps).sum() + np.abs(loads).sum())
        total_res = clean(drive_resistance, 1.0) + float(np.abs(resistances).sum())
        tau = max(total_res * total_cap, 0.0)
        slew_in = clean(input_slew, 1e-12)
        delays = np.full(num_sinks, _LN2 * tau)
        slews = np.full(num_sinks, math.sqrt(slew_in ** 2 + (_LN9 * tau) ** 2))
        return delays, slews

    @property
    def name(self) -> str:
        return LAST_RESORT_TIER


@dataclass
class TierFailure:
    """One tier's failure while serving one net."""

    tier: str
    reason: str


@dataclass
class NetServeRecord:
    """Provenance of one served net: which tier answered and who failed."""

    net: str
    tier: str
    seconds: float
    failures: List[TierFailure] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


@dataclass
class TierStats:
    """Degradation counters of one tier."""

    name: str
    served: int = 0
    failed: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    skipped_open: int = 0


class _CircuitBreaker:
    """Consecutive-failure breaker with a cooldown measured in nets.

    ``threshold`` consecutive failures open the breaker; the tier is then
    skipped for ``cooldown`` nets, after which one half-open trial is
    allowed — success closes the breaker, failure re-opens it.
    """

    def __init__(self, threshold: int, cooldown: int) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        # Mutated by allow()/record_*; the breaker has no lock of its own —
        # the owning chain serializes every call (external guard, see the
        # dotted repro-guarded-by form in docs/LINTING.md).
        self.consecutive_failures = 0  # repro-guarded-by: FallbackChain._lock
        self.remaining_cooldown = 0    # repro-guarded-by: FallbackChain._lock

    @property
    def open(self) -> bool:
        return self.remaining_cooldown > 0

    def allow(self) -> bool:
        """Whether the tier may be tried for the current net."""
        if self.remaining_cooldown > 0:
            self.remaining_cooldown -= 1
            return self.remaining_cooldown == 0  # half-open trial on expiry
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count a failure; True when this one trips the breaker open."""
        self.consecutive_failures += 1
        if self.threshold > 0 and self.consecutive_failures >= self.threshold:
            self.consecutive_failures = 0
            self.remaining_cooldown = self.cooldown
            return True
        return False


class FallbackChain(WireTimingModel):
    """Ordered ladder of wire-timing tiers with per-net degradation.

    Parameters
    ----------
    tiers:
        Models to try in order, as instances (named by their ``.name``) or
        ``(name, model)`` pairs.  Duplicate names get a positional suffix.
    net_timeout:
        Cooperative per-net time budget in seconds for each tier.  Models
        run in-process and cannot be preempted, so the budget is checked
        after the call returns: an over-budget result is discarded, counted
        as a timeout failure and the next tier is tried.  ``None`` disables
        the check.
    breaker_threshold:
        Consecutive failures that open a tier's circuit breaker (0 disables).
    breaker_cooldown:
        Nets for which an open tier is skipped before a half-open retrial.
    last_resort:
        When ``True`` (default) a :class:`LumpedRCWireModel` terminal tier
        guarantees ``wire_timing`` always returns.
    keep_records:
        When ``True`` (default) every served net appends a
        :class:`NetServeRecord` to :attr:`records`.  Long-lived callers
        (the ``repro serve`` workers) pass ``False`` so memory stays
        bounded; :attr:`last_record` and the counters are kept either way.

    Counter and breaker bookkeeping is lock-guarded, so one chain may be
    shared by several threads: :meth:`counters` totals stay consistent
    under concurrent serving.  The tier models themselves must then be
    thread-safe too (the analytic tiers are stateless and qualify).
    """

    def __init__(self, tiers: Sequence[Union[WireTimingModel,
                                             Tuple[str, WireTimingModel]]],
                 net_timeout: Optional[float] = None,
                 breaker_threshold: int = 5, breaker_cooldown: int = 25,
                 last_resort: bool = True, keep_records: bool = True) -> None:
        if not tiers and not last_resort:
            raise ValueError("FallbackChain needs at least one tier")
        if net_timeout is not None and net_timeout <= 0.0:
            raise ValueError("net_timeout must be positive")
        if breaker_threshold < 0 or breaker_cooldown < 0:
            raise ValueError("breaker settings must be non-negative")
        self._tiers: List[Tuple[str, WireTimingModel]] = []
        for position, tier in enumerate(tiers):
            if isinstance(tier, tuple):
                name, model = tier
            else:
                name, model = tier.name, tier
            if any(existing == name for existing, _ in self._tiers):
                name = f"{name}#{position}"
            self._tiers.append((name, model))
        if last_resort:
            self._tiers.append((LAST_RESORT_TIER, LumpedRCWireModel()))
        self.net_timeout = net_timeout
        self.stats: Dict[str, TierStats] = {
            name: TierStats(name) for name, _ in self._tiers}  # repro-guarded-by: _lock
        self._breakers: Dict[str, _CircuitBreaker] = {
            name: _CircuitBreaker(breaker_threshold, breaker_cooldown)
            for name, _ in self._tiers}  # repro-guarded-by: _lock
        self.keep_records = keep_records
        self.records: List[NetServeRecord] = []  # repro-guarded-by: _lock
        self.last_record: Optional[NetServeRecord] = None  # repro-guarded-by: _lock
        self._lock = named_lock("FallbackChain._lock")

    # ------------------------------------------------------------------
    @property
    def tier_names(self) -> List[str]:
        return [name for name, _ in self._tiers]

    @property
    def last_tier(self) -> Optional[str]:
        """Tier that served the most recent net (STA provenance hook)."""
        with self._lock:
            record = self.last_record
        return record.tier if record is not None else None

    def prime_nets(self, requests: Sequence[object]) -> int:
        """Bulk-prime the primary tier's cache, when it supports it.

        Only the first tier serves nets on the healthy path; degraded
        tiers only ever see the failures, so priming them would be wasted
        work.  Priming runs outside the breaker/stats bookkeeping — it is
        cache warm-up, not serving.
        """
        if not self._tiers:
            return 0
        primer = getattr(self._tiers[0][1], "prime_nets", None)
        return 0 if primer is None else int(primer(requests))

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        delays, slews, _ = self.wire_timing_with_provenance(
            net, input_slew, sink_loads, drive_resistance, context=context)
        return delays, slews

    def wire_timing_with_provenance(
            self, net: RCNet, input_slew: float, sink_loads: np.ndarray,
            drive_resistance: float, context: Optional[NetContext] = None
            ) -> Tuple[np.ndarray, np.ndarray, NetServeRecord]:
        """Like :meth:`wire_timing` but also returns the provenance record."""
        start = time.perf_counter()
        failures: List[TierFailure] = []
        for name, model in self._tiers:
            # The stats/breaker map reads must also run under the lock:
            # reset_counters() rebinds self.stats[name] concurrently, and
            # an unlocked read could hand back the object it is replacing.
            with self._lock:
                stats = self.stats[name]
                breaker = self._breakers[name]
                allowed = breaker.allow()
                if not allowed:
                    stats.skipped_open += 1
            if not allowed:
                failures.append(TierFailure(name, "circuit breaker open"))
                continue
            tier_start = time.perf_counter()
            try:
                delays, slews = model.wire_timing(
                    net, input_slew, sink_loads, drive_resistance,
                    context=context)
                self._validate(net, delays, slews)
            except (KeyboardInterrupt, SystemExit):
                raise
            # Designed swallow-and-degrade: every tier failure is recorded
            # as a TierFailure on the serve record (and in the per-tier
            # counters) and the next tier serves the net — the chain's
            # whole contract is that no tier exception ever aborts a run.
            except Exception as exc:  # repro-lint: disable=ERR002
                self._record_failure(stats, breaker, failures, name,
                                     f"{type(exc).__name__}: {exc}")
                continue
            elapsed = time.perf_counter() - tier_start
            get_metrics().histogram(f"fallback.tier_seconds.{name}").observe(
                elapsed)
            if self.net_timeout is not None and elapsed > self.net_timeout:
                with self._lock:
                    stats.timeouts += 1
                self._record_failure(
                    stats, breaker, failures, name,
                    f"exceeded net budget ({elapsed:.3g}s > {self.net_timeout:.3g}s)")
                continue
            record = NetServeRecord(net.name, name,
                                    time.perf_counter() - start, failures)
            with self._lock:
                breaker.record_success()
                stats.served += 1
                if self.keep_records:
                    self.records.append(record)
                self.last_record = record
            get_metrics().counter(f"fallback.served.{name}").inc()
            if failures:
                get_metrics().counter("fallback.degraded_nets").inc()
            return np.asarray(delays, dtype=np.float64), \
                np.asarray(slews, dtype=np.float64), record
        raise EstimationError(
            f"every tier failed for net {net.name!r} and no last resort is "
            f"configured: {[f.reason for f in failures]}",
            net=net.name, stage="fallback")

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(net: RCNet, delays: np.ndarray, slews: np.ndarray) -> None:
        delays = np.asarray(delays, dtype=np.float64)
        slews = np.asarray(slews, dtype=np.float64)
        expected = (net.num_sinks,)
        if delays.shape != expected or slews.shape != expected:
            raise ModelError(
                f"tier returned shapes {delays.shape}/{slews.shape}, "
                f"expected {expected}", net=net.name, stage="tier-validate")
        if not (np.all(np.isfinite(delays)) and np.all(np.isfinite(slews))):
            raise NumericalError("tier returned non-finite timing",
                                 net=net.name, stage="tier-validate")
        if np.any(delays < 0.0) or np.any(slews <= 0.0):
            raise NumericalError(
                "tier returned negative delay or non-positive slew",
                net=net.name, stage="tier-validate")

    def _record_failure(self, stats: TierStats, breaker: _CircuitBreaker,
                        failures: List[TierFailure], name: str,
                        reason: str) -> None:
        with self._lock:
            stats.failed += 1
            if breaker.record_failure():
                stats.breaker_trips += 1
        get_metrics().counter(f"fallback.failures.{name}").inc()
        failures.append(TierFailure(name, reason))

    # ------------------------------------------------------------------
    # Degradation observability
    # ------------------------------------------------------------------
    @property
    def total_served(self) -> int:
        with self._lock:
            return sum(s.served for s in self.stats.values())

    @property
    def degraded_count(self) -> int:
        """Nets not served by the first tier."""
        first = self.tier_names[0]
        with self._lock:  # inline total: total_served would re-take the lock
            total = sum(s.served for s in self.stats.values())
            return total - self.stats[first].served

    def counters(self) -> Dict[str, int]:
        """Nets served per tier; values sum to :attr:`total_served`.

        Taken under the chain's lock, so the snapshot is internally
        consistent even while other threads are serving nets.
        """
        with self._lock:
            return {name: self.stats[name].served for name in self.tier_names}

    def reset_counters(self) -> None:
        with self._lock:
            for name in self.tier_names:
                self.stats[name] = TierStats(name)
            self.records.clear()
            self.last_record = None

    def degradation_report(self) -> str:
        """Human-readable counter table (printed by the CLI)."""
        with self._lock:
            total = sum(s.served for s in self.stats.values())
            rows = [(name, self.stats[name].served, self.stats[name].failed,
                     self.stats[name].timeouts,
                     self.stats[name].breaker_trips)
                    for name in self.tier_names]
        lines = [f"degradation counters ({total} nets served)"]
        for name, served, failed, timeouts, trips in rows:
            lines.append(
                f"  {name:<20} served={served:<6} failed={failed:<4} "
                f"timeouts={timeouts:<4} breaker_trips={trips}")
        return "\n".join(lines)

    @property
    def name(self) -> str:
        return "FallbackChain(" + "->".join(self.tier_names) + ")"


def default_fallback_chain(learned: Optional[WireTimingModel] = None,
                           **kwargs) -> FallbackChain:
    """The repo's standard degradation ladder.

    ``learned -> AWE -> D2M -> Elmore -> lumped-RC`` when a learned model is
    supplied, the analytic ladder otherwise.  Keyword arguments pass through
    to :class:`FallbackChain`.
    """
    tiers: List[WireTimingModel] = []
    if learned is not None:
        tiers.append(learned)
    tiers.extend([AWEWireModel(), D2MWireModel(), ElmoreWireModel()])
    return FallbackChain(tiers, **kwargs)
