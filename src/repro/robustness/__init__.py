"""Resilience subsystem: error taxonomy, degradation ladder, fault injection.

Production timers degrade gracefully instead of aborting; this package
supplies the machinery: typed errors with net/path provenance
(:mod:`~repro.robustness.errors`), numerical-health guards
(:mod:`~repro.robustness.guards`), the learned->analytic
:class:`FallbackChain` wire model (:mod:`~repro.robustness.fallback`) and a
deterministic fault-injection harness (:mod:`~repro.robustness.faultinject`).

``fallback`` and ``faultinject`` are loaded lazily (PEP 562): low-level
modules (``design.sta``, ``nn.trainer``, ``core.estimator``) import the
error taxonomy from here, and an eager import of the chain — which itself
builds on ``design.sta`` — would be circular.
"""

from .errors import (DeadlineError, EstimationError, InputError, ModelError,
                     NumericalError, OverloadError, TrainingDiverged,
                     WorkerError)
from .guards import (MAX_CONDITION, check_conditioning, guarded_eigh,
                     require_finite, symmetric_condition)

_LAZY = {
    "FallbackChain": "fallback",
    "LumpedRCWireModel": "fallback",
    "NetServeRecord": "fallback",
    "TierFailure": "fallback",
    "TierStats": "fallback",
    "LAST_RESORT_TIER": "fallback",
    "default_fallback_chain": "fallback",
    "FaultInjector": "faultinject",
    "SlowTierModel": "faultinject",
    "RC_FAULT_MODES": "faultinject",
    "coupling_only_sink_net": "faultinject",
    "crashing_task": "faultinject",
    "pathological_nets": "faultinject",
    "resistance_spread_chain": "faultinject",
    "singular_mna_net": "faultinject",
    "zero_cap_junction_chain": "faultinject",
}

__all__ = [
    "EstimationError", "InputError", "NumericalError", "ModelError",
    "TrainingDiverged", "WorkerError", "OverloadError", "DeadlineError",
    "MAX_CONDITION", "require_finite", "check_conditioning",
    "guarded_eigh", "symmetric_condition",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
