"""Numerical-health guards shared by the analysis engines.

Small, dependency-free helpers that turn silent NaN propagation and
near-singular solves into typed :class:`~repro.robustness.errors.NumericalError`
failures the fallback machinery can catch per net.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .errors import NumericalError

# Condition number above which a symmetric operator is treated as singular
# for timing purposes: beyond ~1e12 the double-precision solve has lost all
# of the <=1% accuracy a timer needs.
MAX_CONDITION = 1e12


def require_finite(values: np.ndarray, what: str, *,
                   net: Optional[str] = None, stage: Optional[str] = None,
                   sink: Optional[int] = None) -> np.ndarray:
    """Return ``values`` unchanged, raising :class:`NumericalError` on NaN/inf."""
    values = np.asarray(values)
    if not np.all(np.isfinite(values)):
        bad = int(np.size(values) - np.count_nonzero(np.isfinite(values)))
        raise NumericalError(
            f"{what} contains {bad} non-finite value(s)",
            net=net, stage=stage, sink=sink)
    return values


def symmetric_condition(eigenvalues: np.ndarray) -> float:
    """Condition number of a symmetric operator from its eigenvalues.

    For an SPD operator this is ``lam_max / lam_min``; a non-positive or
    non-finite spectrum maps to ``inf`` (singular for our purposes).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    if eigenvalues.size == 0 or not np.all(np.isfinite(eigenvalues)):
        return float("inf")
    smallest = float(eigenvalues.min())
    largest = float(np.abs(eigenvalues).max())
    if smallest <= 0.0:
        return float("inf")
    return largest / smallest


def guarded_eigh(matrix: np.ndarray, *, what: str = "operator",
                 net: Optional[str] = None, stage: Optional[str] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """``np.linalg.eigh`` with the repo's numerical-safety contract.

    Validates the input is finite, converts ``LinAlgError`` into a typed
    :class:`NumericalError` with provenance, and checks the returned
    decomposition is finite — the sanctioned way to eigendecompose outside
    :mod:`repro.analysis` (lint rule NUM001).  Returns ``(eigenvalues,
    eigenvectors)`` like the raw call.
    """
    require_finite(matrix, what, net=net, stage=stage)
    try:
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    except np.linalg.LinAlgError as exc:
        raise NumericalError(f"eigendecomposition of {what} failed: {exc}",
                             net=net, stage=stage, cause=exc) from exc
    require_finite(eigenvalues, f"eigenvalues of {what}", net=net, stage=stage)
    require_finite(eigenvectors, f"eigenvectors of {what}", net=net,
                   stage=stage)
    return eigenvalues, eigenvectors


def check_conditioning(matrix: np.ndarray, *, what: str = "operator",
                       net: Optional[str] = None, stage: Optional[str] = None,
                       limit: float = MAX_CONDITION) -> float:
    """Condition number of a symmetric matrix, with a typed failure.

    Raises :class:`NumericalError` when the matrix is non-finite or its
    2-norm condition number exceeds ``limit``.  Returns the condition number
    otherwise.
    """
    require_finite(matrix, what, net=net, stage=stage)
    try:
        eigenvalues = np.linalg.eigvalsh(matrix)
    except np.linalg.LinAlgError as exc:
        raise NumericalError(f"eigendecomposition of {what} failed: {exc}",
                             net=net, stage=stage, cause=exc) from exc
    condition = symmetric_condition(eigenvalues)
    if condition > limit:
        raise NumericalError(
            f"{what} is ill-conditioned (cond={condition:.3e} > {limit:.1e})",
            net=net, stage=stage)
    return condition
