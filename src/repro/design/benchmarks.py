"""Named benchmark suite reproducing Table II of the paper.

The paper trains on 11 designs and tests on 7 unseen ones (OpenCore and
related open-source designs).  We regenerate each as a synthetic design
whose *relative* statistics — non-tree net fraction, FF density, path count
relative to size — match the published row, scaled down by a configurable
factor so the whole suite fits CPU dataset generation.  The scale factor is
an explicit parameter: ``scale=1`` reproduces the paper's absolute sizes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..liberty.library import Library
from .generator import DesignSpec, generate_design
from .netlist import Netlist


@dataclass(frozen=True)
class BenchmarkStats:
    """One row of Table II as published."""

    name: str
    cells: int
    nets: int
    nontree_nets: int
    ffs: int
    paths: int
    split: str  # "train" or "test"

    @property
    def nontree_frac(self) -> float:
        return self.nontree_nets / self.nets


# Table II, verbatim.
PAPER_BENCHMARKS: Dict[str, BenchmarkStats] = {
    stats.name: stats for stats in [
        BenchmarkStats("PCI_BRIDGE", 1234, 1598, 279, 310, 456, "train"),
        BenchmarkStats("DMA", 10215, 10898, 1963, 1956, 1475, "train"),
        BenchmarkStats("B19", 33785, 34399, 8906, 3420, 5093, "train"),
        BenchmarkStats("SALSA", 52895, 57737, 16802, 7836, 9648, "train"),
        BenchmarkStats("RocketCore", 90859, 93812, 38919, 16784, 12475, "train"),
        BenchmarkStats("VGA_LCD", 56194, 56279, 20527, 17054, 8761, "train"),
        BenchmarkStats("ECG", 84127, 85058, 31067, 14018, 13189, "train"),
        BenchmarkStats("TATE", 184601, 185379, 51037, 31409, 27931, "train"),
        BenchmarkStats("JPEG", 219064, 231934, 73915, 37642, 36489, "train"),
        BenchmarkStats("NETCARD", 316137, 317974, 76924, 87317, 46713, "train"),
        BenchmarkStats("LEON3MP", 341000, 341263, 81687, 108724, 50716, "train"),
        BenchmarkStats("WB_DMA", 40962, 40664, 9493, 718, 9619, "test"),
        BenchmarkStats("LDPC", 39377, 42018, 10257, 2048, 7613, "test"),
        BenchmarkStats("DES_PERT", 48289, 48523, 9534, 2983, 10976, "test"),
        BenchmarkStats("AES-128", 113168, 90905, 42657, 10686, 24973, "test"),
        BenchmarkStats("TV_CORE", 207414, 189262, 53147, 40681, 33706, "test"),
        BenchmarkStats("NOVA", 141990, 139224, 36482, 30494, 39341, "test"),
        BenchmarkStats("OPENGFX", 219064, 231934, 62395, 37642, 47831, "test"),
    ]
}

TRAIN_BENCHMARKS: List[str] = [
    s.name for s in PAPER_BENCHMARKS.values() if s.split == "train"]
TEST_BENCHMARKS: List[str] = [
    s.name for s in PAPER_BENCHMARKS.values() if s.split == "test"]

DEFAULT_SCALE = 800


def benchmark_seed(name: str) -> int:
    """Deterministic per-benchmark seed (stable across sessions)."""
    return zlib.crc32(name.encode("utf-8"))


def benchmark_spec(name: str, scale: int = DEFAULT_SCALE,
                   n_paths: Optional[int] = None) -> DesignSpec:
    """Scaled :class:`DesignSpec` for a named paper benchmark.

    ``scale`` divides the paper's absolute cell/FF/path counts, with floors
    so that even the smallest designs remain structurally meaningful; the
    non-tree fraction is preserved exactly.
    """
    try:
        stats = PAPER_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; see PAPER_BENCHMARKS") from None
    if scale < 1:
        raise ValueError("scale must be >= 1")
    ffs = max(6, stats.ffs // scale)
    cells = max(40, stats.cells // scale)
    n_comb = max(10, cells - ffs)
    paths = n_paths if n_paths is not None else max(20, stats.paths // scale)
    return DesignSpec(
        name=name,
        n_combinational=n_comb,
        n_ffs=ffs,
        n_paths=paths,
        nontree_frac=stats.nontree_frac,
        levels=5,
        seed=benchmark_seed(name),
    )


def generate_benchmark(name: str, library: Optional[Library] = None,
                       scale: int = DEFAULT_SCALE,
                       n_paths: Optional[int] = None) -> Netlist:
    """Generate the scaled synthetic version of a paper benchmark."""
    return generate_design(benchmark_spec(name, scale, n_paths), library)
