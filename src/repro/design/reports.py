"""Sign-off-style timing reports.

Formats :class:`~repro.design.sta.PathTiming` results the way engineers
read them — a per-stage ``report_timing`` table with incremental and
cumulative columns, plus a design-level summary ordered by arrival time
(critical path first).  Useful both for humans debugging the flow and for
the incremental-optimization example.
"""

from __future__ import annotations

from typing import List, Optional

from .netlist import Netlist
from .sta import PathTiming, STAReport

_PS = 1e-12


def format_path_report(timing: PathTiming, netlist: Optional[Netlist] = None,
                       clock_period: Optional[float] = None) -> str:
    """One path's stage-by-stage timing table (like ``report_timing``).

    Parameters
    ----------
    timing:
        The analyzed path.
    netlist:
        When given, stage rows show the driving cell's library name.
    clock_period:
        When given, a slack line (``period - arrival``) is appended.
    """
    lines: List[str] = [
        f"Timing report for path {timing.path_name}",
        "-" * 72,
        f"{'stage':<28} {'cell':<12} {'gate(ps)':>9} {'wire(ps)':>9} "
        f"{'slew(ps)':>9} {'arrival':>9}",
        "-" * 72,
    ]
    cumulative = 0.0
    for stage in timing.stages:
        cell_name = ""
        if netlist is not None and stage.gate in netlist.gates:
            cell_name = netlist.gates[stage.gate].cell.name
        cumulative += stage.gate_delay + stage.wire_delay
        stage_label = f"{stage.gate} -> {stage.net}"
        if len(stage_label) > 28:
            stage_label = "..." + stage_label[-25:]
        lines.append(
            f"{stage_label:<28} {cell_name:<12} "
            f"{stage.gate_delay / _PS:>9.2f} {stage.wire_delay / _PS:>9.2f} "
            f"{stage.slew_out / _PS:>9.2f} {cumulative / _PS:>9.2f}")
    lines.append("-" * 72)
    lines.append(f"{'data arrival time':<52}{timing.arrival / _PS:>9.2f} ps")
    lines.append(
        f"{'  gate / wire split':<38}"
        f"{timing.gate_delay_total / _PS:>9.2f} /"
        f"{timing.wire_delay_total / _PS:>9.2f} ps")
    if clock_period is not None:
        slack = clock_period - timing.arrival
        verdict = "MET" if slack >= 0.0 else "VIOLATED"
        lines.append(f"{'slack (' + verdict + ')':<52}{slack / _PS:>9.2f} ps")
    return "\n".join(lines)


def format_design_report(report: STAReport, top: int = 10,
                         clock_period: Optional[float] = None) -> str:
    """Design-level summary: the ``top`` slowest paths plus runtime split."""
    ordered = sorted(report.paths, key=lambda p: p.arrival, reverse=True)
    lines: List[str] = [
        f"STA summary for design {report.design} "
        f"(wire model: {report.wire_model})",
        "=" * 64,
        f"{'path':<32} {'arrival(ps)':>12} {'gate(ps)':>9} {'wire(ps)':>9}",
        "-" * 64,
    ]
    for timing in ordered[:top]:
        name = timing.path_name
        if len(name) > 32:
            name = "..." + name[-29:]
        lines.append(f"{name:<32} {timing.arrival / _PS:>12.2f} "
                     f"{timing.gate_delay_total / _PS:>9.2f} "
                     f"{timing.wire_delay_total / _PS:>9.2f}")
    lines.append("-" * 64)
    if clock_period is not None and ordered:
        worst = ordered[0]
        slack = clock_period - worst.arrival
        verdict = "MET" if slack >= 0.0 else "VIOLATED"
        lines.append(f"worst slack: {slack / _PS:.2f} ps ({verdict}, "
                     f"clock {clock_period / _PS:.0f} ps)")
    lines.append(f"paths analyzed: {len(report.paths)}; "
                 f"runtime gate {report.gate_seconds:.3f}s + "
                 f"wire {report.wire_seconds:.3f}s = "
                 f"{report.total_seconds:.3f}s")
    return "\n".join(lines)
