"""Static timing analysis over synthetic designs.

Path arrival time is the sum of gate delays (NLDM table interpolation, as in
the paper) and wire delays (pluggable: golden simulator, Elmore, D2M, or a
learned estimator).  This is the machinery behind Table V: swapping the wire
model changes arrival-time accuracy and runtime while the gate side stays
fixed.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.awe import awe2_timing
from ..analysis.d2m import d2m_delays
from ..analysis.elmore import elmore_delays
from ..analysis.simulator import GoldenTimer
from ..features.path_features import NetContext
from ..liberty.ceff import effective_capacitance
from ..obs import get_metrics, get_tracer
from ..parallel import parallel_map
from ..liberty.cell import Cell
from ..rcnet.graph import RCNet
from ..robustness.errors import (EstimationError, InputError, ModelError,
                                 NumericalError)
from .netlist import Netlist, TimingPath

_LN9 = float(np.log(9.0))  # 10%-90% swing of a single-pole response.

_STAGES_TIMED = get_metrics().counter("sta.stages_timed")
_PATHS_TIMED = get_metrics().counter("sta.paths_timed")


def resolve_arc_pin(cell: Cell, input_pin: str, *, net: Optional[str] = None,
                    design: Optional[str] = None, lenient: bool = True) -> str:
    """Resolve a path stage's input pin to one of ``cell``'s timing arcs.

    Strict mode (``lenient=False``) raises a typed :class:`InputError`
    with net/design provenance when the pin has no arc — consistent with
    the FLOW004 lint rule, which flags exactly this silent substitution.
    Lenient mode preserves the legacy behavior of timing the stage
    through the cell's first arc, for netlists produced before arc pins
    were validated.
    """
    if input_pin in cell.arcs:
        return input_pin
    if lenient:
        return next(iter(cell.arcs))
    raise InputError(
        f"cell {cell.name!r} has no timing arc for pin {input_pin!r} "
        f"(arcs: {sorted(cell.arcs)}); pass lenient_pins=True to time "
        f"the stage through the first arc instead",
        net=net, design=design, stage="sta")


class WireTimingModel(ABC):
    """Interface every wire-delay engine exposes to the STA core."""

    @abstractmethod
    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(delays, slews)`` per sink, both in seconds.

        ``context`` carries the driving/receiving cells; analytic models
        ignore it, learned models need it for feature extraction.
        """

    @property
    def name(self) -> str:
        return type(self).__name__


class GoldenWireModel(WireTimingModel):
    """Wire timing from the exact transient simulator (sign-off reference)."""

    def __init__(self, timer: Optional[GoldenTimer] = None) -> None:
        self._template = timer or GoldenTimer()
        self._cache: Dict[float, GoldenTimer] = {}

    def _timer(self, drive_resistance: float) -> GoldenTimer:
        timer = self._cache.get(drive_resistance)
        if timer is None:
            t = self._template
            timer = GoldenTimer(
                drive_resistance=drive_resistance, vdd=t.vdd, si_mode=t.si_mode,
                si_strength=t.si_strength,
                delay_threshold=t.delay_threshold,
                slew_low=t.slew_low, slew_high=t.slew_high)
            self._cache[drive_resistance] = timer
        return timer

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        result = self._timer(drive_resistance).analyze(net, input_slew, sink_loads)
        return result.delays(), result.slews()

    def prime_nets(self, requests: Sequence["object"]) -> int:
        """Batch-fill the eigendecomposition cache for upcoming queries.

        One grouped ``eigh`` across all requested nets replaces the
        per-net decompositions the later :meth:`wire_timing` calls would
        run; the results land in the shared
        :class:`~repro.analysis.cache.SolveCache`, so the per-net queries
        become cache hits with bitwise-identical timing.
        """
        from ..analysis.batch import prime_solve_cache

        return prime_solve_cache(requests)


class ElmoreWireModel(WireTimingModel):
    """First-moment analytical wire timing (fast, pessimistic).

    Sink slew uses the standard single-pole degradation model
    ``slew_out = sqrt(slew_in^2 + (ln 9 * elmore)^2)``.
    """

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        delays = elmore_delays(net, sink_loads=sink_loads)[list(net.sinks)]
        slews = np.sqrt(input_slew ** 2 + (_LN9 * delays) ** 2)
        return delays, slews


class AWEWireModel(WireTimingModel):
    """Two-pole AWE analytical wire timing (tighter than Elmore/D2M).

    Step-response delay and slew from the [1/2] Pade model; the input slew
    is composed in quadrature like the single-pole models.
    """

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        sinks = list(net.sinks)
        delays, step_slews = awe2_timing(net, sink_loads=sink_loads,
                                         nodes=sinks)
        slews = np.sqrt(input_slew ** 2 + step_slews[sinks] ** 2)
        return delays[sinks], slews

    def prime_nets(self, requests: Sequence["object"]) -> int:
        """Batch-fill the AWE step-response cache for upcoming queries.

        Step responses do not depend on the input slew, so one batched
        moment/fit/crossing pass caches every requested net; the per-stage
        :meth:`wire_timing` calls then hit the cache with arrays bitwise
        equal to what they would have computed.
        """
        from ..analysis.batch import prime_awe

        return prime_awe(requests)


class D2MWireModel(WireTimingModel):
    """Two-moment analytical wire timing (less pessimistic than Elmore)."""

    def wire_timing(self, net: RCNet, input_slew: float,
                    sink_loads: np.ndarray, drive_resistance: float,
                    context: Optional[NetContext] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        delays = d2m_delays(net, sink_loads=sink_loads)[list(net.sinks)]
        slews = np.sqrt(input_slew ** 2 + (_LN9 * delays) ** 2)
        return delays, slews


@dataclass
class StageTiming:
    """Timing breakdown of one path stage.

    ``tier`` is the wire-model degradation provenance: which tier of a
    fallback-capable model served this stage (``None`` for plain models).
    """

    gate: str
    net: str
    gate_delay: float
    wire_delay: float
    slew_out: float
    tier: Optional[str] = None


@dataclass
class PathTiming:
    """Arrival-time result of one timing path."""

    path_name: str
    arrival: float
    gate_delay_total: float
    wire_delay_total: float
    stages: List[StageTiming] = field(default_factory=list)


@dataclass
class STAReport:
    """Design-level STA result with a wall-clock runtime split.

    ``gate_seconds`` and ``wire_seconds`` reproduce the runtime columns of
    Table V: time spent in library lookups/ceff reduction versus in the
    wire-timing engine.
    """

    design: str
    wire_model: str
    paths: List[PathTiming]
    gate_seconds: float
    wire_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.gate_seconds + self.wire_seconds

    def arrivals(self) -> np.ndarray:
        return np.array([p.arrival for p in self.paths])


class STAEngine:
    """Propagates arrival times along recorded timing paths.

    Parameters
    ----------
    netlist:
        The design under analysis.
    wire_model:
        Any :class:`WireTimingModel` implementation; provides the wire
        *delays* summed into arrival times.
    launch_slew:
        Transition time at the launch flip-flop output, seconds.
    slew_model:
        Optional separate engine for the *propagated slews* (and hence the
        gate operating points).  The paper's Table V protocol computes
        arrival as "the cumulative addition of our estimated wire delay
        and cell delay from the timing library", i.e. cell delays come
        from the sign-off report's operating points — reproduce that with
        ``slew_model=GoldenWireModel()``.  When ``None`` the wire model's
        own slews propagate (full self-consistent mode).
    lenient_pins:
        When True (legacy default), a stage whose ``input_pin`` has no
        timing arc is timed through the cell's first arc; when False such
        a stage raises a typed :class:`InputError` (see
        :func:`resolve_arc_pin`).
    """

    def __init__(self, netlist: Netlist, wire_model: WireTimingModel,
                 launch_slew: float = 20e-12,
                 slew_model: Optional[WireTimingModel] = None,
                 lenient_pins: bool = True) -> None:
        if launch_slew <= 0.0:
            raise ValueError("launch_slew must be positive")
        self.netlist = netlist
        self.wire_model = wire_model
        self.launch_slew = launch_slew
        self.slew_model = slew_model
        self.lenient_pins = lenient_pins

    def path_arrival(self, path: TimingPath) -> PathTiming:
        """Arrival time at the path endpoint, with per-stage breakdown."""
        arrival = 0.0
        gate_total = 0.0
        wire_total = 0.0
        slew = self.launch_slew
        stages: List[StageTiming] = []
        for stage in path.stages:
            gate = self.netlist.gates[stage.gate]
            net = self.netlist.nets[stage.net]
            sink_loads = self.netlist.sink_loads(net)
            load = effective_capacitance(net.rcnet, gate.cell.drive_resistance,
                                         sink_loads)
            input_pin = resolve_arc_pin(
                gate.cell, stage.input_pin, net=stage.net,
                design=self.netlist.name, lenient=self.lenient_pins)
            gate_delay, drive_slew = gate.cell.delay_and_slew(slew, load, input_pin)
            context = NetContext(
                input_slew=drive_slew, drive_cell=gate.cell,
                load_cells=[self.netlist.gates[l.gate].cell for l in net.loads])
            try:
                delays, slews = self.wire_model.wire_timing(
                    net.rcnet, drive_slew, sink_loads,
                    gate.cell.drive_resistance, context=context)
            except EstimationError:
                raise  # already typed with provenance
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                raise ModelError(
                    f"wire model {self.wire_model.name!r} failed: "
                    f"{type(exc).__name__}: {exc}", net=stage.net,
                    design=self.netlist.name, stage="sta",
                    cause=exc) from exc
            tier = getattr(self.wire_model, "last_tier", None)
            if self.slew_model is not None:
                _, slews = self.slew_model.wire_timing(
                    net.rcnet, drive_slew, sink_loads,
                    gate.cell.drive_resistance, context=context)
            wire_delay = float(delays[stage.sink_index])
            slew = float(slews[stage.sink_index])
            if not (np.isfinite(gate_delay) and np.isfinite(wire_delay)
                    and np.isfinite(slew)):
                raise NumericalError(
                    "non-finite stage timing", net=stage.net,
                    design=self.netlist.name, sink=stage.sink_index,
                    stage="sta", tier=tier)
            arrival += gate_delay + wire_delay
            gate_total += gate_delay
            wire_total += wire_delay
            _STAGES_TIMED.inc()
            stages.append(StageTiming(stage.gate, stage.net, gate_delay,
                                      wire_delay, slew, tier=tier))
        _PATHS_TIMED.inc()
        return PathTiming(path.name, arrival, gate_total, wire_total, stages)

    def _timed_arrival(self, path: TimingPath
                       ) -> Tuple[PathTiming, float, float]:
        """One path through a wire-timing-instrumented engine.

        Returns ``(timing, wire_seconds, total_seconds)`` so callers can
        assemble the Table V gate/wire runtime split from per-path compute
        time — a definition that survives parallel execution, where
        wall-clock no longer equals work done.
        """
        wire_seconds = 0.0
        model = self.wire_model

        class _TimedModel(WireTimingModel):
            def wire_timing(self, net, input_slew, sink_loads, drive_resistance,
                            context=None):
                nonlocal wire_seconds
                start = time.perf_counter()
                try:
                    return model.wire_timing(net, input_slew, sink_loads,
                                             drive_resistance, context=context)
                finally:
                    wire_seconds += time.perf_counter() - start

            @property
            def last_tier(self):
                return getattr(model, "last_tier", None)

        engine = STAEngine(self.netlist, _TimedModel(), self.launch_slew,
                           slew_model=self.slew_model,
                           lenient_pins=self.lenient_pins)
        start = time.perf_counter()
        timing = engine.path_arrival(path)
        total = time.perf_counter() - start
        return timing, wire_seconds, total

    def analyze_design(self, jobs: int = 1) -> STAReport:
        """Arrival times of every recorded path, with a runtime split.

        The gate/wire runtime split is measured by running the wire engine
        inside a timed wrapper; totals are summed per-path compute seconds,
        mirroring Table V's Gate/Wire columns.

        ``jobs > 1`` analyzes paths across worker processes (the netlist
        and wire model ship to each worker once).  Arrival times and the
        per-stage tier provenance in the report are identical to the
        serial path; in-model degradation counters (e.g. a FallbackChain's
        ``stats``) accumulate inside the workers and are not merged back —
        read provenance from the report's ``stages`` instead.
        """
        model = self.wire_model
        paths = list(self.netlist.paths)
        with get_tracer().span("sta.analyze_design", design=self.netlist.name,
                               wire_model=model.name,
                               paths=len(paths), jobs=jobs) as span:
            prime_seconds = 0.0
            if jobs == 1 or len(paths) < 2:
                # Serial runs see every stage up front: collect the unique
                # (net, driver) pairs across all paths and let batch-aware
                # wire models fill their caches in one stacked pass.  The
                # prime time is charged to the wire column below — it is
                # wire work, just hoisted.
                prime_seconds = self._prime_wire_models(paths)
                results = [self._timed_arrival(p) for p in paths]
            else:
                results = parallel_map(
                    _timed_path, list(range(len(paths))), jobs=jobs,
                    initializer=_init_sta_worker,
                    initargs=(self.netlist, model, self.launch_slew,
                              self.slew_model, self.lenient_pins),
                    label="sta_paths")
                # Worker processes own separate metric registries; replay
                # the per-path counters in the parent.
                for timing, _, _ in results:
                    _PATHS_TIMED.inc()
                    _STAGES_TIMED.inc(len(timing.stages))
            wire_seconds = sum(w for _, w, _ in results) + prime_seconds
            total = sum(t for _, _, t in results) + prime_seconds
            span.set(gate_seconds=total - wire_seconds,
                     wire_seconds=wire_seconds)
        return STAReport(
            design=self.netlist.name,
            wire_model=model.name,
            paths=[timing for timing, _, _ in results],
            gate_seconds=total - wire_seconds,
            wire_seconds=wire_seconds,
        )

    def _prime_wire_models(self, paths: Sequence[TimingPath]) -> float:
        """Bulk-fill wire-model caches before the per-stage queries.

        Duck-typed: models (and fallback chains) exposing ``prime_nets``
        get the unique (net, driver) pairs of every stage; plain models
        cost nothing.  Returns the seconds spent priming.
        """
        primers = [primer for primer in
                   (getattr(self.wire_model, "prime_nets", None),
                    getattr(self.slew_model, "prime_nets", None))
                   if primer is not None]
        if not primers or not paths:
            return 0.0
        from ..analysis.batch import WirePrimeRequest

        requests = []
        seen = set()
        for path in paths:
            for stage in path.stages:
                gate = self.netlist.gates[stage.gate]
                dedupe = (stage.net, gate.cell.drive_resistance)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                net = self.netlist.nets[stage.net]
                requests.append(WirePrimeRequest(
                    net.rcnet, self.netlist.sink_loads(net),
                    gate.cell.drive_resistance))
        start = time.perf_counter()
        for primer in primers:
            primer(requests)
        return time.perf_counter() - start


# Per-worker STA engine installed once by the pool initializer, so the
# netlist and wire model ship per worker instead of per path.
_WORKER_ENGINE: Optional[STAEngine] = None


def _init_sta_worker(netlist: Netlist, wire_model: WireTimingModel,
                     launch_slew: float,
                     slew_model: Optional[WireTimingModel],
                     lenient_pins: bool = True) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = STAEngine(netlist, wire_model, launch_slew,
                               slew_model=slew_model,
                               lenient_pins=lenient_pins)


def _timed_path(index: int) -> Tuple[PathTiming, float, float]:
    """Worker entry point: time one path by index into the shipped netlist."""
    return _WORKER_ENGINE._timed_arrival(_WORKER_ENGINE.netlist.paths[index])
