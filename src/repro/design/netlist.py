"""Gate-level netlist structure.

A design is a layered DAG of gates connected by *design nets*; each design
net owns an extracted :class:`~repro.rcnet.graph.RCNet` whose source is the
driving gate's output pin and whose sinks map one-to-one onto the load pins.
This is the object the benchmark generator produces and the STA engine
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..liberty.cell import Cell
from ..rcnet.graph import RCNet
from ..robustness.errors import InputError


@dataclass(frozen=True)
class Gate:
    """One instantiated cell."""

    name: str
    cell: Cell

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential


@dataclass(frozen=True)
class LoadPin:
    """A (gate, input pin) pair receiving a net."""

    gate: str
    pin: str


@dataclass
class DesignNet:
    """A routed net: driver gate output to one or more load pins.

    ``rcnet.sinks[i]`` is the RC node where ``loads[i]`` connects, so sink
    loads for timing analysis are the input capacitances of the load cells
    in the same order.
    """

    name: str
    driver: str
    loads: List[LoadPin]
    rcnet: RCNet

    def __post_init__(self) -> None:
        if len(self.loads) != self.rcnet.num_sinks:
            raise ValueError(
                f"net {self.name!r}: {len(self.loads)} loads but RC net has "
                f"{self.rcnet.num_sinks} sinks")

    @property
    def fanout(self) -> int:
        return len(self.loads)


@dataclass(frozen=True)
class PathStage:
    """One gate-plus-wire hop of a timing path.

    The signal enters ``gate`` at ``input_pin``, propagates through the gate,
    then travels along ``net`` to the sink indexed ``sink_index`` (which is
    the input pin of the next stage's gate).
    """

    gate: str
    input_pin: str
    net: str
    sink_index: int


@dataclass
class TimingPath:
    """A launch-to-capture timing path: an ordered list of stages."""

    name: str
    stages: List[PathStage]

    def __len__(self) -> int:
        return len(self.stages)


class Netlist:
    """A complete synthetic design."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.nets: Dict[str, DesignNet] = {}
        self.paths: List[TimingPath] = []
        # net driven by each gate (gate name -> net name)
        self._driven_net: Dict[str, str] = {}

    # -- construction ----------------------------------------------------
    def add_gate(self, gate: Gate) -> None:
        if gate.name in self.gates:
            raise ValueError(f"duplicate gate {gate.name!r}")
        self.gates[gate.name] = gate

    def add_net(self, net: DesignNet) -> None:
        if net.name in self.nets:
            raise InputError(f"duplicate net {net.name!r}",
                             net=net.name, stage="netlist")
        if net.driver not in self.gates:
            raise InputError(f"net {net.name!r}: unknown driver "
                             f"{net.driver!r}", net=net.name, stage="netlist")
        for load in net.loads:
            if load.gate not in self.gates:
                raise InputError(f"net {net.name!r}: unknown load gate "
                                 f"{load.gate!r}", net=net.name,
                                 stage="netlist")
        if net.driver in self._driven_net:
            raise InputError(f"gate {net.driver!r} already drives a net",
                             net=net.name, stage="netlist")
        self.nets[net.name] = net
        self._driven_net[net.driver] = net.name

    def add_path(self, path: TimingPath) -> None:
        for stage in path.stages:
            if stage.gate not in self.gates:
                raise ValueError(f"path {path.name!r}: unknown gate {stage.gate!r}")
            if stage.net not in self.nets:
                raise ValueError(f"path {path.name!r}: unknown net {stage.net!r}")
            net = self.nets[stage.net]
            if not 0 <= stage.sink_index < net.fanout:
                raise ValueError(
                    f"path {path.name!r}: sink index {stage.sink_index} out of "
                    f"range for net {stage.net!r}")
        self.paths.append(path)

    # -- queries -----------------------------------------------------------
    def net_driven_by(self, gate_name: str) -> Optional[DesignNet]:
        """The net this gate's output drives, if any."""
        net_name = self._driven_net.get(gate_name)
        return self.nets[net_name] if net_name is not None else None

    def sink_loads(self, net: DesignNet) -> np.ndarray:
        """Receiver pin capacitances of a net, aligned with its sinks."""
        return np.array(
            [self.gates[load.gate].cell.input_cap for load in net.loads])

    @property
    def num_cells(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_ffs(self) -> int:
        return sum(1 for g in self.gates.values() if g.is_sequential)

    @property
    def num_nontree_nets(self) -> int:
        return sum(1 for n in self.nets.values() if not n.rcnet.is_tree())

    def iter_rcnets(self) -> Iterator[Tuple[DesignNet, RCNet]]:
        for net in self.nets.values():
            yield net, net.rcnet

    def statistics(self) -> Dict[str, int]:
        """The Table II row for this design."""
        return {
            "cells": self.num_cells,
            "nets": self.num_nets,
            "nontree_nets": self.num_nontree_nets,
            "ffs": self.num_ffs,
            "paths": len(self.paths),
        }

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, cells={self.num_cells}, "
                f"nets={self.num_nets}, paths={len(self.paths)})")
