"""Gate-level netlist structure.

A design is a layered DAG of gates connected by *design nets*; each design
net owns an extracted :class:`~repro.rcnet.graph.RCNet` whose source is the
driving gate's output pin and whose sinks map one-to-one onto the load pins.
This is the object the benchmark generator produces and the STA engine
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..liberty.cell import Cell
from ..rcnet.builder import RCNetBuilder
from ..rcnet.graph import RCNet
from ..robustness.errors import InputError


@dataclass(frozen=True)
class Gate:
    """One instantiated cell."""

    name: str
    cell: Cell

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential


@dataclass(frozen=True)
class LoadPin:
    """A (gate, input pin) pair receiving a net."""

    gate: str
    pin: str


@dataclass
class DesignNet:
    """A routed net: driver gate output to one or more load pins.

    ``rcnet.sinks[i]`` is the RC node where ``loads[i]`` connects, so sink
    loads for timing analysis are the input capacitances of the load cells
    in the same order.
    """

    name: str
    driver: str
    loads: List[LoadPin]
    rcnet: RCNet

    def __post_init__(self) -> None:
        if len(self.loads) != self.rcnet.num_sinks:
            raise ValueError(
                f"net {self.name!r}: {len(self.loads)} loads but RC net has "
                f"{self.rcnet.num_sinks} sinks")

    @property
    def fanout(self) -> int:
        return len(self.loads)


@dataclass(frozen=True)
class PathStage:
    """One gate-plus-wire hop of a timing path.

    The signal enters ``gate`` at ``input_pin``, propagates through the gate,
    then travels along ``net`` to the sink indexed ``sink_index`` (which is
    the input pin of the next stage's gate).
    """

    gate: str
    input_pin: str
    net: str
    sink_index: int


@dataclass
class TimingPath:
    """A launch-to-capture timing path: an ordered list of stages."""

    name: str
    stages: List[PathStage]

    def __len__(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class NetEdit:
    """Typed record of one applied netlist mutation (an ECO edit).

    Returned by every :class:`Netlist` edit method so incremental timing
    engines know exactly what to invalidate and what to leave warm:

    ``dirty_nets``
        nets whose cached stage timings (gate delay + wire delay at a
        given input slew) are stale after this edit;
    ``rewritten_paths``
        indices into :attr:`Netlist.paths` whose stage lists were changed
        in place (pin reconnects, buffer insertions) — these must be
        re-timed even when no cache entry went stale;
    ``old_rcnet``
        the pre-edit parasitics when the edit replaced a net's RC network,
        so content-addressed solver caches can drop the now-dead entries.
    """

    kind: str
    target: str
    dirty_nets: Tuple[str, ...]
    rewritten_paths: Tuple[int, ...] = ()
    details: Dict[str, object] = field(default_factory=dict)
    old_rcnet: Optional[RCNet] = None

    def summary(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        body = f"{self.kind} {self.target}"
        return f"{body} ({extras})" if extras else body


class Netlist:
    """A complete synthetic design."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.nets: Dict[str, DesignNet] = {}
        self.paths: List[TimingPath] = []
        # net driven by each gate (gate name -> net name)
        self._driven_net: Dict[str, str] = {}
        # reverse load index: gate name -> names of nets it loads.  Kept
        # in sync by add_net and every edit method, so invalidating a
        # gate's fanin is O(degree) instead of a scan over all nets.
        self._loading_nets: Dict[str, Set[str]] = {}

    # -- construction ----------------------------------------------------
    def add_gate(self, gate: Gate) -> None:
        if gate.name in self.gates:
            raise ValueError(f"duplicate gate {gate.name!r}")
        self.gates[gate.name] = gate

    def add_net(self, net: DesignNet) -> None:
        if net.name in self.nets:
            raise InputError(f"duplicate net {net.name!r}",
                             net=net.name, stage="netlist")
        if net.driver not in self.gates:
            raise InputError(f"net {net.name!r}: unknown driver "
                             f"{net.driver!r}", net=net.name, stage="netlist")
        for load in net.loads:
            if load.gate not in self.gates:
                raise InputError(f"net {net.name!r}: unknown load gate "
                                 f"{load.gate!r}", net=net.name,
                                 stage="netlist")
        if net.driver in self._driven_net:
            raise InputError(f"gate {net.driver!r} already drives a net",
                             net=net.name, stage="netlist")
        self.nets[net.name] = net
        self._driven_net[net.driver] = net.name
        for load in net.loads:
            self._loading_nets.setdefault(load.gate, set()).add(net.name)

    def add_path(self, path: TimingPath) -> None:
        for stage in path.stages:
            if stage.gate not in self.gates:
                raise ValueError(f"path {path.name!r}: unknown gate {stage.gate!r}")
            if stage.net not in self.nets:
                raise ValueError(f"path {path.name!r}: unknown net {stage.net!r}")
            net = self.nets[stage.net]
            if not 0 <= stage.sink_index < net.fanout:
                raise ValueError(
                    f"path {path.name!r}: sink index {stage.sink_index} out of "
                    f"range for net {stage.net!r}")
        self.paths.append(path)

    # -- queries -----------------------------------------------------------
    def net_driven_by(self, gate_name: str) -> Optional[DesignNet]:
        """The net this gate's output drives, if any."""
        net_name = self._driven_net.get(gate_name)
        return self.nets[net_name] if net_name is not None else None

    def nets_loaded_by(self, gate_name: str) -> List[str]:
        """Names of the nets this gate's input pins load (sorted).

        Served from the reverse load index, so the cost is O(degree)
        rather than a scan over every net's load list.
        """
        return sorted(self._loading_nets.get(gate_name, ()))

    def sink_loads(self, net: DesignNet) -> np.ndarray:
        """Receiver pin capacitances of a net, aligned with its sinks."""
        return np.array(
            [self.gates[load.gate].cell.input_cap for load in net.loads])

    # -- ECO edits ---------------------------------------------------------
    #
    # Each edit mutates the netlist *and its recorded paths* in place, so a
    # cold full STA pass on the edited netlist is always well defined, then
    # returns a NetEdit describing exactly what went stale.  Incremental
    # engines consume the record; everything not named in it stays warm.

    def resize_gate(self, gate_name: str, new_cell: Cell) -> NetEdit:
        """Swap the cell of ``gate_name`` (drive-strength / Vt change).

        Dirties the net the gate drives (output resistance changed) and
        every net it loads (input pin capacitance changed).  The new
        cell's timing arcs must cover the old cell's, so any path stage
        timing through this gate still resolves its arc (load pins
        without arcs — e.g. a flip-flop's capture ``D`` pin — are
        capacitance-only and need no arc).
        """
        gate = self._require_gate(gate_name)
        missing = sorted(set(gate.cell.arcs) - set(new_cell.arcs))
        if missing:
            raise InputError(
                f"resize {gate_name!r}: cell {new_cell.name!r} lacks timing "
                f"arcs {missing} of {gate.cell.name!r} "
                f"(arcs: {sorted(new_cell.arcs)})",
                design=self.name, stage="eco")
        old_cell = gate.cell
        self.gates[gate_name] = Gate(gate_name, new_cell)
        dirty = set(self.nets_loaded_by(gate_name))
        driven = self._driven_net.get(gate_name)
        if driven is not None:
            dirty.add(driven)
        return NetEdit(
            kind="resize_gate", target=gate_name,
            dirty_nets=tuple(sorted(dirty)),
            details={"old_cell": old_cell.name, "new_cell": new_cell.name})

    def reconnect_sink(self, net_name: str, sink_index: int,
                       new_pin: str) -> NetEdit:
        """Move a net's sink onto a different input pin of the same gate.

        The wire and its loads are electrically unchanged (pin caps are
        per cell, not per pin), so no cached stage timing goes stale —
        but the downstream stage now times through a different arc, so
        every path crossing this sink is rewritten and must be re-timed.
        """
        net = self._require_net(net_name)
        self._require_sink(net, sink_index)
        load = net.loads[sink_index]
        cell = self.gates[load.gate].cell
        if new_pin not in cell.arcs:
            raise InputError(
                f"reconnect {net_name!r} sink {sink_index}: gate "
                f"{load.gate!r} ({cell.name}) has no arc for pin "
                f"{new_pin!r}; arcs: {sorted(cell.arcs)}",
                net=net_name, design=self.name, stage="eco")
        old_pin = load.pin
        net.loads[sink_index] = LoadPin(load.gate, new_pin)
        rewritten = []
        for path_index, path in enumerate(self.paths):
            changed = False
            for j, stage in enumerate(path.stages):
                if (stage.net == net_name and stage.sink_index == sink_index
                        and j + 1 < len(path.stages)):
                    after = path.stages[j + 1]
                    path.stages[j + 1] = PathStage(
                        after.gate, new_pin, after.net, after.sink_index)
                    changed = True
            if changed:
                rewritten.append(path_index)
        return NetEdit(
            kind="reconnect_sink", target=net_name,
            dirty_nets=(), rewritten_paths=tuple(rewritten),
            details={"sink_index": sink_index, "old_pin": old_pin,
                     "new_pin": new_pin})

    def scale_net_rc(self, net_name: str, r_factor: float = 1.0,
                     c_factor: float = 1.0) -> NetEdit:
        """Uniformly scale one net's parasitics (layer / width ECO).

        Replaces the net's RC network with :meth:`RCNet.scaled`; the edit
        record carries the pre-edit network so content-addressed solver
        caches can drop the now-dead eigensolves.
        """
        net = self._require_net(net_name)
        old_rcnet = net.rcnet
        net.rcnet = old_rcnet.scaled(r_factor=r_factor, c_factor=c_factor)
        return NetEdit(
            kind="scale_net_rc", target=net_name, dirty_nets=(net_name,),
            details={"r_factor": r_factor, "c_factor": c_factor},
            old_rcnet=old_rcnet)

    def insert_buffer(self, net_name: str, sink_index: int, buffer_cell: Cell,
                      gate_name: Optional[str] = None,
                      new_net_name: Optional[str] = None,
                      rcnet: Optional[RCNet] = None) -> NetEdit:
        """Insert a buffer in front of one sink of ``net_name``.

        The sink's load pin is re-pointed at the new buffer gate, and a
        fresh single-sink net (``rcnet``, or a deterministic two-node stub
        wire) connects the buffer's output to the original load.  Every
        path crossing the buffered sink gains a stage for the buffer.
        The original net is dirtied: its sink load changed from the old
        receiver's input capacitance to the buffer's.
        """
        net = self._require_net(net_name)
        self._require_sink(net, sink_index)
        if not buffer_cell.arcs:
            raise InputError(
                f"buffer cell {buffer_cell.name!r} has no timing arcs",
                net=net_name, design=self.name, stage="eco")
        gname = gate_name if gate_name is not None \
            else f"eco_buf_{len(self.gates)}"
        nname = new_net_name if new_net_name is not None \
            else f"eco_net_{len(self.nets)}"
        if gname in self.gates:
            raise InputError(f"buffer gate name {gname!r} already in use",
                             net=net_name, design=self.name, stage="eco")
        if nname in self.nets:
            raise InputError(f"buffer net name {nname!r} already in use",
                             net=net_name, design=self.name, stage="eco")
        if rcnet is not None and rcnet.num_sinks != 1:
            raise InputError(
                f"buffer wire {rcnet.name!r} must have exactly one sink, "
                f"got {rcnet.num_sinks}",
                net=net_name, design=self.name, stage="eco")
        buffer_pin = "A" if "A" in buffer_cell.arcs \
            else next(iter(buffer_cell.arcs))
        old_load = net.loads[sink_index]
        if rcnet is None:
            builder = RCNetBuilder(nname)
            builder.add_node(f"{nname}:0", cap=0.2e-15)
            builder.add_node(f"{nname}:1", cap=0.2e-15)
            builder.add_edge(f"{nname}:0", f"{nname}:1", resistance=25.0)
            builder.set_source(f"{nname}:0")
            builder.add_sink(f"{nname}:1")
            rcnet = builder.build()

        self.add_gate(Gate(gname, buffer_cell))
        self.add_net(DesignNet(nname, driver=gname, loads=[old_load],
                               rcnet=rcnet))
        net.loads[sink_index] = LoadPin(gname, buffer_pin)
        self._loading_nets.setdefault(gname, set()).add(net_name)
        if not any(l.gate == old_load.gate for l in net.loads):
            self._loading_nets[old_load.gate].discard(net_name)

        rewritten = []
        for path_index, path in enumerate(self.paths):
            changed = False
            j = 0
            while j < len(path.stages):
                stage = path.stages[j]
                if stage.net == net_name and stage.sink_index == sink_index:
                    path.stages.insert(
                        j + 1, PathStage(gname, buffer_pin, nname, 0))
                    changed = True
                    j += 1  # skip the inserted buffer stage
                j += 1
            if changed:
                rewritten.append(path_index)
        return NetEdit(
            kind="insert_buffer", target=net_name,
            dirty_nets=(net_name,), rewritten_paths=tuple(rewritten),
            details={"sink_index": sink_index, "buffer_gate": gname,
                     "buffer_cell": buffer_cell.name, "new_net": nname})

    # -- edit-method validation helpers -----------------------------------
    def _require_gate(self, gate_name: str) -> Gate:
        gate = self.gates.get(gate_name)
        if gate is None:
            raise InputError(f"unknown gate {gate_name!r}",
                             design=self.name, stage="eco")
        return gate

    def _require_net(self, net_name: str) -> DesignNet:
        net = self.nets.get(net_name)
        if net is None:
            raise InputError(f"unknown net {net_name!r}",
                             net=net_name, design=self.name, stage="eco")
        return net

    def _require_sink(self, net: DesignNet, sink_index: int) -> None:
        if not 0 <= sink_index < net.fanout:
            raise InputError(
                f"net {net.name!r}: sink index {sink_index} out of range "
                f"(fanout {net.fanout})",
                net=net.name, design=self.name, stage="eco")

    @property
    def num_cells(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_ffs(self) -> int:
        return sum(1 for g in self.gates.values() if g.is_sequential)

    @property
    def num_nontree_nets(self) -> int:
        return sum(1 for n in self.nets.values() if not n.rcnet.is_tree())

    def iter_rcnets(self) -> Iterator[Tuple[DesignNet, RCNet]]:
        for net in self.nets.values():
            yield net, net.rcnet

    def statistics(self) -> Dict[str, int]:
        """The Table II row for this design."""
        return {
            "cells": self.num_cells,
            "nets": self.num_nets,
            "nontree_nets": self.num_nontree_nets,
            "ffs": self.num_ffs,
            "paths": len(self.paths),
        }

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, cells={self.num_cells}, "
                f"nets={self.num_nets}, paths={len(self.paths)})")
