"""Path counting on netlists and on wires (the Fig. 2 statistics).

The paper motivates GNNTrans with an asymmetry: the number of *netlist*
paths explodes exponentially with gate count (Fig. 2(a)), while each wire
has only as many paths as sinks — at most a few tens (Fig. 2(b)).  This
module computes both statistics exactly:

* :func:`count_netlist_paths` — dynamic programming over the gate DAG, so
  the count is exact even when it is astronomically large;
* :func:`wire_path_histogram` — per-net path (sink) counts of a design.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .netlist import Netlist


def count_netlist_paths(netlist: Netlist) -> int:
    """Exact number of launch-to-capture gate-level paths in the design.

    A path starts at a sequential gate's output and ends when it reaches a
    sequential gate's input.  Counting uses memoized DP over the gate DAG
    (``paths(g) = sum over fanout loads``), so runtime is linear in edges
    even though the result grows exponentially with depth.
    """
    memo: Dict[str, int] = {}

    def paths_from(gate_name: str) -> int:
        if gate_name in memo:
            return memo[gate_name]
        memo[gate_name] = 0  # cycle guard; layered designs have none
        net = netlist.net_driven_by(gate_name)
        if net is None:
            memo[gate_name] = 0
            return 0
        total = 0
        for load in net.loads:
            if netlist.gates[load.gate].is_sequential:
                total += 1
            else:
                total += paths_from(load.gate)
        memo[gate_name] = total
        return total

    return sum(paths_from(g.name) for g in netlist.gates.values()
               if g.is_sequential)


def wire_path_histogram(netlist: Netlist) -> Dict[int, int]:
    """Histogram ``{paths_per_net: net_count}`` over all nets of a design.

    Since a wire path runs from the source to one sink (Definition 1), the
    per-net path count is simply the sink count; the histogram is the data
    behind Fig. 2(b).
    """
    histogram: Dict[int, int] = {}
    for net in netlist.nets.values():
        count = net.rcnet.num_sinks
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def max_wire_paths(netlist: Netlist) -> int:
    """Largest per-net wire path count in the design (Fig. 2(b)'s max)."""
    return max((net.rcnet.num_sinks for net in netlist.nets.values()), default=0)


def path_count_sweep(netlists: List[Netlist]) -> List[Tuple[int, int]]:
    """(gate count, exact netlist path count) pairs for a design sweep."""
    return [(n.num_cells, count_netlist_paths(n)) for n in netlists]
