"""Synthetic design generator.

Builds layered-DAG netlists with routed RC parasitics on every net, serving
as the substitution for the paper's routed OpenCore designs (see DESIGN.md).
Every quantity Table II reports — cell count, net count, non-tree net
fraction, flip-flop count, timing-path count — is a controllable parameter,
so the named paper benchmarks can be regenerated at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..liberty.library import Library, make_default_library
from ..rcnet.builder import RCNetBuilder
from ..rcnet.graph import RCNet
from ..rcnet.topology import ParasiticRanges, random_nontree_net, random_tree_net
from .netlist import DesignNet, Gate, LoadPin, Netlist, PathStage, TimingPath


@dataclass
class DesignSpec:
    """Parameters of one synthetic design.

    Attributes
    ----------
    name:
        Design name (also used in net/gate names).
    n_combinational:
        Number of combinational gates.
    n_ffs:
        Number of flip-flops (split roughly evenly into launch and capture).
    n_paths:
        Number of timing paths to record (Table II's "#CPs").
    nontree_frac:
        Fraction of nets realized with resistive loops.
    levels:
        Depth of the combinational DAG.
    net_nodes_range:
        Min/max RC nodes per net (before sink-leaf padding).
    input_locality:
        Probability that a gate input connects to the *immediately
        previous* level instead of any earlier one.  High locality makes
        deep reconvergent logic whose path count grows exponentially with
        depth (the Fig. 2(a) regime); 0 keeps uniform fanin.
    seed:
        Seed of the design's private RNG; the same spec always generates
        the identical design.
    """

    name: str
    n_combinational: int = 120
    n_ffs: int = 16
    n_paths: int = 40
    nontree_frac: float = 0.3
    levels: int = 5
    net_nodes_range: Tuple[int, int] = (6, 28)
    input_locality: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_combinational < self.levels:
            raise ValueError("need at least one gate per level")
        if self.n_ffs < 4:
            raise ValueError("need at least 4 flip-flops (2 launch + 2 capture)")
        if not 0.0 <= self.nontree_frac <= 1.0:
            raise ValueError("nontree_frac must be in [0, 1]")


def generate_design(spec: DesignSpec, library: Optional[Library] = None) -> Netlist:
    """Generate a complete netlist from ``spec``.

    The construction is:

    1. place launch flip-flops at level 0 and capture flip-flops after the
       last level; spread combinational gates over levels 1..L;
    2. connect every combinational input pin to a random gate in an earlier
       level (or a launch FF), defining each gate's fanout;
    3. route one RC net per driving gate with exactly ``fanout`` sinks,
       non-tree with probability ``spec.nontree_frac``;
    4. record ``spec.n_paths`` random launch-to-capture timing paths.
    """
    library = library or make_default_library()
    rng = np.random.default_rng(spec.seed)
    netlist = Netlist(spec.name)

    n_launch = max(2, spec.n_ffs // 2)
    n_capture = max(2, spec.n_ffs - n_launch)
    ff_cells = library.sequential
    comb_cells = library.combinational

    launch_ffs = [f"{spec.name}/lff{i}" for i in range(n_launch)]
    for name in launch_ffs:
        netlist.add_gate(Gate(name, ff_cells[int(rng.integers(len(ff_cells)))]))

    # Levelized combinational gates.
    levels: List[List[str]] = [[] for _ in range(spec.levels)]
    for i in range(spec.n_combinational):
        level = i % spec.levels if i < spec.levels else int(rng.integers(spec.levels))
        name = f"{spec.name}/g{i}"
        netlist.add_gate(Gate(name, comb_cells[int(rng.integers(len(comb_cells)))]))
        levels[level].append(name)

    # Wire inputs: record (load gate, pin) lists per driver, remembering
    # each assignment so unused gates can be rewired in below.
    fanout: Dict[str, List[LoadPin]] = {g: [] for g in netlist.gates}
    gate_level = {g: idx for idx, lvl in enumerate(levels) for g in lvl}
    assignments: List[List] = []  # mutable [source, LoadPin, load_level]
    for level_idx, level_gates in enumerate(levels):
        sources = list(launch_ffs)
        for earlier in levels[:level_idx]:
            sources.extend(earlier)
        previous = levels[level_idx - 1] if level_idx > 0 else []
        for gate_name in level_gates:
            gate = netlist.gates[gate_name]
            for pin_idx in range(gate.cell.num_inputs):
                pin = chr(ord("A") + pin_idx)
                if (spec.input_locality > 0.0 and previous
                        and rng.random() < spec.input_locality):
                    source = previous[int(rng.integers(len(previous)))]
                else:
                    source = sources[int(rng.integers(len(sources)))]
                load = LoadPin(gate_name, pin)
                fanout[source].append(load)
                assignments.append([source, load, level_idx])

    # Rewire pass: gates that ended up without fanout steal a load pin
    # from a multi-fanout source at a later level, so nearly every gate
    # drives something without inflating the flip-flop count.
    for gate_name in (g for lvl in levels for g in lvl):
        if fanout[gate_name]:
            continue
        level = gate_level[gate_name]
        candidates = [a for a in assignments
                      if a[2] > level and len(fanout[a[0]]) >= 2]
        if not candidates:
            continue
        chosen = candidates[int(rng.integers(len(candidates)))]
        old_source, load, _ = chosen
        fanout[old_source].remove(load)
        fanout[gate_name].append(load)
        chosen[0] = gate_name

    # Capture FFs: every D pin has exactly one driver (single-driver
    # semantics, as structural Verilog requires).  Remaining zero-fanout
    # gates (typically only last-level ones) each get a dedicated capture
    # FF so every gate lies on a launch-to-capture route; any remaining FF
    # budget consumes random deep gates.
    zero_fanout = [g for lvl in levels for g in lvl if not fanout[g]]
    n_capture = max(n_capture, len(zero_fanout))
    capture_ffs = [f"{spec.name}/cff{i}" for i in range(n_capture)]
    for name in capture_ffs:
        netlist.add_gate(Gate(name, ff_cells[int(rng.integers(len(ff_cells)))]))
        fanout[name] = []
    deep_sources = levels[-1] + levels[-2] if spec.levels >= 2 else levels[-1]
    for index, ff_name in enumerate(capture_ffs):
        if index < len(zero_fanout):
            source = zero_fanout[index]
        else:
            source = deep_sources[int(rng.integers(len(deep_sources)))]
        fanout[source].append(LoadPin(ff_name, "D"))

    # Route one RC net per driving gate.
    net_index = 0
    for driver, loads in fanout.items():
        if not loads:
            continue
        net_name = f"{spec.name}/n{net_index}"
        net_index += 1
        non_tree = rng.random() < spec.nontree_frac
        rcnet = make_net_with_sinks(rng, net_name, len(loads),
                                    non_tree=non_tree,
                                    nodes_range=spec.net_nodes_range)
        netlist.add_net(DesignNet(net_name, driver, list(loads), rcnet))

    _record_paths(netlist, spec, rng, launch_ffs, set(capture_ffs))
    return netlist


def make_net_with_sinks(rng: np.random.Generator, name: str, n_sinks: int,
                        non_tree: bool,
                        nodes_range: Tuple[int, int] = (6, 28),
                        ranges: Optional[ParasiticRanges] = None) -> RCNet:
    """Generate an RC net with *exactly* ``n_sinks`` sinks.

    The topology generators pick sinks among tree leaves, so a tree with too
    few leaves is padded with extra leaf nodes before sink selection.
    """
    ranges = ranges or ParasiticRanges()
    n_nodes = int(rng.integers(max(nodes_range[0], n_sinks + 2),
                               max(nodes_range[1], n_sinks + 3) + 1))
    base_name = name.replace("/", "_")
    if non_tree:
        net = random_nontree_net(rng, n_nodes, n_sinks=None,
                                 n_loops=int(rng.integers(2, 5)),
                                 name=base_name, ranges=ranges,
                                 coupling_prob=0.5)
    else:
        net = random_tree_net(rng, n_nodes, n_sinks=None, name=base_name,
                              ranges=ranges, coupling_prob=0.35)
    if net.num_sinks == n_sinks:
        return net
    if net.num_sinks > n_sinks:
        return _trim_sinks(net, rng, n_sinks)
    return _pad_leaves(net, rng, n_sinks, ranges)


def _trim_sinks(net: RCNet, rng: np.random.Generator, n_sinks: int) -> RCNet:
    """Keep a random subset of ``n_sinks`` sinks."""
    chosen = sorted(int(s) for s in
                    rng.choice(net.sinks, size=n_sinks, replace=False))
    return RCNet(net.name, net.nodes, net.edges, net.source, chosen,
                 net.couplings)


def _pad_leaves(net: RCNet, rng: np.random.Generator, n_sinks: int,
                ranges: ParasiticRanges) -> RCNet:
    """Attach extra leaf nodes until ``n_sinks`` sinks exist."""
    builder = RCNetBuilder(net.name)
    for node in net.nodes:
        builder.add_node(node.name, cap=node.cap)
    for edge in net.edges:
        builder.add_edge(net.nodes[edge.u].name, net.nodes[edge.v].name,
                         edge.resistance)
    builder.set_source(net.nodes[net.source].name)
    sinks = [net.nodes[s].name for s in net.sinks]
    extra = 0
    while len(sinks) < n_sinks:
        attach = int(rng.integers(net.num_nodes))
        leaf_name = f"{net.name}:x{extra}"
        extra += 1
        builder.add_node(leaf_name, cap=ranges.sample_cap(rng))
        builder.add_edge(net.nodes[attach].name, leaf_name,
                         ranges.sample_resistance(rng))
        sinks.append(leaf_name)
    for sink in sinks:
        builder.add_sink(sink)
    for coupling in net.couplings:
        builder.add_coupling(net.nodes[coupling.victim].name,
                             coupling.aggressor_name, coupling.cap,
                             coupling.activity)
    return builder.build()


def _record_paths(netlist: Netlist, spec: DesignSpec, rng: np.random.Generator,
                  launch_ffs: Sequence[str], capture_ffs: set) -> None:
    """Sample ``spec.n_paths`` random launch-to-capture timing paths."""
    for path in sample_timing_paths(netlist, spec.n_paths, rng,
                                    launch_ffs=launch_ffs,
                                    capture_ffs=capture_ffs,
                                    max_hops=4 * spec.levels + 4):
        netlist.add_path(path)


def sample_timing_paths(netlist: Netlist, n_paths: int,
                        rng: Optional[np.random.Generator] = None,
                        launch_ffs: Optional[Sequence[str]] = None,
                        capture_ffs: Optional[set] = None,
                        max_hops: int = 40) -> List[TimingPath]:
    """Sample random launch-to-capture timing paths through any netlist.

    Launch points default to sequential gates that drive a net; capture
    points to sequential gates (reached through a load pin).  Useful for
    designs reconstructed from Verilog/SPEF, which carry no path list.
    """
    rng = rng or np.random.default_rng(0)
    if launch_ffs is None:
        launch_ffs = [g.name for g in netlist.gates.values()
                      if g.is_sequential and netlist.net_driven_by(g.name)]
    else:
        launch_ffs = list(launch_ffs)
    if capture_ffs is None:
        capture_ffs = {g.name for g in netlist.gates.values()
                       if g.is_sequential}
    if not launch_ffs:
        return []
    paths: List[TimingPath] = []
    attempts = 0
    while len(paths) < n_paths and attempts < 50 * max(1, n_paths):
        attempts += 1
        gate_name = launch_ffs[int(rng.integers(len(launch_ffs)))]
        input_pin = "CK"
        stages: List[PathStage] = []
        ok = False
        for _ in range(max_hops):
            net = netlist.net_driven_by(gate_name)
            if net is None:
                break
            sink_index = int(rng.integers(net.fanout))
            stages.append(PathStage(gate_name, input_pin, net.name, sink_index))
            load = net.loads[sink_index]
            if load.gate in capture_ffs and load.gate != stages[0].gate:
                ok = True
                break
            gate_name, input_pin = load.gate, load.pin
        if ok and stages:
            paths.append(TimingPath(f"{netlist.name}/p{len(paths)}", stages))
    return paths
