"""Structural Verilog writer/parser for gate-level netlists.

Connectivity interchange in real flows is a structural Verilog netlist;
together with SPEF (parasitics) and Liberty (cell timing), it fully
describes a routed design.  This module writes the gate-level subset —
module, wire declarations, named-port cell instances — and parses it back.

Conventions:

* every gate output drives the wire named after its design net;
* combinational outputs are pin ``Z``, flip-flop outputs pin ``Q``;
* flip-flops clock from the global ``clk`` wire; launch flip-flops with
  no fanin tie ``D`` to ``1'b0``;
* one instance per gate, instance name = gate name (escaped with the
  standard ``\\`` prefix when it contains hierarchy separators).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..liberty.library import Library
from .netlist import DesignNet, Gate, LoadPin, Netlist


class VerilogError(ValueError):
    """Raised on malformed structural Verilog input."""


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def write_verilog(netlist: Netlist) -> str:
    """Serialize the netlist's connectivity to structural Verilog."""
    module_name = _escape(netlist.name)
    lines: List[str] = [
        f"// structural netlist of design {netlist.name}",
        f"module {module_name} (clk);",
        "  input clk;",
    ]
    for net_name in netlist.nets:
        lines.append(f"  wire {_escape(net_name)} ;")
    lines.append("")

    # Input connections per gate: pin -> driving net.
    fanin: Dict[str, Dict[str, str]] = {name: {} for name in netlist.gates}
    for net in netlist.nets.values():
        for load in net.loads:
            fanin[load.gate][load.pin] = net.name

    for gate_name, gate in netlist.gates.items():
        ports: List[str] = []
        if gate.is_sequential:
            ports.append(".CK(clk)")
            d_net = fanin[gate_name].get("D")
            ports.append(f".D({_escape(d_net)} )" if d_net
                         else ".D(1'b0)")
            output_pin = "Q"
        else:
            for pin_idx in range(gate.cell.num_inputs):
                pin = chr(ord("A") + pin_idx)
                source = fanin[gate_name].get(pin)
                ports.append(f".{pin}({_escape(source)} )" if source
                             else f".{pin}(1'b0)")
            output_pin = "Z"
        driven = netlist.net_driven_by(gate_name)
        if driven is not None:
            ports.append(f".{output_pin}({_escape(driven.name)} )")
        lines.append(f"  {gate.cell.name} {_escape(gate_name)} "
                     f"( {', '.join(ports)} );")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _escape(name: str) -> str:
    """Escape identifiers containing characters plain Verilog disallows."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return "\\" + name  # escaped identifier; must be followed by whitespace


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
@dataclass
class ParsedInstance:
    """One cell instance: name, cell type, pin connections."""

    name: str
    cell: str
    connections: Dict[str, str] = field(default_factory=dict)


@dataclass
class ParsedModule:
    """Structural content of one module."""

    name: str
    wires: List[str] = field(default_factory=list)
    instances: List[ParsedInstance] = field(default_factory=list)


def parse_verilog(text: str) -> ParsedModule:
    """Parse the structural subset written by :func:`write_verilog`."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)

    module_match = re.search(r"\bmodule\s+(\\?\S+)\s*\(", text)
    if not module_match:
        raise VerilogError("no module declaration found")
    module = ParsedModule(_unescape(module_match.group(1)))

    for wire_match in re.finditer(r"\bwire\s+([^;]+);", text):
        for token in wire_match.group(1).split(","):
            token = token.strip()
            if token:
                module.wires.append(_unescape(token))

    instance_re = re.compile(
        r"^\s*([A-Za-z_][\w$]*)\s+(\\?\S+)\s*\(\s*(\..*?)\)\s*;",
        flags=re.M | re.S)
    for match in instance_re.finditer(text):
        cell, inst, body = match.groups()
        if cell in ("module", "input", "output", "wire"):
            continue
        instance = ParsedInstance(_unescape(inst), cell)
        for port in re.finditer(r"\.(\w+)\(\s*([^)]*?)\s*\)", body):
            instance.connections[port.group(1)] = _unescape(port.group(2))
        if not instance.connections:
            raise VerilogError(
                f"instance {instance.name!r} has no port connections")
        module.instances.append(instance)
    if not module.instances:
        raise VerilogError(f"module {module.name!r} has no instances")
    return module


def _unescape(token: str) -> str:
    token = token.strip()
    return token[1:] if token.startswith("\\") else token


# ----------------------------------------------------------------------
# Netlist reconstruction (Verilog + per-net RC data)
# ----------------------------------------------------------------------
def connectivity_from_module(module: ParsedModule, library: Library
                             ) -> Tuple[Dict[str, Gate], Dict[str, Tuple[str, List[LoadPin]]]]:
    """Derive gates and net connectivity from a parsed module.

    Returns ``(gates, nets)`` where ``nets[name] = (driver gate, loads)``.
    Raises :class:`VerilogError` for unknown cells or multiply-driven
    wires.
    """
    gates: Dict[str, Gate] = {}
    drivers: Dict[str, str] = {}
    loads: Dict[str, List[LoadPin]] = {}
    for instance in module.instances:
        if instance.cell not in library:
            raise VerilogError(f"unknown cell {instance.cell!r} "
                               f"(instance {instance.name!r})")
        cell = library.cell(instance.cell)
        gates[instance.name] = Gate(instance.name, cell)
        for pin, wire in instance.connections.items():
            if wire in ("clk", "1'b0", "1'b1"):
                continue
            if pin in ("Z", "Q"):
                if wire in drivers:
                    raise VerilogError(f"wire {wire!r} has multiple drivers")
                drivers[wire] = instance.name
            else:
                loads.setdefault(wire, []).append(
                    LoadPin(instance.name, pin))
    nets: Dict[str, Tuple[str, List[LoadPin]]] = {}
    for wire, driver in drivers.items():
        nets[wire] = (driver, loads.get(wire, []))
    return gates, nets
