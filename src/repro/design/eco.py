"""ECO timing: replay netlist edits, re-time only the affected cone.

The paper's closing claim is that a fast wire estimator enables
*incremental* timing optimization on routed designs: a net changes, and
only the paths downstream of that change should pay for re-analysis.
This module is that loop, built on three pieces:

* the :class:`~repro.design.netlist.Netlist` edit API (driver resize,
  sink-pin reconnect, R/C scaling, buffer insertion), each mutation
  returning a typed :class:`~repro.design.netlist.NetEdit` record of what
  went stale;
* the exact-key mode of :class:`IncrementalSTAEngine`
  (``slew_quantum=None``), whose stage memo replays the very floats a
  cold pass would recompute — a hit is bitwise identical, never merely
  close;
* a fanout-cone index from net name to the timing paths crossing it, so
  an edit maps to precisely the paths that must be re-timed.

The headline invariant is the **parity contract**: after any sequence of
edits, :meth:`ECOTimingEngine.results` is bitwise identical — arrivals,
slews, and per-stage breakdowns — to a cold full
:class:`~repro.design.sta.STAEngine` pass over the edited netlist.
:meth:`ECOTimingEngine.verify_parity` checks it directly and is wired
into the CLI (``repro sta --incremental --verify``) and CI.

Edit scripts are JSON documents with schema :data:`EDIT_SCHEMA`::

    {"schema": "repro-eco-edits/1",
     "edits": [
       {"op": "resize_gate", "gate": "g3", "cell": "INV_X4"},
       {"op": "reconnect_sink", "net": "n5", "sink_index": 1,
        "new_pin": "B"},
       {"op": "scale_net_rc", "net": "n2", "r_factor": 1.2,
        "c_factor": 0.8},
       {"op": "insert_buffer", "net": "n7", "sink_index": 0,
        "cell": "BUF_X2"}]}

Replay counters land in the ``incremental.*`` metric family (see
docs/METRICS.md and docs/ECO.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.cache import SolveCache, get_solve_cache, solve_key
from ..analysis.mna import capacitance_vector
from ..liberty.library import Library
from ..obs import get_metrics
from ..robustness.errors import InputError
from .incremental import IncrementalSTAEngine
from .netlist import NetEdit, Netlist
from .sta import PathTiming, STAEngine, WireTimingModel

__all__ = ["EDIT_SCHEMA", "EditCommand", "EditOutcome", "ECOTimingEngine",
           "load_edit_script", "apply_edit_command", "compare_timing"]

#: Version tag every edit-script document must carry.
EDIT_SCHEMA = "repro-eco-edits/1"

_EDITS_APPLIED = get_metrics().counter("incremental.edits_applied")
_PATHS_RETIMED = get_metrics().counter("incremental.paths_retimed")
_PATHS_REUSED = get_metrics().counter("incremental.paths_reused")
_STAGES_REUSED = get_metrics().counter("incremental.stages_reused")
_STALE_DROPPED = get_metrics().counter("incremental.stale_entries_dropped")
_SOLVES_INVALIDATED = get_metrics().counter("incremental.solves_invalidated")
_CONE_SIZE = get_metrics().histogram("incremental.cone_size")


# ----------------------------------------------------------------------
# Edit scripts
# ----------------------------------------------------------------------
#: Required (and optional, mapped to defaults) JSON fields per operation.
_OP_FIELDS: Dict[str, Tuple[Tuple[str, type], ...]] = {
    "resize_gate": (("gate", str), ("cell", str)),
    "reconnect_sink": (("net", str), ("sink_index", int), ("new_pin", str)),
    "scale_net_rc": (("net", str),),
    "insert_buffer": (("net", str), ("sink_index", int), ("cell", str)),
}


@dataclass(frozen=True)
class EditCommand:
    """One validated entry of an edit script (not yet applied)."""

    op: str
    params: Dict[str, object] = field(default_factory=dict)


def load_edit_script(document: object) -> List[EditCommand]:
    """Validate a parsed edit-script JSON document into commands.

    Raises :class:`InputError` on a wrong schema tag, a non-list
    ``edits`` field, an unknown operation, or missing/badly-typed
    per-operation fields — nothing is applied partially.
    """
    if not isinstance(document, dict):
        raise InputError(f"edit script must be a JSON object, got "
                         f"{type(document).__name__}", stage="eco")
    schema = document.get("schema")
    if schema != EDIT_SCHEMA:
        raise InputError(f"edit script schema must be {EDIT_SCHEMA!r}, "
                         f"got {schema!r}", stage="eco")
    edits = document.get("edits")
    if not isinstance(edits, list):
        raise InputError("edit script field 'edits' must be a list",
                         stage="eco")
    commands: List[EditCommand] = []
    for position, entry in enumerate(edits):
        if not isinstance(entry, dict):
            raise InputError(f"edit #{position} must be an object",
                             stage="eco")
        op = entry.get("op")
        if op not in _OP_FIELDS:
            raise InputError(
                f"edit #{position}: unknown op {op!r} "
                f"(known: {sorted(_OP_FIELDS)})", stage="eco")
        params: Dict[str, object] = {}
        for name, kind in _OP_FIELDS[op]:
            if name not in entry:
                raise InputError(f"edit #{position} ({op}): missing field "
                                 f"{name!r}", stage="eco")
            value = entry[name]
            if not isinstance(value, kind) or isinstance(value, bool):
                raise InputError(
                    f"edit #{position} ({op}): field {name!r} must be "
                    f"{kind.__name__}, got {type(value).__name__}",
                    stage="eco")
            params[name] = value
        if op == "scale_net_rc":
            for factor in ("r_factor", "c_factor"):
                raw = entry.get(factor, 1.0)
                if not isinstance(raw, (int, float)) or isinstance(raw, bool):
                    raise InputError(
                        f"edit #{position} ({op}): field {factor!r} must "
                        f"be a number", stage="eco")
                params[factor] = float(raw)
        commands.append(EditCommand(op, params))
    return commands


def apply_edit_command(netlist: Netlist, library: Library,
                       command: EditCommand) -> NetEdit:
    """Apply one validated command to ``netlist``; returns its edit record.

    ``library`` resolves cell names for resize and buffer-insertion
    operations; an unknown cell surfaces as a typed :class:`InputError`.
    """
    params = command.params

    def cell(name: object):
        try:
            return library.cell(str(name))
        except KeyError as exc:
            raise InputError(f"{command.op}: {exc}", design=netlist.name,
                             stage="eco", cause=exc) from exc

    if command.op == "resize_gate":
        return netlist.resize_gate(str(params["gate"]), cell(params["cell"]))
    if command.op == "reconnect_sink":
        return netlist.reconnect_sink(str(params["net"]),
                                      int(params["sink_index"]),  # type: ignore[arg-type]
                                      str(params["new_pin"]))
    if command.op == "scale_net_rc":
        return netlist.scale_net_rc(str(params["net"]),
                                    r_factor=float(params["r_factor"]),  # type: ignore[arg-type]
                                    c_factor=float(params["c_factor"]))  # type: ignore[arg-type]
    if command.op == "insert_buffer":
        return netlist.insert_buffer(str(params["net"]),
                                     int(params["sink_index"]),  # type: ignore[arg-type]
                                     cell(params["cell"]))
    raise InputError(f"unknown edit op {command.op!r}", stage="eco")


# ----------------------------------------------------------------------
# The replay engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EditOutcome:
    """What one edit replay actually did."""

    edit: NetEdit
    retimed_paths: Tuple[int, ...]
    stages_reused: int
    stale_entries_dropped: int
    solves_invalidated: int

    @property
    def cone_size(self) -> int:
        return len(self.retimed_paths)


class ECOTimingEngine:
    """Incremental re-timing of a netlist under an edit sequence.

    Usage: construct, run :meth:`full_pass` once to establish the
    baseline (and warm the stage memo), then alternate netlist edit
    calls with :meth:`apply` on the returned records.  :attr:`results`
    always reflects the current netlist, bitwise equal to what a cold
    full pass would produce.

    Parameters mirror :class:`IncrementalSTAEngine`; the slew key is
    pinned to exact mode because quantized reuse would break the parity
    contract.  ``solve_cache`` overrides the process-wide
    :class:`~repro.analysis.cache.SolveCache` for eigensolve hygiene
    (tests inject their own).
    """

    def __init__(self, netlist: Netlist, wire_model: WireTimingModel,
                 launch_slew: float = 20e-12, lenient_pins: bool = False,
                 solve_cache: Optional[SolveCache] = None) -> None:
        self.netlist = netlist
        self.engine = IncrementalSTAEngine(
            netlist, wire_model, launch_slew, slew_quantum=None,
            lenient_pins=lenient_pins)
        self._solve_cache = solve_cache
        self._results: Optional[List[PathTiming]] = None
        # fanout-cone index: net name -> indices of paths crossing it.
        self._cone_index: Dict[str, Set[int]] = {}

    # -- baseline ----------------------------------------------------------
    def full_pass(self) -> List[PathTiming]:
        """Time every recorded path, fill the memo, build the cone index."""
        self._results = [self.engine.path_arrival(path)
                         for path in self.netlist.paths]
        self._cone_index = {}
        self._index_paths(range(len(self.netlist.paths)))
        return list(self._results)

    @property
    def results(self) -> List[PathTiming]:
        """Current per-path timings (same order as ``netlist.paths``)."""
        if self._results is None:
            raise InputError("ECOTimingEngine: run full_pass() before "
                             "reading results", design=self.netlist.name,
                             stage="eco")
        return list(self._results)

    # -- cone index --------------------------------------------------------
    def _index_paths(self, indices) -> None:
        for index in indices:
            for stage in self.netlist.paths[index].stages:
                self._cone_index.setdefault(stage.net, set()).add(index)

    def _reindex_paths(self, indices: Sequence[int]) -> None:
        stale = set(indices)
        for members in self._cone_index.values():
            members -= stale
        self._index_paths(stale)

    def cone(self, net_names: Sequence[str]) -> Set[int]:
        """Indices of the paths crossing any of ``net_names``."""
        affected: Set[int] = set()
        for name in net_names:
            affected |= self._cone_index.get(name, set())
        return affected

    # -- edit replay -------------------------------------------------------
    def apply(self, edit: NetEdit) -> EditOutcome:
        """Propagate one already-applied netlist edit through the timing.

        Drops exactly the stage-memo entries for the edit's dirty nets
        (and the dead eigensolve, when the edit rewrote an RC network),
        then re-times the union of the dirty nets' fanout cones and the
        structurally rewritten paths.  Everything else is served from
        the warm memo.
        """
        if self._results is None:
            raise InputError("ECOTimingEngine: run full_pass() before "
                             "applying edits", design=self.netlist.name,
                             stage="eco")
        dropped = self.engine.invalidate_nets(edit.dirty_nets)
        solves = self._invalidate_solves(edit)
        if edit.rewritten_paths:
            # Structural edits changed these paths' stage lists; refresh
            # their cone-index rows before computing the dirty set.
            self._reindex_paths(edit.rewritten_paths)
        dirty = self.cone(edit.dirty_nets) | set(edit.rewritten_paths)
        hits_before = self.engine.hits
        for index in sorted(dirty):
            self._results[index] = self.engine.path_arrival(
                self.netlist.paths[index])
        stages_reused = self.engine.hits - hits_before
        _EDITS_APPLIED.inc()
        _PATHS_RETIMED.inc(len(dirty))
        _PATHS_REUSED.inc(len(self._results) - len(dirty))
        _STAGES_REUSED.inc(stages_reused)
        _STALE_DROPPED.inc(dropped)
        _SOLVES_INVALIDATED.inc(solves)
        _CONE_SIZE.observe(len(dirty))
        return EditOutcome(edit=edit, retimed_paths=tuple(sorted(dirty)),
                           stages_reused=stages_reused,
                           stale_entries_dropped=dropped,
                           solves_invalidated=solves)

    def _invalidate_solves(self, edit: NetEdit) -> int:
        """Drop the eigensolve primed for an edit's pre-edit RC network.

        Best-effort hygiene: the key is recomputed from the old topology
        and the *current* receiver loads, which is exact immediately
        after the edit (loads are untouched by an RC rewrite).  A missing
        entry is not an error — the cache may simply never have seen the
        net.
        """
        if edit.old_rcnet is None:
            return 0
        net = self.netlist.nets.get(edit.target)
        if net is None:
            return 0
        cache = self._solve_cache if self._solve_cache is not None \
            else get_solve_cache()
        driver = self.netlist.gates[net.driver]
        caps = capacitance_vector(edit.old_rcnet, miller_factor=None,
                                  sink_loads=self.netlist.sink_loads(net))
        key = solve_key(edit.old_rcnet, caps, driver.cell.drive_resistance)
        return int(cache.invalidate(key))

    # -- parity ------------------------------------------------------------
    def verify_parity(self) -> List[str]:
        """Bitwise-compare current results against a cold full STA pass.

        Returns a list of human-readable mismatch descriptions — empty
        means the parity contract holds.  The cold engine uses the same
        wire model, launch slew and pin strictness, so any difference is
        a dirty-propagation bug, not a modeling choice.
        """
        cold = STAEngine(self.netlist, self.engine.wire_model,
                         self.engine.launch_slew,
                         lenient_pins=self.engine.lenient_pins
                         ).analyze_design()
        return compare_timing(self.results, cold.paths)


def compare_timing(incremental: Sequence[PathTiming],
                   cold: Sequence[PathTiming]) -> List[str]:
    """Bitwise comparison of two per-path timing lists.

    Every float is compared with ``==`` (no tolerance): the ECO parity
    contract demands the incremental replay reproduce a cold pass
    exactly, which the exact-slew stage memo makes possible.
    """
    problems: List[str] = []
    if len(incremental) != len(cold):
        return [f"path count differs: {len(incremental)} != {len(cold)}"]
    for a, b in zip(incremental, cold):
        prefix = f"path {a.path_name!r}"
        if a.path_name != b.path_name:
            problems.append(f"{prefix}: name mismatch ({b.path_name!r})")
            continue
        for attr in ("arrival", "gate_delay_total", "wire_delay_total"):
            left, right = getattr(a, attr), getattr(b, attr)
            if left != right:
                problems.append(f"{prefix}: {attr} {left!r} != {right!r}")
        if len(a.stages) != len(b.stages):
            problems.append(f"{prefix}: stage count {len(a.stages)} != "
                            f"{len(b.stages)}")
            continue
        for position, (sa, sb) in enumerate(zip(a.stages, b.stages)):
            for attr in ("gate", "net", "gate_delay", "wire_delay",
                         "slew_out"):
                left, right = getattr(sa, attr), getattr(sb, attr)
                if left != right:
                    problems.append(f"{prefix} stage {position}: {attr} "
                                    f"{left!r} != {right!r}")
    return problems
