"""Design substrate: netlists, benchmark generation, path counting and STA.

Substitutes for the paper's routed OpenCore designs and for the gate-timing
half of the flow (NLDM lookups + arrival-time propagation); see DESIGN.md.
"""

from .netlist import (DesignNet, Gate, LoadPin, NetEdit, Netlist, PathStage,
                      TimingPath)
from .generator import (DesignSpec, generate_design, make_net_with_sinks,
                        sample_timing_paths)
from .benchmarks import (DEFAULT_SCALE, PAPER_BENCHMARKS, TEST_BENCHMARKS,
                         TRAIN_BENCHMARKS, BenchmarkStats, benchmark_seed,
                         benchmark_spec, generate_benchmark)
from .paths import (count_netlist_paths, max_wire_paths, path_count_sweep,
                    wire_path_histogram)
from .sta import (AWEWireModel, D2MWireModel, ElmoreWireModel, GoldenWireModel, PathTiming,
                  STAEngine, STAReport, StageTiming, WireTimingModel)
from .verilog import (ParsedInstance, ParsedModule, VerilogError,
                      connectivity_from_module, parse_verilog, write_verilog)
from .interchange import InterchangeError, export_design, import_design
from .reports import format_design_report, format_path_report
from .incremental import IncrementalSTAEngine
from .eco import (EDIT_SCHEMA, ECOTimingEngine, EditCommand, EditOutcome,
                  apply_edit_command, compare_timing, load_edit_script)
from .sdc import SDCError, TimingConstraints, parse_sdc, write_sdc

__all__ = [
    "Gate", "LoadPin", "DesignNet", "PathStage", "TimingPath", "Netlist",
    "DesignSpec", "generate_design", "make_net_with_sinks",
    "sample_timing_paths",
    "BenchmarkStats", "PAPER_BENCHMARKS", "TRAIN_BENCHMARKS",
    "TEST_BENCHMARKS", "DEFAULT_SCALE", "benchmark_spec", "benchmark_seed",
    "generate_benchmark",
    "count_netlist_paths", "wire_path_histogram", "max_wire_paths",
    "path_count_sweep",
    "WireTimingModel", "GoldenWireModel", "ElmoreWireModel", "D2MWireModel",
    "AWEWireModel",
    "STAEngine", "STAReport", "PathTiming", "StageTiming",
    "write_verilog", "parse_verilog", "connectivity_from_module",
    "ParsedModule", "ParsedInstance", "VerilogError",
    "export_design", "import_design", "InterchangeError",
    "format_path_report", "format_design_report",
    "IncrementalSTAEngine",
    "NetEdit", "ECOTimingEngine", "EditCommand", "EditOutcome",
    "EDIT_SCHEMA", "load_edit_script", "apply_edit_command",
    "compare_timing",
    "TimingConstraints", "parse_sdc", "write_sdc", "SDCError",
]
