"""Full-design interchange: Verilog + SPEF + Liberty round trips.

A routed design is completely described by the standard file trio —
structural Verilog (connectivity), SPEF (RC parasitics) and Liberty (cell
timing).  :func:`export_design` produces all three from a
:class:`~repro.design.netlist.Netlist`; :func:`import_design` rebuilds an
equivalent netlist from the files alone, proving that nothing in the
timing flow depends on in-memory state.

SPEF sink/driver nodes are renamed to ``instance:pin`` connection points
on export (exactly what real extractors emit), which is what lets the
importer re-associate each RC sink with the cell pin it drives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..liberty.library import Library
from ..rcnet.builder import RCNetBuilder
from ..rcnet.graph import RCNet
from ..rcnet.spef import SPEFDesign, parse_spef, write_spef
from .netlist import DesignNet, Netlist
from .verilog import (ParsedModule, VerilogError, connectivity_from_module,
                      parse_verilog, write_verilog)


class InterchangeError(ValueError):
    """Raised when the file trio is inconsistent."""


def export_design(netlist: Netlist) -> Tuple[str, str]:
    """Serialize a netlist to ``(verilog_text, spef_text)``.

    RC boundary nodes are renamed to ``instance:pin`` form so the SPEF is
    self-describing; internal node names are preserved.
    """
    verilog = write_verilog(netlist)
    renamed_nets = [_with_connection_points(net) for net in
                    netlist.nets.values()]
    spef = write_spef(renamed_nets, design=netlist.name)
    return verilog, spef


def _with_connection_points(net: DesignNet) -> RCNet:
    """Copy the RC net with driver/sink nodes renamed to instance pins."""
    rc = net.rcnet
    rename: Dict[int, str] = {rc.source: f"{net.driver}:Z"}
    for sink, load in zip(rc.sinks, net.loads):
        rename[sink] = f"{load.gate}:{load.pin}"
    builder = RCNetBuilder(net.name)
    for node in rc.nodes:
        builder.add_node(rename.get(node.index, node.name), cap=node.cap)
    for edge in rc.edges:
        builder.add_edge(
            rename.get(edge.u, rc.nodes[edge.u].name),
            rename.get(edge.v, rc.nodes[edge.v].name),
            edge.resistance)
    builder.set_source(rename[rc.source])
    for sink in rc.sinks:
        builder.add_sink(rename[sink])
    for coupling in rc.couplings:
        builder.add_coupling(
            rename.get(coupling.victim, rc.nodes[coupling.victim].name),
            coupling.aggressor_name, coupling.cap, coupling.activity)
    return builder.build()


def import_design(verilog_text: str, spef_text: str,
                  library: Library) -> Netlist:
    """Rebuild a netlist from the exported Verilog + SPEF pair.

    Connectivity comes from the Verilog; each net's parasitics come from
    the SPEF ``*D_NET`` with the same name, with sinks matched to load
    pins through their ``instance:pin`` node names.  Timing paths are not
    part of either format and are left empty.
    """
    module = parse_verilog(verilog_text)
    gates, nets = connectivity_from_module(module, library)
    spef = parse_spef(spef_text)
    spef_by_name = {net.name: net for net in spef.nets}

    netlist = Netlist(module.name)
    for gate in gates.values():
        netlist.add_gate(gate)
    for wire, (driver, loads) in nets.items():
        rcnet = spef_by_name.get(wire)
        if rcnet is None:
            raise InterchangeError(f"SPEF is missing net {wire!r}")
        # Order loads to match the RC net's sink order via pin-point names.
        position: Dict[str, int] = {}
        for order, sink in enumerate(rcnet.sinks):
            position[rcnet.nodes[sink].name] = order
        try:
            ordered = sorted(loads,
                             key=lambda l: position[f"{l.gate}:{l.pin}"])
        except KeyError as exc:
            raise InterchangeError(
                f"net {wire!r}: load pin {exc} not present among SPEF "
                f"sinks") from None
        if len(ordered) != rcnet.num_sinks:
            raise InterchangeError(
                f"net {wire!r}: {len(ordered)} Verilog loads vs "
                f"{rcnet.num_sinks} SPEF sinks")
        netlist.add_net(DesignNet(wire, driver, ordered, rcnet))
    return netlist
