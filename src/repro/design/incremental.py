"""Incremental STA: cached stage timing with gate-level invalidation.

The paper's closing claim is that a fast wire estimator "can be integrated
into incremental timing optimization for routed designs".  Optimization
loops re-time the same design after small edits (cell up-sizing, buffer
insertion); almost all stage timings are unchanged between iterations.
:class:`IncrementalSTAEngine` memoizes per-stage results keyed by the
stage's electrical inputs and invalidates only the nets whose driver or
receivers changed, so the second and later STA passes cost a fraction of
the first.

Correctness note: a stage's timing depends on its input slew, which
changes when anything *upstream* changes — that dependence is captured by
keying the cache on the input slew (quantized or exact) rather than by
tracing fanin cones, so a stale entry can never be returned, only missed.
The key also carries the resolved timing-arc pin: two paths entering the
same gate through different arcs at the same slew are distinct stages and
must never share an entry.

For the ECO parity contract (results bitwise identical to a cold
:class:`~repro.design.sta.STAEngine` pass) construct the engine with
``slew_quantum=None``: cache keys then use the exact input slew, so a hit
replays the very floats a cold pass would recompute.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..liberty.ceff import effective_capacitance
from ..features.path_features import NetContext
from ..obs import named_lock
from .netlist import Netlist, TimingPath
from .sta import PathTiming, StageTiming, WireTimingModel, resolve_arc_pin

#: Cache key: (net, cell name, resolved arc pin, slew key).  The slew key
#: is a grid index when quantizing, or the exact float in exact mode.
StageKey = Tuple[str, str, str, Hashable]


class IncrementalSTAEngine:
    """STA engine with per-stage memoization for optimization loops.

    Parameters
    ----------
    netlist:
        The design being optimized (gate swaps are visible because gates
        are looked up by name on every evaluation).
    wire_model:
        Wire timing engine (learned or analytic).
    launch_slew:
        Launch transition time, seconds.
    slew_quantum:
        Input slews are quantized to this grid (seconds) for cache keys;
        finer = more precise reuse decisions, coarser = more hits.  The
        *timing* itself always uses the exact slew — only reuse is
        quantized, so results differ from a cold pass by at most the
        model's sensitivity over one quantum.  ``None`` keys on the exact
        slew instead: fewer hits, but every hit is bitwise identical to a
        cold pass (the ECO parity mode).
    lenient_pins:
        When True, a stage whose ``input_pin`` has no timing arc is timed
        through the cell's first arc (legacy netlists); when False (the
        default) such a stage raises a typed
        :class:`~repro.robustness.errors.InputError` with net/design
        provenance.
    """

    def __init__(self, netlist: Netlist, wire_model: WireTimingModel,
                 launch_slew: float = 20e-12,
                 slew_quantum: Optional[float] = 0.25e-12,
                 lenient_pins: bool = False) -> None:
        if slew_quantum is not None and slew_quantum <= 0.0:
            raise ValueError(
                "slew_quantum must be positive (or None for exact keys)")
        self.netlist = netlist
        self.wire_model = wire_model
        self.launch_slew = launch_slew
        self.slew_quantum = slew_quantum
        self.lenient_pins = lenient_pins
        # The ECO stage memo is shared between a serve batch window and
        # concurrent edit threads; only the dict/counter operations run
        # under the lock — wire-timing computation happens outside it.
        self._lock = named_lock("IncrementalSTAEngine._lock")
        # (net, cell name, arc pin, slew key) -> (gate_delay, delays, slews)
        self._cache: Dict[StageKey, Tuple[float, np.ndarray,
                                          np.ndarray]] = {}  # repro-guarded-by: _lock
        self.hits = 0    # repro-guarded-by: _lock
        self.misses = 0  # repro-guarded-by: _lock

    # ------------------------------------------------------------------
    def invalidate_gate(self, gate_name: str) -> int:
        """Drop cache entries affected by a change to ``gate_name``.

        Both the net the gate drives (driver strength changed) and every
        net it loads (pin capacitance changed) are invalidated.  The
        loaded nets come from the netlist's reverse load index, so the
        cost is O(degree + cache size) rather than a scan over every
        net's load list.  Returns the number of dropped entries.
        """
        stale_nets = set(self.netlist.nets_loaded_by(gate_name))
        driven = self.netlist.net_driven_by(gate_name)
        if driven is not None:
            stale_nets.add(driven.name)
        return self.invalidate_nets(stale_nets)

    def invalidate_nets(self, net_names: Iterable[str]) -> int:
        """Drop every cache entry for the named nets; returns the count."""
        stale = set(net_names)
        if not stale:
            return 0
        with self._lock:
            stale_keys = [key for key in self._cache if key[0] in stale]
            for key in stale_keys:
                del self._cache[key]
        return len(stale_keys)

    def clear(self) -> None:
        """Drop the whole cache (e.g. after wholesale edits)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    def _slew_key(self, slew: float) -> Hashable:
        if self.slew_quantum is None:
            return slew
        return int(round(slew / self.slew_quantum))

    def _stage_timing(self, gate_name: str, input_pin: str, net_name: str,
                      slew: float) -> Tuple[float, np.ndarray, np.ndarray]:
        gate = self.netlist.gates[gate_name]
        net = self.netlist.nets[net_name]
        pin = resolve_arc_pin(gate.cell, input_pin, net=net_name,
                              design=self.netlist.name,
                              lenient=self.lenient_pins)
        key = (net_name, gate.cell.name, pin, self._slew_key(slew))
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1

        # Computed outside the lock: two threads missing on the same key
        # may both solve it (identical results; last store wins), which
        # beats serializing every wire-timing evaluation.
        sink_loads = self.netlist.sink_loads(net)
        load = effective_capacitance(net.rcnet, gate.cell.drive_resistance,
                                     sink_loads)
        gate_delay, drive_slew = gate.cell.delay_and_slew(slew, load, pin)
        context = NetContext(
            input_slew=drive_slew, drive_cell=gate.cell,
            load_cells=[self.netlist.gates[l.gate].cell for l in net.loads])
        delays, slews = self.wire_model.wire_timing(
            net.rcnet, drive_slew, sink_loads, gate.cell.drive_resistance,
            context=context)
        result = (gate_delay, np.asarray(delays), np.asarray(slews))
        with self._lock:
            self._cache[key] = result
        return result

    def path_arrival(self, path: TimingPath) -> PathTiming:
        """Arrival time of one path, reusing cached stage timings."""
        arrival = 0.0
        gate_total = 0.0
        wire_total = 0.0
        slew = self.launch_slew
        stages: List[StageTiming] = []
        for stage in path.stages:
            gate_delay, delays, slews = self._stage_timing(
                stage.gate, stage.input_pin, stage.net, slew)
            wire_delay = float(delays[stage.sink_index])
            slew = float(slews[stage.sink_index])
            arrival += gate_delay + wire_delay
            gate_total += gate_delay
            wire_total += wire_delay
            stages.append(StageTiming(stage.gate, stage.net, gate_delay,
                                      wire_delay, slew))
        return PathTiming(path.name, arrival, gate_total, wire_total, stages)

    def analyze_paths(self, paths: Optional[List[TimingPath]] = None
                      ) -> List[PathTiming]:
        """Arrival times for ``paths`` (default: all recorded paths)."""
        paths = paths if paths is not None else self.netlist.paths
        return [self.path_arrival(p) for p in paths]

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0
