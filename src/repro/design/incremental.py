"""Incremental STA: cached stage timing with gate-level invalidation.

The paper's closing claim is that a fast wire estimator "can be integrated
into incremental timing optimization for routed designs".  Optimization
loops re-time the same design after small edits (cell up-sizing, buffer
insertion); almost all stage timings are unchanged between iterations.
:class:`IncrementalSTAEngine` memoizes per-stage results keyed by the
stage's electrical inputs and invalidates only the nets whose driver or
receivers changed, so the second and later STA passes cost a fraction of
the first.

Correctness note: a stage's timing depends on its input slew, which
changes when anything *upstream* changes — that dependence is captured by
keying the cache on the (quantized) input slew rather than by tracing
fanin cones, so a stale entry can never be returned, only missed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..liberty.cell import Cell
from ..liberty.ceff import effective_capacitance
from ..features.path_features import NetContext
from .netlist import Netlist, TimingPath
from .sta import PathTiming, StageTiming, WireTimingModel


class IncrementalSTAEngine:
    """STA engine with per-stage memoization for optimization loops.

    Parameters
    ----------
    netlist:
        The design being optimized (gate swaps are visible because gates
        are looked up by name on every evaluation).
    wire_model:
        Wire timing engine (learned or analytic).
    launch_slew:
        Launch transition time, seconds.
    slew_quantum:
        Input slews are quantized to this grid (seconds) for cache keys;
        finer = more precise reuse decisions, coarser = more hits.  The
        *timing* itself always uses the exact slew — only reuse is
        quantized, so results differ from a cold pass by at most the
        model's sensitivity over one quantum.
    """

    def __init__(self, netlist: Netlist, wire_model: WireTimingModel,
                 launch_slew: float = 20e-12,
                 slew_quantum: float = 0.25e-12) -> None:
        if slew_quantum <= 0.0:
            raise ValueError("slew_quantum must be positive")
        self.netlist = netlist
        self.wire_model = wire_model
        self.launch_slew = launch_slew
        self.slew_quantum = slew_quantum
        # (net, cell name, quantized slew) -> (gate_delay, delays, slews)
        self._cache: Dict[Tuple[str, str, int], Tuple[float, np.ndarray,
                                                      np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def invalidate_gate(self, gate_name: str) -> int:
        """Drop cache entries affected by a change to ``gate_name``.

        Both the net the gate drives (driver strength changed) and every
        net it loads (pin capacitance changed) are invalidated.  Returns
        the number of dropped entries.
        """
        stale_nets = set()
        driven = self.netlist.net_driven_by(gate_name)
        if driven is not None:
            stale_nets.add(driven.name)
        for net in self.netlist.nets.values():
            if any(load.gate == gate_name for load in net.loads):
                stale_nets.add(net.name)
        stale_keys = [key for key in self._cache if key[0] in stale_nets]
        for key in stale_keys:
            del self._cache[key]
        return len(stale_keys)

    def clear(self) -> None:
        """Drop the whole cache (e.g. after wholesale edits)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _stage_timing(self, gate_name: str, input_pin: str, net_name: str,
                      slew: float) -> Tuple[float, np.ndarray, np.ndarray]:
        gate = self.netlist.gates[gate_name]
        net = self.netlist.nets[net_name]
        key = (net_name, gate.cell.name,
               int(round(slew / self.slew_quantum)))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached

        self.misses += 1
        sink_loads = self.netlist.sink_loads(net)
        load = effective_capacitance(net.rcnet, gate.cell.drive_resistance,
                                     sink_loads)
        pin = input_pin if input_pin in gate.cell.arcs \
            else next(iter(gate.cell.arcs))
        gate_delay, drive_slew = gate.cell.delay_and_slew(slew, load, pin)
        context = NetContext(
            input_slew=drive_slew, drive_cell=gate.cell,
            load_cells=[self.netlist.gates[l.gate].cell for l in net.loads])
        delays, slews = self.wire_model.wire_timing(
            net.rcnet, drive_slew, sink_loads, gate.cell.drive_resistance,
            context=context)
        result = (gate_delay, np.asarray(delays), np.asarray(slews))
        self._cache[key] = result
        return result

    def path_arrival(self, path: TimingPath) -> PathTiming:
        """Arrival time of one path, reusing cached stage timings."""
        arrival = 0.0
        gate_total = 0.0
        wire_total = 0.0
        slew = self.launch_slew
        stages: List[StageTiming] = []
        for stage in path.stages:
            gate_delay, delays, slews = self._stage_timing(
                stage.gate, stage.input_pin, stage.net, slew)
            wire_delay = float(delays[stage.sink_index])
            slew = float(slews[stage.sink_index])
            arrival += gate_delay + wire_delay
            gate_total += gate_delay
            wire_total += wire_delay
            stages.append(StageTiming(stage.gate, stage.net, gate_delay,
                                      wire_delay, slew))
        return PathTiming(path.name, arrival, gate_total, wire_total, stages)

    def analyze_paths(self, paths: Optional[List[TimingPath]] = None
                      ) -> List[PathTiming]:
        """Arrival times for ``paths`` (default: all recorded paths)."""
        paths = paths if paths is not None else self.netlist.paths
        return [self.path_arrival(p) for p in paths]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
