"""Benchmark harness: model training orchestration and table rendering.

The machinery behind ``benchmarks/`` (one bench per paper table/figure):
``train_all_models`` trains every model of Tables III/IV on a shared
dataset, ``accuracy_table`` collects slew/delay R² and max-error per model,
``format_table`` renders the aligned text tables the benches print, and
``bootstrap_ci`` provides the confidence intervals quoted in
EXPERIMENTS.md.

Distinct from :mod:`repro.obs.bench`, which is the *performance* baseline
(the ``repro bench`` CLI workload); this package measures accuracy.
"""

from .harness import (MODEL_ORDER, AccuracyTable, accuracy_table,
                      train_all_models, train_model)
from .reporting import format_table
from .stats import bootstrap_ci, format_ci

__all__ = [
    "MODEL_ORDER", "train_model", "train_all_models", "accuracy_table",
    "AccuracyTable", "format_table", "bootstrap_ci", "format_ci",
]
