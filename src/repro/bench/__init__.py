"""Benchmark harness: model training orchestration and table rendering."""

from .harness import (MODEL_ORDER, AccuracyTable, accuracy_table,
                      train_all_models, train_model)
from .reporting import format_table
from .stats import bootstrap_ci, format_ci

__all__ = [
    "MODEL_ORDER", "train_model", "train_all_models", "accuracy_table",
    "AccuracyTable", "format_table", "bootstrap_ci", "format_ci",
]
