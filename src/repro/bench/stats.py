"""Statistical utilities for benchmark reporting.

R² computed over a few hundred paths is a noisy statistic; per-design
subsets (Table III's non-tree columns) can swing by several points between
seeds.  :func:`bootstrap_ci` quantifies that: a nonparametric bootstrap
confidence interval over paths, so table entries can be read with error
bars.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..nn.metrics import r2_score


def bootstrap_ci(y_true: np.ndarray, y_pred: np.ndarray,
                 metric: Callable[[np.ndarray, np.ndarray], float] = r2_score,
                 n_boot: int = 1000, alpha: float = 0.05,
                 seed: int = 0) -> Tuple[float, float, float]:
    """Bootstrap confidence interval of a paired metric.

    Returns ``(point_estimate, lower, upper)`` where the bounds are the
    ``alpha/2`` and ``1 - alpha/2`` percentiles of the bootstrap
    distribution over resampled (true, pred) pairs.
    """
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size < 2:
        raise ValueError("bootstrap needs at least 2 samples")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = y_true.size
    point = metric(y_true, y_pred)
    values = np.empty(n_boot)
    for b in range(n_boot):
        idx = rng.integers(0, n, size=n)
        values[b] = metric(y_true[idx], y_pred[idx])
    lower = float(np.percentile(values, 100 * alpha / 2))
    upper = float(np.percentile(values, 100 * (1 - alpha / 2)))
    return float(point), lower, upper


def format_ci(point: float, lower: float, upper: float) -> str:
    """Render ``point [lower, upper]`` with three decimals."""
    return f"{point:.3f} [{lower:.3f}, {upper:.3f}]"
