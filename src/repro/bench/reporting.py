"""Plain-text table rendering for benchmark output.

Every bench prints tables in the same layout as the paper (one row per
test benchmark plus an Average row), so shapes can be compared against
the published numbers side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table with optional title."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
