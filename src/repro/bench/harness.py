"""Benchmark orchestration: train every model once, evaluate per design.

This is the shared engine behind the Table III / Table IV / Table V
benches: it trains GNNTrans and the five baselines on the same dataset and
produces per-benchmark accuracy rows in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines import DAC20Estimator, make_baseline_factory
from ..core.config import DEFAULT_CONFIG, GNNTransConfig
from ..core.estimator import EvalMetrics, WireTimingEstimator
from ..data.generate import WireTimingDataset
from ..data.split import by_design, nontree_only, train_val_split

# Paper column order of Tables III/IV.
MODEL_ORDER = ("DAC20", "GCNII", "GraphSage", "GAT", "Transformer", "GNNTrans")

_BASELINE_KIND = {
    "GCNII": "gcnii",
    "GraphSage": "graphsage",
    "GAT": "gat",
    "Transformer": "transformer",
}


def train_model(name: str, dataset: WireTimingDataset,
                config: GNNTransConfig = DEFAULT_CONFIG,
                epochs: Optional[int] = None, seed: int = 0
                ) -> Union[WireTimingEstimator, DAC20Estimator]:
    """Train one named model on the dataset's training split.

    Returns an object exposing ``evaluate(samples) -> EvalMetrics`` and
    ``predict(samples)`` — either a :class:`WireTimingEstimator` or a
    :class:`DAC20Estimator`.
    """
    if name == "DAC20":
        dac20 = DAC20Estimator(feature_scaler=dataset.scaler, seed=seed)
        dac20.fit(dataset.train)
        return dac20
    config = replace(config, seed=seed)
    if name == "GNNTrans":
        estimator = WireTimingEstimator(config)
    elif name in _BASELINE_KIND:
        estimator = WireTimingEstimator(
            config, model_factory=make_baseline_factory(_BASELINE_KIND[name]))
    else:
        raise ValueError(f"unknown model {name!r}; choose from {MODEL_ORDER}")
    train, val = train_val_split(dataset.train, val_fraction=0.1, seed=seed)
    estimator.fit(train, val_samples=val, epochs=epochs)
    return estimator


@dataclass
class AccuracyTable:
    """Per-design slew/delay R^2 for a set of models (Table III/IV shape)."""

    subset: str                                  # "nontree" or "all"
    designs: List[str] = field(default_factory=list)
    # scores[model][design] = (r2_slew, r2_delay)
    scores: Dict[str, Dict[str, Tuple[float, float]]] = field(default_factory=dict)

    def average(self, model: str) -> Tuple[float, float]:
        values = [self.scores[model][d] for d in self.designs]
        slews = float(np.mean([v[0] for v in values]))
        delays = float(np.mean([v[1] for v in values]))
        return slews, delays

    def rows(self) -> List[List[object]]:
        """Rows formatted like the paper: one per design plus Average."""
        out: List[List[object]] = []
        models = [m for m in MODEL_ORDER if m in self.scores]
        for design in self.designs:
            row: List[object] = [design]
            for model in models:
                r2s, r2d = self.scores[model][design]
                row.append(f"{r2s:.3f}/{r2d:.3f}")
            out.append(row)
        avg_row: List[object] = ["Average"]
        for model in models:
            r2s, r2d = self.average(model)
            avg_row.append(f"{r2s:.3f}/{r2d:.3f}")
        out.append(avg_row)
        return out

    def headers(self) -> List[str]:
        return ["Benchmark"] + [m for m in MODEL_ORDER if m in self.scores]


def accuracy_table(dataset: WireTimingDataset, models: Dict[str, object],
                   subset: str = "nontree") -> AccuracyTable:
    """Evaluate trained models per test benchmark (Table III/IV engine).

    ``subset`` selects ``"nontree"`` (Table III) or ``"all"`` (Table IV).
    Designs whose subset is empty are skipped.
    """
    if subset not in ("nontree", "all"):
        raise ValueError(f"unknown subset {subset!r}")
    table = AccuracyTable(subset=subset)
    grouped = by_design(dataset.test)
    for design, samples in sorted(grouped.items()):
        if subset == "nontree":
            samples = nontree_only(samples)
        if not samples:
            continue
        table.designs.append(design)
        for model_name, model in models.items():
            metrics: EvalMetrics = model.evaluate(samples)
            table.scores.setdefault(model_name, {})[design] = (
                metrics.r2_slew, metrics.r2_delay)
    return table


def train_all_models(dataset: WireTimingDataset,
                     config: GNNTransConfig = DEFAULT_CONFIG,
                     include: Sequence[str] = MODEL_ORDER,
                     epochs: Optional[int] = None,
                     seed: int = 0) -> Dict[str, object]:
    """Train every requested model on the same training split."""
    return {name: train_model(name, dataset, config, epochs, seed)
            for name in include}
