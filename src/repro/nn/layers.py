"""Neural-network building blocks on top of the autograd :class:`Tensor`.

The classes here mirror a narrow slice of ``torch.nn``: a :class:`Module`
base with recursive parameter collection, :class:`Linear`, :class:`MLP`,
:class:`LayerNorm` and :class:`Dropout`.  They are intentionally small but
complete enough to express every model in the paper (GNNTrans and all graph
baselines).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .init import kaiming_uniform, xavier_uniform, zeros
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable.

    Kept as a distinct type so :meth:`Module.parameters` can find trainable
    leaves by ``isinstance`` without inspecting graph internals.
    """

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` walks the attribute tree recursively.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter bookkeeping ----------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return every trainable parameter reachable from this module."""
        params: List[Parameter] = []
        seen: set = set()
        self._collect(params, seen)
        return params

    def _collect(self, params: List[Parameter], seen: set) -> None:
        for value in self.__dict__.values():
            self._collect_value(value, params, seen)

    def _collect_value(self, value, params: List[Parameter], seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            value._collect(params, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, params, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, params, seen)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # -- train / eval mode --------------------------------------------
    def train(self) -> "Module":
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        self._set_training(False)
        return self

    def _set_training(self, flag: bool) -> None:
        self.training = flag
        for value in self.__dict__.values():
            self._propagate_training(value, flag)

    def _propagate_training(self, value, flag: bool) -> None:
        if isinstance(value, Module):
            value._set_training(flag)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._propagate_training(item, flag)
        elif isinstance(value, dict):
            for item in value.values():
                self._propagate_training(item, flag)

    # -- state (de)serialization ----------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flatten every parameter into ``{path: array}`` for saving."""
        state: Dict[str, np.ndarray] = {}
        self._state_into(state, prefix="")
        return state

    def _state_into(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name, value in self.__dict__.items():
            self._state_value(state, f"{prefix}{name}", value)

    def _state_value(self, state: Dict[str, np.ndarray], key: str, value) -> None:
        if isinstance(value, Parameter):
            state[key] = value.data.copy()
        elif isinstance(value, Module):
            value._state_into(state, prefix=f"{key}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._state_value(state, f"{key}.{i}", item)
        elif isinstance(value, dict):
            for k, item in value.items():
                self._state_value(state, f"{key}.{k}", item)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        own = self.state_dict()
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        self._load_from(state, prefix="")

    def _load_from(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name, value in self.__dict__.items():
            self._load_value(state, f"{prefix}{name}", value)

    def _load_value(self, state: Dict[str, np.ndarray], key: str, value) -> None:
        if isinstance(value, Parameter):
            if key in state:
                incoming = np.asarray(state[key], dtype=np.float64)
                if incoming.shape != value.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: saved {incoming.shape}, "
                        f"model expects {value.data.shape}")
                value.data[...] = incoming
        elif isinstance(value, Module):
            value._load_from(state, prefix=f"{key}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._load_value(state, f"{key}.{i}", item)
        elif isinstance(value, dict):
            for k, item in value.items():
                self._load_value(state, f"{key}.{k}", item)

    # -- call protocol --------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    rng:
        Random generator for weight init.
    bias:
        If ``False`` the layer is a pure linear map (used for the attention
        projections ``W_Q``, ``W_K``, ``W_V`` of Eq. 2/3, which the paper
        writes without bias terms).
    activation:
        ``None``, ``"relu"`` or ``"tanh"``; selects the init scheme.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True,
                 activation: Optional[str] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if activation == "relu":
            weight = kaiming_uniform((in_features, out_features), rng)
        else:
            weight = xavier_uniform((in_features, out_features), rng)
        self.weight = Parameter(weight)
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # repro-shape: x=(n, i):f64 -> (n, o):f64
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")


class MLP(Module):
    """Multilayer perceptron with ReLU hidden activations.

    This is the prediction head of the paper (Eq. 5 and Eq. 6): path
    representations in, scalar slew/delay out.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        dims = [in_features] + list(hidden) + [out_features]
        self.layers = [
            Linear(dims[i], dims[i + 1], rng,
                   activation="relu" if i + 1 < len(dims) - 1 else None)
            for i in range(len(dims) - 1)
        ]
        self.dropout = Dropout(dropout, rng) if dropout > 0.0 else None

    def forward(self, x: Tensor) -> Tensor:
        # repro-shape: x=(n, i):f64 -> (n, o):f64
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x


class LayerNorm(Module):
    """Layer normalization over the last axis.

    Stabilizes the deep (L1 + L2 up to 30-layer) stacks the paper trains;
    applied inside the transformer layers.
    """

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(np.ones((features,)))
        self.beta = Parameter(zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        # repro-shape: x=(n, f):f64 -> (n, f):f64
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((var + self.eps) ** -0.5)
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
