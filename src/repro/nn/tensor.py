"""Array-valued reverse-mode automatic differentiation.

This module provides the :class:`Tensor` class, a thin wrapper around a
``numpy.ndarray`` that records the operations applied to it so gradients can
be propagated backwards with :meth:`Tensor.backward`.

The design follows the classic define-by-run tape: every operation returns a
new :class:`Tensor` holding references to its parent tensors and a closure
computing the local vector-Jacobian product.  A topological sort of that
graph drives back-propagation.

Only the operations needed by the GNNTrans model family are implemented, but
each is implemented with full broadcasting support so the framework is usable
for general small-scale deep learning on CPU.

Example
-------
>>> import numpy as np
>>> from repro.nn import Tensor
>>> w = Tensor(np.ones((2, 2)), requires_grad=True)
>>> x = Tensor(np.array([[1.0, 2.0]]))
>>> y = (x @ w).sum()
>>> y.backward()
>>> w.grad
array([[1., 2.],
       [1., 2.]])
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand from ``shape`` up to the output
    shape, the gradient flowing back must be reduced over the broadcast axes
    so that ``grad.shape == shape`` again.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the value.  Always stored
        as ``float64`` for numerical robustness on small models.
    requires_grad:
        If ``True``, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "leaf",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward_fn = _backward_fn
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward_fn=backward_fn, _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return self._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._wrap(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 1:
                self._accumulate(grad @ np.swapaxes(b, -1, -2))
                other._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                self._accumulate(np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b)
                other._accumulate(np.swapaxes(a, -1, -2) @ grad if a.ndim == 2
                                  else _unbroadcast((np.swapaxes(a, -1, -2) @ grad[..., None])[..., 0], b.shape))
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(_unbroadcast(ga, a.shape))
                other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.transpose(grad, inverse))

        return self._make(out_data, (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(input_shape, dtype=np.float64)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % len(input_shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, input_shape))

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * g)

        return self._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return self._make(out_data, (self,), backward, "relu")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward, "log")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward, "abs")

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0.0, 1.0, negative_slope))

        return self._make(out_data, (self,), backward, "leaky_relu")

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward, "softmax")

    # ------------------------------------------------------------------
    # Back-propagation driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (only valid starting from a
            scalar or when a full seed is intended).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient seed requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing.

    This is the operation written ``||`` in the GNNTrans paper (Eq. 3 and
    Eq. 4): multi-head outputs and path features are concatenated before the
    next linear map.
    """
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)
    ax = axis % out_data.ndim

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * out_data.ndim
            slicer[ax] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    requires = any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors),
                  _backward_fn=backward, _op="concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)
    ax = axis % out_data.ndim

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, i, axis=ax))

    requires = any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors),
                  _backward_fn=backward, _op="stack")


def matmul_const(matrix: np.ndarray, tensor: Tensor) -> Tensor:
    """Multiply a constant matrix by a tensor: ``matrix @ tensor``.

    Used for fixed aggregation operators such as the resistance-weighted
    adjacency matrix in the GNN module (Eq. 1), where the matrix carries no
    gradient but the node representations do.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    out_data = matrix @ tensor.data

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(matrix.T @ grad)

    if not tensor.requires_grad:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=(tensor,),
                  _backward_fn=backward, _op="matmul_const")
