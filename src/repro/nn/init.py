"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is seedable end to end; nothing in :mod:`repro` touches
global random state.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Samples from ``U(-a, a)`` with ``a = gain * sqrt(6 / (fan_in + fan_out))``.
    Suitable for the linear maps feeding tanh/softmax activations in the
    transformer module.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU networks.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / fan_in)``; used by the
    GNN-module linear maps (Eq. 1 is ReLU-activated).
    """
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
