"""Loss functions.

The paper trains by minimizing the mean-squared error between estimated and
golden slew/delay (Section IV); MAE and Huber are provided for ablations.
"""

from __future__ import annotations

from .tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error — the paper's training objective."""
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented with the smooth identity
    ``huber(r) = delta^2 * (sqrt(1 + (r/delta)^2) - 1)`` (pseudo-Huber), which
    keeps the autograd graph free of piecewise branching.
    """
    if delta <= 0.0:
        raise ValueError(f"delta must be positive, got {delta}")
    r = (prediction - target) * (1.0 / delta)
    return ((((r * r) + 1.0) ** 0.5 - 1.0) * delta * delta).mean()
