"""Gradient-descent optimizers.

The paper trains end to end with MSE; the exact optimizer is not stated, so
we provide the standard choices (SGD with momentum, Adam, AdamW) plus simple
learning-rate schedules and gradient clipping, which deep (30-layer) stacks
need on CPU.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer: holds the parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, useful for training diagnostics.
        """
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float(np.sum(p.grad ** 2))
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    ``decoupled=True`` applies weight decay directly to the weights instead
    of folding it into the gradient — the AdamW update rule.  The flag is
    consumed inside :meth:`step`, so ``weight_decay`` stays a plain
    readable attribute at all times (no temporary mutation that a
    concurrent reader or a mid-step exception could observe).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                if self.decoupled:
                    p.data -= self.lr * self.weight_decay * p.data
                else:
                    grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, decoupled=True)


class CosineSchedule:
    """Cosine learning-rate decay with linear warmup.

    Mutates ``optimizer.lr`` in place; call :meth:`step` once per epoch (or
    per iteration, whichever granularity was used for ``total_steps``).
    """

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 warmup_steps: int = 0, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / max(
                1, self.total_steps - self.warmup_steps)
            progress = min(1.0, progress)
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
                1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = lr
        return lr
