"""Generic minibatch trainer with early stopping.

Wire-timing datasets are collections of variable-size RC-net graphs, so the
unit of batching is a *net* rather than a fixed-shape tensor: the trainer
iterates samples, accumulates gradients over a minibatch of nets, then takes
one optimizer step — equivalent to the paper's per-net training with batched
updates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import math

import numpy as np

from ..obs import get_metrics, get_tracer
from ..robustness.errors import TrainingDiverged
from .layers import Module

_EPOCHS_RUN = get_metrics().counter("trainer.epochs_run")
_BATCHES_RUN = get_metrics().counter("trainer.batches_run")
from .optim import Optimizer
from .tensor import Tensor

LossFn = Callable[[Module, object], Tensor]


@dataclass
class EpochStats:
    """Per-epoch training diagnostics."""

    epoch: int
    train_loss: float
    val_loss: Optional[float]
    lr: float
    seconds: float


@dataclass
class TrainingHistory:
    """Full training trace returned by :meth:`Trainer.fit`.

    ``diverged`` is ``None`` for a healthy run; when the NaN/inf loss guard
    stops training it carries the
    :class:`~repro.robustness.errors.TrainingDiverged` record explaining
    which epoch diverged and whether a best checkpoint was restored.
    """

    epochs: List[EpochStats] = field(default_factory=list)
    diverged: Optional[TrainingDiverged] = None

    @property
    def best_val_loss(self) -> Optional[float]:
        vals = [e.val_loss for e in self.epochs if e.val_loss is not None]
        return min(vals) if vals else None

    @property
    def final_train_loss(self) -> Optional[float]:
        return self.epochs[-1].train_loss if self.epochs else None

    def __len__(self) -> int:
        return len(self.epochs)


class Trainer:
    """Gradient-accumulation trainer over arbitrary sample objects.

    Parameters
    ----------
    model:
        Module whose parameters are updated.
    optimizer:
        Optimizer constructed over ``model.parameters()``.
    loss_fn:
        Callable ``(model, sample) -> scalar Tensor``.  Each sample is
        typically one RC net (graph + per-path labels).
    grad_clip:
        Optional global-norm gradient clip, recommended for the deep
        GNN+Transformer stacks.
    rng:
        Generator used to shuffle samples each epoch.
    """

    def __init__(self, model: Module, optimizer: Optimizer, loss_fn: LossFn,
                 grad_clip: Optional[float] = 5.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.grad_clip = grad_clip
        self.rng = rng or np.random.default_rng(0)

    def fit(self, train_samples: Sequence, epochs: int, batch_size: int = 8,
            val_samples: Optional[Sequence] = None, patience: Optional[int] = None,
            verbose: bool = False,
            schedule: Optional[object] = None) -> TrainingHistory:
        """Train for up to ``epochs`` epochs.

        ``patience`` enables early stopping on the validation loss; the best
        parameters seen are restored before returning.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        history = TrainingHistory()
        best_val = float("inf")
        best_state = None
        stale = 0

        indices = np.arange(len(train_samples))
        for epoch in range(1, epochs + 1):
            start = time.perf_counter()
            with get_tracer().span("train.epoch", epoch=epoch) as span:
                self.model.train()
                self.rng.shuffle(indices)
                losses: List[float] = []
                for batch_start in range(0, len(indices), batch_size):
                    batch = indices[batch_start:batch_start + batch_size]
                    self.optimizer.zero_grad()
                    batch_loss = 0.0
                    for idx in batch:
                        loss = self.loss_fn(self.model, train_samples[int(idx)])
                        # Average gradients across the batch by scaling each
                        # per-sample loss before its backward pass.
                        (loss * (1.0 / len(batch))).backward()
                        batch_loss += loss.item()
                    if self.grad_clip is not None:
                        self.optimizer.clip_grad_norm(self.grad_clip)
                    self.optimizer.step()
                    losses.append(batch_loss / len(batch))
                    _BATCHES_RUN.inc()
                if schedule is not None:
                    schedule.step()

                train_loss = float(np.mean(losses)) if losses else float("nan")

                val_loss = None
                if val_samples is not None:
                    val_loss = self.evaluate(val_samples)
                    if math.isfinite(val_loss) and val_loss < best_val - 1e-12:
                        best_val = val_loss
                        best_state = self.model.state_dict()
                        stale = 0
                    else:
                        stale += 1
                span.set(train_loss=train_loss, val_loss=val_loss)
            _EPOCHS_RUN.inc()

            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                val_loss=val_loss,
                lr=self.optimizer.lr,
                seconds=time.perf_counter() - start,
            )
            history.epochs.append(stats)
            if verbose:
                val_str = f" val={val_loss:.6f}" if val_loss is not None else ""
                print(f"epoch {epoch:4d} loss={stats.train_loss:.6f}{val_str} "
                      f"lr={stats.lr:.2e} ({stats.seconds:.2f}s)")

            diverged = not math.isfinite(train_loss) or (
                val_loss is not None and not math.isfinite(val_loss))
            if diverged and losses:
                # NaN/inf loss: the weights (and Adam state) are poisoned.
                # Roll back to the best finite checkpoint and stop instead
                # of silently training on garbage.
                which = ("train" if not math.isfinite(train_loss) else "val")
                history.diverged = TrainingDiverged(
                    epoch=epoch, train_loss=train_loss, val_loss=val_loss,
                    restored_best=best_state is not None,
                    reason=f"non-finite {which} loss")
                break

            if patience is not None and val_samples is not None and stale >= patience:
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history

    def evaluate(self, samples: Sequence) -> float:
        """Mean loss over ``samples`` in eval mode (no gradient tracking)."""
        self.model.eval()
        total = 0.0
        for sample in samples:
            total += self.loss_fn(self.model, sample).item()
        self.model.train()
        return total / max(1, len(samples))
