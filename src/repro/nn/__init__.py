"""Pure-numpy deep-learning framework used by the GNNTrans reproduction.

The paper trains its models with PyTorch on V100 GPUs; this subpackage
re-implements the required subset (reverse-mode autograd, linear algebra ops,
layers, optimizers, losses, metrics and a trainer) on CPU numpy so that the
whole reproduction runs offline with no ML-framework dependency.
"""

from .tensor import Tensor, concat, matmul_const, stack
from .layers import Dropout, LayerNorm, Linear, MLP, Module, Parameter, Sequential
from .init import kaiming_uniform, xavier_uniform, zeros
from .optim import Adam, AdamW, CosineSchedule, Optimizer, SGD
from .loss import huber_loss, mae_loss, mse_loss
from .metrics import max_abs_error, mean_abs_error, r2_score, rmse
from .trainer import EpochStats, Trainer, TrainingHistory

__all__ = [
    "Tensor", "concat", "stack", "matmul_const",
    "Module", "Parameter", "Linear", "MLP", "LayerNorm", "Dropout", "Sequential",
    "kaiming_uniform", "xavier_uniform", "zeros",
    "Optimizer", "SGD", "Adam", "AdamW", "CosineSchedule",
    "mse_loss", "mae_loss", "huber_loss",
    "r2_score", "max_abs_error", "mean_abs_error", "rmse",
    "Trainer", "TrainingHistory", "EpochStats",
]
