"""Evaluation metrics used throughout the paper's result tables.

Tables III/IV report the coefficient of determination (R^2) of wire
slew/delay; Table V reports R^2 and the maximum absolute error (MAE in the
paper's nomenclature — note it is the *max*, not the mean) of path arrival
times in picoseconds.
"""

from __future__ import annotations

import numpy as np


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    ``1 - SS_res / SS_tot``; a perfect predictor scores 1.0, predicting the
    mean scores 0.0, and worse-than-mean predictors score negative.
    """
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("r2_score of empty arrays is undefined")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def max_abs_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Maximum absolute error — Table V's "MAE(ps)" column."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.max(np.abs(y_true - y_pred)))


def mean_abs_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error (conventional MAE)."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))
